//! The long-running campaign service daemon.
//!
//! [`serve`] turns a [`Listener`] into a persistent coordinator: instead
//! of dialing a fixed worker topology for one campaign and exiting, the
//! daemon accepts connections forever and classifies each by its first
//! frame:
//!
//! * [`Register`](Message::Register) — an elastic worker joins the fleet.
//!   It gets a dynamic slot from the [`WorkerRegistry`] and enters a
//!   *pull* loop: the worker sends [`Ready`](Message::Ready), the daemon
//!   picks the best runnable job (priority desc, least-served first, then
//!   submission order), ships the campaign via
//!   [`JobOpen`](Message::JobOpen) if the worker has not expanded it yet,
//!   then streams a plain [`Assign`](Message::Assign). Workers join and
//!   leave mid-campaign freely: a voluntary
//!   [`Deregister`](Message::Deregister) retires the slot without blame,
//!   a channel loss returns the batch remainder to the job's dispatch
//!   queue as suspects (same crash-blame/poison machinery as the static
//!   pool) and charges a quarantine strike to the worker's *name*.
//! * [`Hello`](Message::Hello) — a client authenticates with a per-tenant
//!   token and issues exactly one command: `Submit`, `Status`, `Cancel`,
//!   or `Drain`. Refusals are typed ([`ServiceErr`](Message::ServiceErr)).
//!
//! Campaign expansion lives behind the [`JobPlanner`] seam so this crate
//! stays independent of the bench harness: the daemon never interprets a
//! payload itself, it only routes indices and records. Every job journals
//! into its own checkpoint file (when a state directory is configured),
//! so a daemon killed anywhere resumes every interrupted job on restart,
//! and the final report of every job is byte-identical to a sequential
//! run of the same campaign — the dispatch queue preserves the
//! first-result-wins, index-keyed merge discipline of the static pool
//! regardless of how jobs interleave or when workers come and go.

use crate::coordinator::ClusterError;
use crate::dispatch::{Batch, Dispatch};
use crate::journal::{load_journal, JournalWriter};
use crate::protocol::{Assign, DrainOk};
use crate::protocol::{
    BuildStamp, CheckpointEntry, Done, Hello, JobOpen, JobStatusInfo, Message, Outcome, ServiceErr,
    ServiceErrKind, SlotStatusInfo, StatusReply, Submitted,
};
use crate::queue::{JobPhase, JobQueue, JobSpec, QueueError};
use crate::registry::{RegisterRefusal, WorkerRegistry};
use crate::transport::{Listener, TcpTransport, Transport};
use qismet_telemetry::{counter, event, fleet_update, gauge};
use serde::Value;
use std::collections::{BTreeMap, VecDeque};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// How a [`JobPlanner`] describes one expanded campaign.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobPlan {
    /// Fingerprint of the expansion (handshake and journal resume key).
    pub fingerprint: u64,
    /// How many specs the expansion produced.
    pub spec_count: usize,
    /// The fully-resolved seed of every spec, in expansion order. Journal
    /// replay validates each entry's seed against this, so a stale journal
    /// can never leak a record into a reshuffled campaign.
    pub seeds: Vec<u64>,
}

/// The daemon's seam to campaign semantics. The bench harness implements
/// this over its grid expansion and report writer; tests implement toy
/// planners.
pub trait JobPlanner: Send + Sync {
    /// Expands a submission payload. An `Err` is a typed `BadPayload`
    /// refusal at submit time (and a job failure if a replayed payload
    /// stops expanding after an upgrade).
    ///
    /// # Errors
    ///
    /// Returns a human-readable reason the payload cannot be expanded.
    fn open(&self, payload: &str) -> Result<JobPlan, String>;

    /// Consumes a settled job's complete record set (sorted by index) and
    /// writes its artifact. Returns a detail string for status output —
    /// conventionally the artifact path.
    ///
    /// # Errors
    ///
    /// Returns a human-readable reason the artifact could not be written;
    /// the job is then reported `failed` (its journal intact).
    fn finalize(&self, spec: &JobSpec, records: Vec<(usize, Value)>) -> Result<String, String>;
}

/// Tuning and authentication for one [`serve`] call.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Shared secret registering workers must present.
    pub fleet_token: String,
    /// `(tenant name, token)` pairs for the client API. The fleet token
    /// also authenticates clients, as the all-seeing operator principal.
    pub tenants: Vec<(String, String)>,
    /// Where the job event log and per-job journals live (`None` =
    /// ephemeral: no persistence, no resume).
    pub state_dir: Option<PathBuf>,
    /// Quarantine a worker *name* after this many lifetime channel
    /// strikes (`None` = never).
    pub quarantine_after: Option<usize>,
    /// Precise crash strikes before a spec is poisoned.
    pub poison_after: usize,
    /// Mid-batch silence bound, as in the static pool (`None` = wait
    /// forever; workers heartbeat while computing).
    pub assign_timeout: Option<Duration>,
    /// Bound on handshake-ish exchanges (registration, `Ready`,
    /// `JobReady`, client commands).
    pub handshake_timeout: Duration,
    /// Build provenance announced to clients.
    pub build: BuildStamp,
}

impl ServiceConfig {
    /// A config with the given fleet token and the same defaults as the
    /// static pool (no tenants, ephemeral, no quarantine).
    pub fn new(fleet_token: impl Into<String>) -> Self {
        ServiceConfig {
            fleet_token: fleet_token.into(),
            tenants: Vec::new(),
            state_dir: None,
            quarantine_after: None,
            poison_after: crate::coordinator::DEFAULT_POISON_AFTER,
            assign_timeout: None,
            handshake_timeout: crate::coordinator::DEFAULT_HANDSHAKE_TIMEOUT,
            build: BuildStamp::local(false),
        }
    }
}

/// What a drained daemon reports back to its embedder.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServiceSummary {
    /// Jobs that completed successfully.
    pub jobs_completed: usize,
    /// Jobs that failed or were cancelled.
    pub jobs_failed: usize,
    /// Connections accepted (workers, clients, and the drain wake-up).
    pub sessions: usize,
}

/// How often parked session threads re-check for runnable work. The
/// condvar is notified on every state change; the timeout only bounds the
/// window for races between the check and the wait.
const WORK_POLL: Duration = Duration::from_millis(200);

/// One opened (running) job's in-memory execution state.
struct JobRun {
    spec: JobSpec,
    dispatch: Dispatch,
    /// Journal-replayed records, sorted by index.
    resumed: Vec<(usize, Value)>,
    results: Mutex<Vec<(usize, Value)>>,
    journal: Mutex<Option<JournalWriter>>,
    /// Sessions currently holding one of this job's batches (the
    /// least-served tie-break that spreads a fleet across equal-priority
    /// jobs, making them genuinely concurrent).
    servers: AtomicUsize,
    /// Settle-once guard (finalize, fail, or cancel — first wins).
    settled: AtomicBool,
}

impl JobRun {
    fn done_count(&self) -> usize {
        self.resumed.len() + self.dispatch.completed_count()
    }
}

/// What [`Engine::claim`] hands a worker session.
enum Claim {
    /// Serve this batch of this job.
    Work(Arc<JobRun>, Batch),
    /// The service is draining and nothing is left: send `Shutdown`.
    Retire,
}

struct Engine<'a> {
    planner: &'a dyn JobPlanner,
    config: &'a ServiceConfig,
    queue: Mutex<JobQueue>,
    registry: WorkerRegistry,
    open_jobs: Mutex<BTreeMap<u64, Arc<JobRun>>>,
    work: Condvar,
    draining: AtomicBool,
    stopping: AtomicBool,
    jobs_completed: AtomicUsize,
    jobs_failed: AtomicUsize,
    sessions: AtomicUsize,
    /// The listener's address, for the drain self-connect wake-up.
    wake_addr: Option<String>,
}

impl<'a> Engine<'a> {
    fn notify(&self) {
        self.work.notify_all();
    }

    fn update_job_gauges(&self) {
        let queue = self.queue.lock().expect("queue mutex poisoned");
        let (mut queued, mut running, mut settled) = (0i64, 0i64, 0i64);
        for job in queue.jobs() {
            match job.phase {
                JobPhase::Queued => queued += 1,
                JobPhase::Running => running += 1,
                _ => settled += 1,
            }
        }
        gauge!("service.jobs_queued").set(queued);
        gauge!("service.jobs_running").set(running);
        gauge!("service.jobs_settled").set(settled);
    }

    /// Moves a job to a terminal phase exactly once per id and maintains
    /// the lifetime tallies; `open_jobs` entry (if any) is removed.
    fn conclude(&self, id: u64, phase: JobPhase, detail: String) {
        let transitioned = {
            let mut queue = self.queue.lock().expect("queue mutex poisoned");
            queue.set_phase(id, phase, Some(detail.clone())).is_ok()
        };
        if transitioned {
            match phase {
                JobPhase::Completed => {
                    self.jobs_completed.fetch_add(1, Ordering::Relaxed);
                    counter!("service.jobs_completed").inc();
                }
                _ => {
                    self.jobs_failed.fetch_add(1, Ordering::Relaxed);
                    counter!("service.jobs_failed").inc();
                }
            }
            event("job", format!("job {id} -> {}: {detail}", phase.name()));
        }
        self.open_jobs
            .lock()
            .expect("open-jobs mutex poisoned")
            .remove(&id);
        self.update_job_gauges();
        self.notify();
    }

    /// Settles a run exactly once: poisoned specs fail it, otherwise the
    /// planner writes the artifact.
    fn settle_job(&self, run: &Arc<JobRun>) {
        if run.settled.swap(true, Ordering::SeqCst) {
            return;
        }
        let id = run.spec.id;
        let poisoned = run.dispatch.poisoned_indices();
        if !poisoned.is_empty() {
            self.conclude(
                id,
                JobPhase::Failed,
                format!(
                    "{} spec(s) {:?} repeatedly killed their workers and were poisoned \
                     ({} other spec(s) completed and journaled)",
                    poisoned.len(),
                    poisoned,
                    run.done_count(),
                ),
            );
            return;
        }
        let mut records = run.resumed.clone();
        records.extend(
            run.results
                .lock()
                .expect("results mutex poisoned")
                .iter()
                .cloned(),
        );
        records.sort_by_key(|(index, _)| *index);
        match self.planner.finalize(&run.spec, records) {
            Ok(detail) => self.conclude(id, JobPhase::Completed, detail),
            Err(detail) => self.conclude(id, JobPhase::Failed, detail),
        }
    }

    /// Fails a run exactly once (deterministic run failure, lost
    /// durability) and aborts its outstanding dispatch.
    fn fail_job(&self, run: &Arc<JobRun>, detail: String) {
        if run.settled.swap(true, Ordering::SeqCst) {
            return;
        }
        run.dispatch.abort();
        self.conclude(run.spec.id, JobPhase::Failed, detail);
    }

    /// Opens the highest-priority queued job: expands it through the
    /// planner, replays its journal, and publishes the run. Returns
    /// whether any queued job was taken (even if opening it failed).
    fn open_next_job(&self) -> bool {
        let spec = {
            let mut queue = self.queue.lock().expect("queue mutex poisoned");
            let next = queue
                .runnable()
                .iter()
                .find(|job| job.phase == JobPhase::Queued)
                .map(|job| job.spec.clone());
            let Some(spec) = next else {
                return false;
            };
            if queue.set_phase(spec.id, JobPhase::Running, None).is_err() {
                return false;
            }
            spec
        };
        self.update_job_gauges();
        let plan = match self.planner.open(&spec.payload) {
            Ok(plan)
                if plan.fingerprint == spec.fingerprint && plan.spec_count == spec.spec_count =>
            {
                plan
            }
            Ok(plan) => {
                self.conclude(
                    spec.id,
                    JobPhase::Failed,
                    format!(
                        "payload re-expanded to fingerprint {:#018x}/{} specs, \
                         submitted as {:#018x}/{} (planner changed?)",
                        plan.fingerprint, plan.spec_count, spec.fingerprint, spec.spec_count
                    ),
                );
                return true;
            }
            Err(detail) => {
                self.conclude(
                    spec.id,
                    JobPhase::Failed,
                    format!("payload no longer expands: {detail}"),
                );
                return true;
            }
        };
        let journal_path = {
            let queue = self.queue.lock().expect("queue mutex poisoned");
            queue.journal_path(spec.id)
        };
        let mut resumed: Vec<(usize, Value)> = Vec::new();
        let mut writer = None;
        let mut replayed: Vec<bool> = vec![false; plan.spec_count];
        if let Some(path) = &journal_path {
            let loaded = match load_journal(path, spec.fingerprint) {
                Ok(loaded) => loaded,
                Err(e) => {
                    self.conclude(
                        spec.id,
                        JobPhase::Failed,
                        format!("journal {} unreadable: {e}", path.display()),
                    );
                    return true;
                }
            };
            for (index, entry) in loaded.entries {
                // Same replay guard as the one-shot coordinator: the spec
                // must still exist and still resolve to the journaled seed.
                if index < plan.spec_count && plan.seeds[index] == entry.seed {
                    replayed[index] = true;
                    resumed.push((index, entry.record));
                }
            }
            writer = match JournalWriter::append_to(path) {
                Ok(writer) => Some(writer),
                Err(e) => {
                    self.conclude(
                        spec.id,
                        JobPhase::Failed,
                        format!("journal {} unwritable: {e}", path.display()),
                    );
                    return true;
                }
            };
        }
        let pending: Vec<usize> = (0..plan.spec_count).filter(|&i| !replayed[i]).collect();
        let run = Arc::new(JobRun {
            spec: spec.clone(),
            dispatch: Dispatch::new(&pending, false, self.config.poison_after),
            resumed,
            results: Mutex::new(Vec::with_capacity(pending.len())),
            journal: Mutex::new(writer),
            servers: AtomicUsize::new(0),
            settled: AtomicBool::new(false),
        });
        event(
            "job",
            format!(
                "job {} `{}` opened: {} spec(s), {} resumed",
                spec.id,
                spec.name,
                spec.spec_count,
                run.resumed.len()
            ),
        );
        self.open_jobs
            .lock()
            .expect("open-jobs mutex poisoned")
            .insert(spec.id, run.clone());
        self.notify();
        if run.dispatch.is_finished() {
            // Fully journaled already: settle without assigning anything.
            self.settle_job(&run);
        }
        true
    }

    /// Picks the best claimable batch across open jobs, opening queued
    /// jobs as needed; parks until work appears, the service drains, or
    /// the accept loop stops.
    fn claim(&self, threads: usize) -> Claim {
        loop {
            if self.stopping.load(Ordering::Relaxed) {
                return Claim::Retire;
            }
            {
                let open = self.open_jobs.lock().expect("open-jobs mutex poisoned");
                let mut candidates: Vec<&Arc<JobRun>> = open.values().collect();
                candidates.sort_by(|a, b| {
                    b.spec
                        .priority
                        .cmp(&a.spec.priority)
                        .then(
                            a.servers
                                .load(Ordering::Relaxed)
                                .cmp(&b.servers.load(Ordering::Relaxed)),
                        )
                        .then(a.spec.id.cmp(&b.spec.id))
                });
                for run in candidates {
                    if let Some(batch) = run.dispatch.try_pop_batch(threads) {
                        return Claim::Work(run.clone(), batch);
                    }
                }
            }
            if self.open_next_job() {
                continue;
            }
            if self.draining.load(Ordering::Relaxed)
                && self
                    .queue
                    .lock()
                    .expect("queue mutex poisoned")
                    .all_terminal()
            {
                return Claim::Retire;
            }
            let guard = self.open_jobs.lock().expect("open-jobs mutex poisoned");
            let _ = self
                .work
                .wait_timeout(guard, WORK_POLL)
                .expect("open-jobs mutex poisoned");
        }
    }

    /// Accepts one result: journal first (durability before visibility),
    /// then the in-memory record set; settles the job when it was the
    /// last index.
    fn on_record(&self, slot: u64, run: &Arc<JobRun>, index: usize, seed: u64, record: Value) {
        if !run.dispatch.complete(index) {
            // A twin finished first (re-dispatched suspect that was still
            // live elsewhere): byte-identical by construction, drop it.
            fleet_update(slot, |s| s.duplicates_lost += 1);
            return;
        }
        let mut entry = CheckpointEntry {
            fingerprint: run.spec.fingerprint,
            index,
            seed,
            record,
        };
        let journaled = {
            let mut journal = run.journal.lock().expect("journal mutex poisoned");
            match journal.as_mut() {
                Some(writer) => writer.append(&entry).map_err(|e| e.to_string()),
                None => Ok(()),
            }
        };
        if let Err(detail) = journaled {
            // Durability lost: completing more work that can never be
            // resumed helps nobody — fail the job, keep the fleet.
            self.fail_job(run, format!("journal append failed: {detail}"));
            return;
        }
        fleet_update(slot, |s| s.done += 1);
        counter!("cluster.specs_done").inc();
        counter!("service.records").inc();
        self.registry.record_done(slot);
        run.results
            .lock()
            .expect("results mutex poisoned")
            .push((index, std::mem::replace(&mut entry.record, Value::Null)));
        if run.dispatch.is_finished() {
            self.settle_job(run);
        }
        self.notify();
    }

    /// Hands a lost session's outstanding work back to its job's dispatch
    /// queue and surfaces the loss detail.
    fn lose_batch(
        &self,
        run: &Arc<JobRun>,
        outstanding: &VecDeque<usize>,
        was_suspect: bool,
        detail: String,
    ) -> Result<(), String> {
        run.dispatch.settle_loss(outstanding, was_suspect);
        self.notify();
        Err(detail)
    }

    /// Serves one claimed batch over a worker channel. `Ok` means the
    /// channel survived; `Err` carries the loss detail (outstanding work
    /// already settled back into the dispatch queue).
    fn serve_batch(
        &self,
        slot: u64,
        transport: &mut dyn Transport,
        run: &Arc<JobRun>,
        batch: &Batch,
        needs_open: bool,
    ) -> Result<(), String> {
        let mut outstanding: VecDeque<usize> = batch.indices.iter().copied().collect();
        macro_rules! lose {
            ($($detail:tt)*) => {
                return self.lose_batch(run, &outstanding, batch.suspect, format!($($detail)*))
            };
        }
        if needs_open {
            let open = Message::JobOpen(JobOpen {
                job_id: run.spec.id,
                payload: run.spec.payload.clone(),
                fingerprint: run.spec.fingerprint,
                spec_count: run.spec.spec_count,
            });
            let _ = transport.set_read_timeout(Some(self.config.handshake_timeout));
            if let Err(e) = transport.send(&open) {
                lose!("shipping job {} failed: {e}", run.spec.id);
            }
            match transport.recv() {
                Ok(Message::JobReady(ready)) => {
                    if ready.job_id != run.spec.id
                        || ready.fingerprint != run.spec.fingerprint
                        || ready.spec_count != run.spec.spec_count
                    {
                        lose!(
                            "worker expanded job {} to fingerprint {:#018x}/{} specs, \
                             daemon has {:#018x}/{}",
                            run.spec.id,
                            ready.fingerprint,
                            ready.spec_count,
                            run.spec.fingerprint,
                            run.spec.spec_count
                        );
                    }
                }
                Ok(Message::ServiceErr(err)) => {
                    lose!("worker refused job {}: {}", run.spec.id, err.detail);
                }
                Ok(other) => {
                    lose!("expected JobReady, got {other:?}");
                }
                Err(e) => lose!("job handshake failed: {e}"),
            }
        }
        let _ = transport.set_read_timeout(self.config.assign_timeout);
        if let Err(e) = transport.send(&Message::Assign(Assign {
            indices: batch.indices.clone(),
        })) {
            lose!("assigning batch {:?} failed: {e}", batch.indices);
        }
        fleet_update(slot, |s| s.assigned += batch.indices.len() as u64);
        counter!("cluster.specs_assigned").add(batch.indices.len() as u64);
        while !outstanding.is_empty() {
            let done = match transport.recv() {
                Ok(Message::Done(done)) => done,
                Ok(Message::Ping) => {
                    fleet_update(slot, |s| s.pings += 1);
                    counter!("cluster.pings").inc();
                    if let Err(e) = transport.send(&Message::Pong) {
                        lose!("heartbeat reply failed: {e}");
                    }
                    continue;
                }
                Ok(other) => {
                    lose!("expected Done, got {other:?}");
                }
                Err(e) => {
                    lose!("reading result of batch {outstanding:?} failed: {e}");
                }
            };
            let Done {
                index,
                seed,
                outcome,
                stats,
            } = done;
            if let Some(stats) = &stats {
                fleet_update(slot, |s| {
                    s.worker_specs_done += stats.specs_done;
                    s.worker_eval_ns += stats.eval_ns;
                    s.worker_plan_hits += stats.plan_hits;
                    s.worker_plan_misses += stats.plan_misses;
                    s.rtt_count += stats.rtt_count;
                    s.rtt_ns_sum += stats.rtt_ns_sum;
                    s.rtt_ns_max = s.rtt_ns_max.max(stats.rtt_ns_max);
                });
            }
            let Some(pos) = outstanding.iter().position(|&i| i == index) else {
                lose!("got result for unassigned spec {index}");
            };
            outstanding.remove(pos);
            match outcome {
                Outcome::Record(record) => self.on_record(slot, run, index, seed, record),
                Outcome::Failed(detail) => {
                    // Deterministic: retrying fails the same way. The job
                    // dies; the worker is innocent and keeps serving other
                    // jobs, so drain the rest of the batch normally.
                    run.dispatch.complete(index);
                    self.fail_job(
                        run,
                        format!("spec {index} failed deterministically: {detail}"),
                    );
                }
            }
        }
        Ok(())
    }

    /// Drives one registered worker session until it deregisters, the
    /// service drains, or the channel dies.
    fn worker_session(&self, slot: u64, name: &str, threads: usize, transport: &mut dyn Transport) {
        let mut current_job: Option<u64> = None;
        loop {
            let _ = transport.set_read_timeout(Some(self.config.handshake_timeout));
            match transport.recv() {
                Ok(Message::Ready) => {}
                Ok(Message::Deregister) => {
                    let _ = transport.send(&Message::Shutdown);
                    self.registry.retire(slot, true);
                    event("fleet", format!("slot {slot} ({name}) deregistered"));
                    return;
                }
                Ok(other) => {
                    self.strike(slot, name, format!("expected Ready, got {other:?}"));
                    return;
                }
                Err(e) => {
                    self.strike(slot, name, format!("worker channel lost: {e}"));
                    return;
                }
            }
            match self.claim(threads) {
                Claim::Retire => {
                    let _ = transport.send(&Message::Shutdown);
                    self.registry.retire(slot, true);
                    return;
                }
                Claim::Work(run, batch) => {
                    run.servers.fetch_add(1, Ordering::Relaxed);
                    self.registry.set_job(slot, Some(run.spec.id));
                    let needs_open = current_job != Some(run.spec.id);
                    let served = self.serve_batch(slot, transport, &run, &batch, needs_open);
                    run.servers.fetch_sub(1, Ordering::Relaxed);
                    self.registry.set_job(slot, None);
                    match served {
                        Ok(()) => current_job = Some(run.spec.id),
                        Err(detail) => {
                            self.strike(slot, name, detail);
                            return;
                        }
                    }
                }
            }
        }
    }

    /// Retires a slot with blame and records the strike in telemetry.
    fn strike(&self, slot: u64, name: &str, detail: String) {
        let strikes = self.registry.retire(slot, false);
        fleet_update(slot, |s| {
            s.strikes += 1;
            s.last_error = Some(detail.clone());
            if self.registry.is_quarantined(name) {
                s.quarantined = true;
            }
        });
        counter!("service.worker_strikes").inc();
        event(
            "fleet",
            format!("slot {slot} ({name}) lost (strike {strikes}): {detail}"),
        );
        self.notify();
    }

    /// Resolves a client token to `(tenant label, is_fleet_principal)`.
    fn resolve_principal(&self, token: &str) -> Option<(String, bool)> {
        if token == self.config.fleet_token {
            return Some(("fleet".to_string(), true));
        }
        self.config
            .tenants
            .iter()
            .find(|(_, t)| t == token)
            .map(|(name, _)| (name.clone(), false))
    }

    fn status_reply(&self, tenant: &str, fleet: bool) -> StatusReply {
        let open = self.open_jobs.lock().expect("open-jobs mutex poisoned");
        let queue = self.queue.lock().expect("queue mutex poisoned");
        let jobs = queue
            .jobs()
            .filter(|job| fleet || job.spec.tenant == tenant)
            .map(|job| {
                let done = match job.phase {
                    JobPhase::Completed => job.spec.spec_count,
                    _ => open
                        .get(&job.spec.id)
                        .map(|run| run.done_count())
                        .unwrap_or(0),
                };
                JobStatusInfo {
                    job_id: job.spec.id,
                    name: job.spec.name.clone(),
                    tenant: job.spec.tenant.clone(),
                    priority: job.spec.priority,
                    phase: job.phase.name().to_string(),
                    done,
                    total: job.spec.spec_count,
                    detail: job.detail.clone(),
                }
            })
            .collect();
        let workers = self
            .registry
            .snapshot()
            .into_iter()
            .map(|(slot, worker, strikes, quarantined)| SlotStatusInfo {
                slot,
                name: worker.name,
                active: worker.active,
                done: worker.done,
                strikes,
                quarantined,
                job: worker.job,
            })
            .collect();
        StatusReply {
            jobs,
            workers,
            draining: self.draining.load(Ordering::Relaxed),
        }
    }

    /// Handles one authenticated client command and returns the reply.
    fn client_command(&self, tenant: &str, fleet: bool, command: Message) -> Message {
        match command {
            Message::Submit(submit) => {
                if self.draining.load(Ordering::Relaxed) {
                    return refuse(ServiceErrKind::Draining, "service is draining".into());
                }
                let plan = match self.planner.open(&submit.payload) {
                    Ok(plan) => plan,
                    Err(detail) => return refuse(ServiceErrKind::BadPayload, detail),
                };
                let submitted = {
                    let mut queue = self.queue.lock().expect("queue mutex poisoned");
                    queue.submit(
                        &submit.name,
                        tenant,
                        submit.priority,
                        &submit.payload,
                        plan.fingerprint,
                        plan.spec_count,
                    )
                };
                match submitted {
                    Ok(job_id) => {
                        event(
                            "job",
                            format!(
                                "job {job_id} `{}` submitted by {tenant} \
                                 (priority {}, {} specs)",
                                submit.name, submit.priority, plan.spec_count
                            ),
                        );
                        self.update_job_gauges();
                        self.notify();
                        Message::Submitted(Submitted {
                            job_id,
                            fingerprint: plan.fingerprint,
                        })
                    }
                    Err(QueueError::DuplicateFingerprint(existing)) => refuse(
                        ServiceErrKind::DuplicateFingerprint,
                        format!("non-terminal job {existing} already holds this campaign"),
                    ),
                    Err(e) => refuse(ServiceErrKind::BadPayload, e.to_string()),
                }
            }
            Message::Status => Message::StatusReply(self.status_reply(tenant, fleet)),
            Message::Cancel(cancel) => {
                let scope = if fleet { None } else { Some(tenant) };
                let cancelled = {
                    let mut queue = self.queue.lock().expect("queue mutex poisoned");
                    queue.cancel(cancel.job_id, scope)
                };
                match cancelled {
                    Ok(()) => {
                        self.jobs_failed.fetch_add(1, Ordering::Relaxed);
                        if let Some(run) = self
                            .open_jobs
                            .lock()
                            .expect("open-jobs mutex poisoned")
                            .get(&cancel.job_id)
                            .cloned()
                        {
                            // Mark settled so no late finalize resurrects
                            // it; in-flight batches drain and journal, so a
                            // resubmission resumes their work.
                            run.settled.store(true, Ordering::SeqCst);
                            run.dispatch.abort();
                        }
                        self.open_jobs
                            .lock()
                            .expect("open-jobs mutex poisoned")
                            .remove(&cancel.job_id);
                        event(
                            "job",
                            format!("job {} cancelled by {tenant}", cancel.job_id),
                        );
                        self.update_job_gauges();
                        self.notify();
                        Message::CancelOk(cancel.job_id)
                    }
                    Err(QueueError::UnknownJob(id)) => refuse(
                        ServiceErrKind::UnknownJob,
                        format!("no job {id} visible to {tenant}"),
                    ),
                    Err(QueueError::Terminal(id)) => refuse(
                        ServiceErrKind::UnknownJob,
                        format!("job {id} already settled"),
                    ),
                    Err(e) => refuse(ServiceErrKind::BadPayload, e.to_string()),
                }
            }
            Message::Drain => {
                self.draining.store(true, Ordering::Relaxed);
                event("service", format!("drain requested by {tenant}"));
                self.notify();
                loop {
                    if self
                        .queue
                        .lock()
                        .expect("queue mutex poisoned")
                        .all_terminal()
                    {
                        break;
                    }
                    let guard = self.open_jobs.lock().expect("open-jobs mutex poisoned");
                    let _ = self
                        .work
                        .wait_timeout(guard, WORK_POLL)
                        .expect("open-jobs mutex poisoned");
                }
                Message::DrainOk(DrainOk {
                    jobs_completed: self.jobs_completed.load(Ordering::Relaxed),
                    jobs_failed: self.jobs_failed.load(Ordering::Relaxed),
                })
            }
            other => refuse(
                ServiceErrKind::BadPayload,
                format!("unsupported command {other:?}"),
            ),
        }
    }

    /// Serves one accepted connection, classified by its first frame.
    fn session(&self, transport: &mut dyn Transport) {
        let _ = transport.set_read_timeout(Some(self.config.handshake_timeout));
        let first = match transport.recv() {
            Ok(first) => first,
            // The drain wake-up lands here: a connection that says nothing.
            Err(_) => return,
        };
        match first {
            Message::Register(register) => {
                if register.token != self.config.fleet_token {
                    let _ = transport.send(&refuse(
                        ServiceErrKind::BadToken,
                        "fleet token mismatch".into(),
                    ));
                    return;
                }
                match self.registry.register(&register.name, register.threads) {
                    Ok(slot) => {
                        if register.build != self.config.build {
                            event(
                                "build_mismatch",
                                format!(
                                    "slot {slot}: worker build {:?} differs from daemon {:?}",
                                    register.build, self.config.build
                                ),
                            );
                        }
                        if transport.send(&Message::RegisterAck(slot)).is_err() {
                            self.registry.retire(slot, false);
                            return;
                        }
                        event(
                            "fleet",
                            format!(
                                "slot {slot}: worker `{}` registered ({} thread(s)) from {}",
                                register.name,
                                register.threads,
                                transport.peer()
                            ),
                        );
                        counter!("service.registrations").inc();
                        self.worker_session(slot, &register.name, register.threads, transport);
                    }
                    Err(RegisterRefusal::Quarantined(strikes)) => {
                        let _ = transport.send(&refuse(
                            ServiceErrKind::Quarantined,
                            format!(
                                "worker name `{}` is quarantined after {strikes} channel \
                                 strike(s); register under a fresh name",
                                register.name
                            ),
                        ));
                    }
                }
            }
            Message::Hello(hello) => {
                let Some((tenant, fleet)) = self.resolve_principal(&hello.token) else {
                    let _ = transport.send(&refuse(
                        ServiceErrKind::BadToken,
                        "token matches no tenant".into(),
                    ));
                    return;
                };
                // Complete the mutual handshake; never echo any token.
                let ours = Message::Hello(Hello {
                    worker_id: 0,
                    fingerprint: 0,
                    spec_count: 0,
                    token: String::new(),
                    threads: 0,
                    build: self.config.build.clone(),
                });
                if transport.send(&ours).is_err() {
                    return;
                }
                let command = match transport.recv() {
                    Ok(command) => command,
                    Err(_) => return,
                };
                let drain = matches!(command, Message::Drain);
                let reply = self.client_command(&tenant, fleet, command);
                let _ = transport.send(&reply);
                if drain && matches!(reply, Message::DrainOk(_)) {
                    self.stop();
                }
            }
            _ => {
                // Neither a registration nor a client handshake: drop it.
            }
        }
    }

    /// Stops the accept loop (idle workers retire at their next `Ready`).
    fn stop(&self) {
        self.stopping.store(true, Ordering::Relaxed);
        self.notify();
        if let Some(addr) = &self.wake_addr {
            // Unblock a TCP accept with a throwaway connection; non-TCP
            // listeners are expected to fail accept on their own when
            // their feeding side closes.
            let _ = TcpTransport::connect(addr, Duration::from_secs(1));
        }
    }
}

fn refuse(kind: ServiceErrKind, detail: String) -> Message {
    Message::ServiceErr(ServiceErr { kind, detail })
}

/// Runs the service daemon until a client drains it.
///
/// Every accepted connection is served on its own scoped thread; the call
/// returns once a `Drain` command has settled every job and the accept
/// loop has stopped.
///
/// # Errors
///
/// Returns [`ClusterError::Io`] when the state directory cannot be opened
/// or the listener dies before a drain, and [`ClusterError::Config`] for
/// nonsense thresholds (mirroring the static pool's validation).
pub fn serve(
    mut listener: Box<dyn Listener>,
    planner: &dyn JobPlanner,
    config: &ServiceConfig,
) -> Result<ServiceSummary, ClusterError> {
    if config.handshake_timeout.is_zero() {
        return Err(ClusterError::Config(
            "handshake timeout must be positive".into(),
        ));
    }
    if matches!(config.assign_timeout, Some(t) if t.is_zero()) {
        return Err(ClusterError::Config(
            "assign timeout must be positive (omit it to wait forever)".into(),
        ));
    }
    if config.poison_after == 0 {
        return Err(ClusterError::Config(
            "poison-after threshold must be at least 1".into(),
        ));
    }
    if config.quarantine_after == Some(0) {
        return Err(ClusterError::Config(
            "quarantine-after threshold must be at least 1 (omit it to disable)".into(),
        ));
    }
    let queue = match &config.state_dir {
        Some(dir) => JobQueue::open(dir)
            .map_err(|e| ClusterError::Io(format!("state dir {} unusable: {e}", dir.display())))?,
        None => JobQueue::in_memory(),
    };
    if queue.dropped_lines > 0 {
        event(
            "service",
            format!(
                "{} corrupt job-log line(s) dropped on replay",
                queue.dropped_lines
            ),
        );
    }
    let engine = Engine {
        planner,
        config,
        queue: Mutex::new(queue),
        registry: WorkerRegistry::new(config.quarantine_after),
        open_jobs: Mutex::new(BTreeMap::new()),
        work: Condvar::new(),
        draining: AtomicBool::new(false),
        stopping: AtomicBool::new(false),
        jobs_completed: AtomicUsize::new(0),
        jobs_failed: AtomicUsize::new(0),
        sessions: AtomicUsize::new(0),
        wake_addr: listener.local_addr().ok(),
    };
    engine.update_job_gauges();
    let accept_result: Result<(), ClusterError> = std::thread::scope(|scope| {
        loop {
            if engine.stopping.load(Ordering::Relaxed) {
                return Ok(());
            }
            match listener.accept() {
                Ok(mut transport) => {
                    engine.sessions.fetch_add(1, Ordering::Relaxed);
                    let engine = &engine;
                    scope.spawn(move || engine.session(transport.as_mut()));
                }
                Err(e) => {
                    if engine.stopping.load(Ordering::Relaxed) {
                        return Ok(());
                    }
                    // The listener died under a live service: unblock any
                    // parked sessions before reporting.
                    engine.stopping.store(true, Ordering::Relaxed);
                    engine.notify();
                    return Err(ClusterError::Io(format!("accept failed: {e}")));
                }
            }
        }
    });
    accept_result?;
    Ok(ServiceSummary {
        jobs_completed: engine.jobs_completed.load(Ordering::Relaxed),
        jobs_failed: engine.jobs_failed.load(Ordering::Relaxed),
        sessions: engine.sessions.load(Ordering::Relaxed),
    })
}

//! Append-only JSONL checkpoint journal.
//!
//! The coordinator appends one [`Message::Checkpoint`] line per completed
//! run, flushed immediately, so an interrupted campaign (crash, OOM-kill,
//! Ctrl-C) leaves a valid prefix of its progress on disk. On `--resume`,
//! [`load_journal`] replays every line whose fingerprint matches the
//! campaign being run; lines from other campaigns are counted and skipped,
//! and a torn final line (the interrupted write itself) is tolerated.

use crate::protocol::{CheckpointEntry, Message};
use std::collections::BTreeMap;
use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// Appends checkpoint entries to a journal file, one JSONL line per run.
#[derive(Debug)]
pub struct JournalWriter {
    file: File,
    path: PathBuf,
    appended: usize,
}

impl JournalWriter {
    /// Opens (creating if needed) `path` for appending.
    ///
    /// If the existing journal ends mid-line (the torn write of an
    /// interrupted invocation), a newline is appended first so new entries
    /// never fuse onto the torn fragment.
    ///
    /// # Errors
    ///
    /// Propagates the underlying open/create failure.
    pub fn append_to(path: &Path) -> io::Result<Self> {
        let mut needs_newline = false;
        match File::open(path) {
            Ok(mut existing) => {
                if existing.metadata()?.len() > 0 {
                    existing.seek(SeekFrom::End(-1))?;
                    let mut last = [0u8; 1];
                    existing.read_exact(&mut last)?;
                    needs_newline = last[0] != b'\n';
                }
            }
            Err(e) if e.kind() == io::ErrorKind::NotFound => {}
            Err(e) => return Err(e),
        }
        let mut file = OpenOptions::new().create(true).append(true).open(path)?;
        if needs_newline {
            file.write_all(b"\n")?;
        }
        Ok(JournalWriter {
            file,
            path: path.to_path_buf(),
            appended: 0,
        })
    }

    /// Appends one completed run and flushes it to the OS.
    ///
    /// # Errors
    ///
    /// Propagates write/flush failures; the journal may then hold a torn
    /// final line, which [`load_journal`] tolerates.
    pub fn append(&mut self, entry: &CheckpointEntry) -> io::Result<()> {
        let line = serde_json::to_string(&Message::Checkpoint(entry.clone()))
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        self.file.write_all(line.as_bytes())?;
        self.file.write_all(b"\n")?;
        self.file.flush()?;
        self.appended += 1;
        Ok(())
    }

    /// How many entries this writer has appended.
    pub fn appended(&self) -> usize {
        self.appended
    }

    /// The journal file path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

/// The result of replaying a journal against one campaign fingerprint.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadedJournal {
    /// Matching entries, keyed by spec index (the latest line wins if an
    /// index was journaled twice, e.g. across a respawn race).
    pub entries: BTreeMap<usize, CheckpointEntry>,
    /// Lines that parsed but belong to a different campaign fingerprint.
    pub foreign: usize,
    /// Lines that failed to parse (torn trailing writes, stray text).
    pub corrupt: usize,
}

/// Replays the journal at `path`, keeping entries for `fingerprint`.
///
/// A missing file is an empty journal, not an error — resuming a campaign
/// that never checkpointed simply runs everything.
///
/// # Errors
///
/// Propagates read failures other than `NotFound`.
pub fn load_journal(path: &Path, fingerprint: u64) -> io::Result<LoadedJournal> {
    let text = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(e) if e.kind() == io::ErrorKind::NotFound => String::new(),
        Err(e) => return Err(e),
    };
    let mut loaded = LoadedJournal {
        entries: BTreeMap::new(),
        foreign: 0,
        corrupt: 0,
    };
    for line in text.lines() {
        if line.trim().is_empty() {
            continue;
        }
        match serde_json::from_str::<Message>(line) {
            Ok(Message::Checkpoint(entry)) if entry.fingerprint == fingerprint => {
                loaded.entries.insert(entry.index, entry);
            }
            Ok(Message::Checkpoint(_)) => loaded.foreign += 1,
            Ok(_) | Err(_) => loaded.corrupt += 1,
        }
    }
    Ok(loaded)
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde::Value;

    fn entry(fingerprint: u64, index: usize, energy: f64) -> CheckpointEntry {
        CheckpointEntry {
            fingerprint,
            index,
            seed: 0x5eed + index as u64,
            record: Value::Object(vec![("final_energy".into(), Value::F64(energy))]),
        }
    }

    fn temp_path(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("qismet-journal-{tag}-{}.jsonl", std::process::id()))
    }

    #[test]
    fn write_then_load_roundtrips_matching_entries() {
        let path = temp_path("roundtrip");
        let _ = std::fs::remove_file(&path);
        {
            let mut w = JournalWriter::append_to(&path).unwrap();
            w.append(&entry(7, 0, -5.5)).unwrap();
            w.append(&entry(7, 3, 0.1 + 0.2)).unwrap();
            w.append(&entry(99, 1, -1.0)).unwrap(); // foreign campaign
            assert_eq!(w.appended(), 3);
        }
        let loaded = load_journal(&path, 7).unwrap();
        assert_eq!(loaded.entries.len(), 2);
        assert_eq!(loaded.foreign, 1);
        assert_eq!(loaded.corrupt, 0);
        let x = loaded.entries[&3].record.get("final_energy").unwrap();
        assert_eq!(x.as_f64().unwrap().to_bits(), (0.1f64 + 0.2).to_bits());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn torn_final_line_is_tolerated() {
        let path = temp_path("torn");
        let _ = std::fs::remove_file(&path);
        {
            let mut w = JournalWriter::append_to(&path).unwrap();
            w.append(&entry(7, 0, -5.5)).unwrap();
        }
        // Simulate a kill mid-append: a truncated JSON line with no newline.
        {
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            f.write_all(b"{\"Checkpoint\":{\"fingerprint\":7,\"ind")
                .unwrap();
        }
        let loaded = load_journal(&path, 7).unwrap();
        assert_eq!(loaded.entries.len(), 1);
        assert_eq!(loaded.corrupt, 1);
        // Appending after the interruption must not fuse onto the torn
        // fragment: `append_to` terminates it first, so the fragment stays
        // one corrupt line and the new entry loads intact.
        {
            let mut w = JournalWriter::append_to(&path).unwrap();
            w.append(&entry(7, 5, 2.0)).unwrap();
        }
        let reloaded = load_journal(&path, 7).unwrap();
        assert_eq!(reloaded.entries.len(), 2);
        assert!(reloaded.entries.contains_key(&0));
        assert!(reloaded.entries.contains_key(&5));
        assert_eq!(reloaded.corrupt, 1);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn missing_journal_is_empty() {
        let loaded = load_journal(Path::new("/nonexistent/qismet.jsonl"), 1).unwrap();
        assert!(loaded.entries.is_empty());
        assert_eq!(loaded.foreign + loaded.corrupt, 0);
    }

    #[test]
    fn latest_entry_wins_per_index() {
        let path = temp_path("latest");
        let _ = std::fs::remove_file(&path);
        {
            let mut w = JournalWriter::append_to(&path).unwrap();
            w.append(&entry(7, 2, 1.0)).unwrap();
            w.append(&entry(7, 2, 2.0)).unwrap();
        }
        let loaded = load_journal(&path, 7).unwrap();
        assert_eq!(loaded.entries.len(), 1);
        let x = loaded.entries[&2].record.get("final_energy").unwrap();
        assert_eq!(x.as_f64().unwrap(), 2.0);
        std::fs::remove_file(&path).unwrap();
    }
}

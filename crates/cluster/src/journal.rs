//! Append-only JSONL checkpoint journal.
//!
//! The coordinator appends one [`Message::Checkpoint`] line per completed
//! run, flushed immediately, so an interrupted campaign (crash, OOM-kill,
//! Ctrl-C) leaves a valid prefix of its progress on disk. On `--resume`,
//! [`load_journal`] replays every line whose fingerprint matches the
//! campaign being run; lines from other campaigns are counted and skipped,
//! and a torn final line (the interrupted write itself) is tolerated.
//!
//! Every line the writer appends is prefixed with a 16-hex-digit FNV-1a
//! checksum of the JSON body (`<checksum> <json>`), so corruption in the
//! *middle* of a journal — a flipped bit, an overwritten block, a partial
//! line from an interleaved writer — is detected and the damaged line
//! skipped (counted in [`LoadedJournal::mismatched`]) instead of silently
//! resuming from a record that was never durably written. Bare legacy
//! lines without a checksum still load, so pre-existing journals resume
//! unchanged.

use crate::protocol::{CheckpointEntry, Message};
use crate::Fingerprint;
use std::collections::BTreeMap;
use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// Appends checkpoint entries to a journal file, one JSONL line per run.
#[derive(Debug)]
pub struct JournalWriter {
    file: File,
    path: PathBuf,
    appended: usize,
}

impl JournalWriter {
    /// Opens (creating if needed) `path` for appending.
    ///
    /// If the existing journal ends mid-line (the torn write of an
    /// interrupted invocation), a newline is appended first so new entries
    /// never fuse onto the torn fragment.
    ///
    /// # Errors
    ///
    /// Propagates the underlying open/create failure.
    pub fn append_to(path: &Path) -> io::Result<Self> {
        let mut needs_newline = false;
        match File::open(path) {
            Ok(mut existing) => {
                if existing.metadata()?.len() > 0 {
                    existing.seek(SeekFrom::End(-1))?;
                    let mut last = [0u8; 1];
                    existing.read_exact(&mut last)?;
                    needs_newline = last[0] != b'\n';
                }
            }
            Err(e) if e.kind() == io::ErrorKind::NotFound => {}
            Err(e) => return Err(e),
        }
        let mut file = OpenOptions::new().create(true).append(true).open(path)?;
        if needs_newline {
            file.write_all(b"\n")?;
        }
        Ok(JournalWriter {
            file,
            path: path.to_path_buf(),
            appended: 0,
        })
    }

    /// Appends one completed run (checksum-prefixed) and flushes it to the
    /// OS.
    ///
    /// # Errors
    ///
    /// Propagates write/flush failures; the journal may then hold a torn
    /// final line, which [`load_journal`] tolerates.
    pub fn append(&mut self, entry: &CheckpointEntry) -> io::Result<()> {
        let body = serde_json::to_string(&Message::Checkpoint(entry.clone()))
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        let line = format!("{:016x} {body}\n", line_checksum(&body));
        self.file.write_all(line.as_bytes())?;
        self.file.flush()?;
        self.appended += 1;
        Ok(())
    }

    /// How many entries this writer has appended.
    pub fn appended(&self) -> usize {
        self.appended
    }

    /// The journal file path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

/// The result of replaying a journal against one campaign fingerprint.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadedJournal {
    /// Matching entries, keyed by spec index (the latest line wins if an
    /// index was journaled twice, e.g. across a respawn race).
    pub entries: BTreeMap<usize, CheckpointEntry>,
    /// Lines that parsed but belong to a different campaign fingerprint.
    pub foreign: usize,
    /// Lines that failed to parse (torn trailing writes, stray text).
    pub corrupt: usize,
    /// Lines whose checksum prefix did not match their body (mid-journal
    /// corruption); skipped rather than replayed.
    pub mismatched: usize,
}

/// FNV-1a over the JSON body of one journal line. Shared with the job
/// queue's event log, which uses the same `<checksum> <json>` discipline.
pub(crate) fn line_checksum(body: &str) -> u64 {
    let mut hash = Fingerprint::new();
    hash.update(body.as_bytes());
    hash.finish()
}

/// Splits a `<16-hex-digit checksum> <json>` line. Returns `None` for
/// legacy (bare JSON) lines, `Some(Err(()))` for a checksum mismatch, and
/// `Some(Ok(body))` when the checksum verifies.
pub(crate) fn split_checksummed(line: &str) -> Option<Result<&str, ()>> {
    let (prefix, body) = line.split_at_checked(16)?;
    let body = body.strip_prefix(' ')?;
    let stored = u64::from_str_radix(prefix, 16).ok()?;
    Some(if stored == line_checksum(body) {
        Ok(body)
    } else {
        Err(())
    })
}

/// Replays the journal at `path`, keeping entries for `fingerprint`.
///
/// A missing file is an empty journal, not an error — resuming a campaign
/// that never checkpointed simply runs everything.
///
/// # Errors
///
/// Propagates read failures other than `NotFound`.
pub fn load_journal(path: &Path, fingerprint: u64) -> io::Result<LoadedJournal> {
    let text = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(e) if e.kind() == io::ErrorKind::NotFound => String::new(),
        Err(e) => return Err(e),
    };
    let mut loaded = LoadedJournal {
        entries: BTreeMap::new(),
        foreign: 0,
        corrupt: 0,
        mismatched: 0,
    };
    for line in text.lines() {
        if line.trim().is_empty() {
            continue;
        }
        let body = match split_checksummed(line) {
            Some(Ok(body)) => body,
            Some(Err(())) => {
                loaded.mismatched += 1;
                continue;
            }
            None => line, // legacy bare-JSON line (or torn fragment)
        };
        match serde_json::from_str::<Message>(body) {
            Ok(Message::Checkpoint(entry)) if entry.fingerprint == fingerprint => {
                loaded.entries.insert(entry.index, entry);
            }
            Ok(Message::Checkpoint(_)) => loaded.foreign += 1,
            Ok(_) | Err(_) => loaded.corrupt += 1,
        }
    }
    Ok(loaded)
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde::Value;

    fn entry(fingerprint: u64, index: usize, energy: f64) -> CheckpointEntry {
        CheckpointEntry {
            fingerprint,
            index,
            seed: 0x5eed + index as u64,
            record: Value::Object(vec![("final_energy".into(), Value::F64(energy))]),
        }
    }

    fn temp_path(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("qismet-journal-{tag}-{}.jsonl", std::process::id()))
    }

    #[test]
    fn write_then_load_roundtrips_matching_entries() {
        let path = temp_path("roundtrip");
        let _ = std::fs::remove_file(&path);
        {
            let mut w = JournalWriter::append_to(&path).unwrap();
            w.append(&entry(7, 0, -5.5)).unwrap();
            w.append(&entry(7, 3, 0.1 + 0.2)).unwrap();
            w.append(&entry(99, 1, -1.0)).unwrap(); // foreign campaign
            assert_eq!(w.appended(), 3);
        }
        let loaded = load_journal(&path, 7).unwrap();
        assert_eq!(loaded.entries.len(), 2);
        assert_eq!(loaded.foreign, 1);
        assert_eq!(loaded.corrupt, 0);
        let x = loaded.entries[&3].record.get("final_energy").unwrap();
        assert_eq!(x.as_f64().unwrap().to_bits(), (0.1f64 + 0.2).to_bits());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn torn_final_line_is_tolerated() {
        let path = temp_path("torn");
        let _ = std::fs::remove_file(&path);
        {
            let mut w = JournalWriter::append_to(&path).unwrap();
            w.append(&entry(7, 0, -5.5)).unwrap();
        }
        // Simulate a kill mid-append: a truncated JSON line with no newline.
        {
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            f.write_all(b"{\"Checkpoint\":{\"fingerprint\":7,\"ind")
                .unwrap();
        }
        let loaded = load_journal(&path, 7).unwrap();
        assert_eq!(loaded.entries.len(), 1);
        assert_eq!(loaded.corrupt, 1);
        // Appending after the interruption must not fuse onto the torn
        // fragment: `append_to` terminates it first, so the fragment stays
        // one corrupt line and the new entry loads intact.
        {
            let mut w = JournalWriter::append_to(&path).unwrap();
            w.append(&entry(7, 5, 2.0)).unwrap();
        }
        let reloaded = load_journal(&path, 7).unwrap();
        assert_eq!(reloaded.entries.len(), 2);
        assert!(reloaded.entries.contains_key(&0));
        assert!(reloaded.entries.contains_key(&5));
        assert_eq!(reloaded.corrupt, 1);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn corrupted_middle_line_is_skipped_not_replayed() {
        let path = temp_path("middle");
        let _ = std::fs::remove_file(&path);
        {
            let mut w = JournalWriter::append_to(&path).unwrap();
            w.append(&entry(7, 0, 1.0)).unwrap();
            w.append(&entry(7, 1, 2.0)).unwrap();
            w.append(&entry(7, 2, 3.0)).unwrap();
        }
        // Flip one byte in the middle line's JSON body (simulating disk or
        // torn-block corruption) without touching its checksum prefix.
        let text = std::fs::read_to_string(&path).unwrap();
        let mut lines: Vec<String> = text.lines().map(str::to_owned).collect();
        assert_eq!(lines.len(), 3);
        let victim = lines[1].clone();
        let flip_at = victim.len() - 5;
        let mut bytes = victim.into_bytes();
        bytes[flip_at] ^= 0x20;
        lines[1] = String::from_utf8(bytes).unwrap();
        std::fs::write(&path, format!("{}\n", lines.join("\n"))).unwrap();

        let loaded = load_journal(&path, 7).unwrap();
        assert_eq!(loaded.mismatched, 1);
        assert_eq!(loaded.corrupt, 0);
        assert_eq!(loaded.entries.len(), 2);
        assert!(loaded.entries.contains_key(&0));
        assert!(!loaded.entries.contains_key(&1));
        assert!(loaded.entries.contains_key(&2));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn checksum_prefix_forgery_does_not_load() {
        let path = temp_path("forged");
        let _ = std::fs::remove_file(&path);
        {
            let mut w = JournalWriter::append_to(&path).unwrap();
            w.append(&entry(7, 0, 1.0)).unwrap();
        }
        // A line with a well-formed prefix but the wrong checksum: the body
        // parses fine, so only verification can reject it.
        let body = serde_json::to_string(&Message::Checkpoint(entry(7, 9, -4.0))).unwrap();
        let forged = format!("{:016x} {body}\n", 0xdead_beef_u64);
        {
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            f.write_all(forged.as_bytes()).unwrap();
        }
        let loaded = load_journal(&path, 7).unwrap();
        assert_eq!(loaded.mismatched, 1);
        assert_eq!(loaded.entries.len(), 1);
        assert!(!loaded.entries.contains_key(&9));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn legacy_unchecksummed_lines_still_load() {
        let path = temp_path("legacy");
        let _ = std::fs::remove_file(&path);
        // A pre-checksum journal: bare JSON lines, no prefix.
        let old = serde_json::to_string(&Message::Checkpoint(entry(7, 4, 8.5))).unwrap();
        std::fs::write(&path, format!("{old}\n")).unwrap();
        {
            let mut w = JournalWriter::append_to(&path).unwrap();
            w.append(&entry(7, 5, 9.5)).unwrap();
        }
        let loaded = load_journal(&path, 7).unwrap();
        assert_eq!(loaded.entries.len(), 2);
        assert_eq!(loaded.mismatched + loaded.corrupt + loaded.foreign, 0);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn missing_journal_is_empty() {
        let loaded = load_journal(Path::new("/nonexistent/qismet.jsonl"), 1).unwrap();
        assert!(loaded.entries.is_empty());
        assert_eq!(loaded.foreign + loaded.corrupt, 0);
    }

    #[test]
    fn latest_entry_wins_per_index() {
        let path = temp_path("latest");
        let _ = std::fs::remove_file(&path);
        {
            let mut w = JournalWriter::append_to(&path).unwrap();
            w.append(&entry(7, 2, 1.0)).unwrap();
            w.append(&entry(7, 2, 2.0)).unwrap();
        }
        let loaded = load_journal(&path, 7).unwrap();
        assert_eq!(loaded.entries.len(), 1);
        let x = loaded.entries[&2].record.get("final_energy").unwrap();
        assert_eq!(x.as_f64().unwrap(), 2.0);
        std::fs::remove_file(&path).unwrap();
    }
}

//! Deterministic fault injection: the single seam every cluster fault
//! flows through.
//!
//! QISMET's premise is that long campaigns must *navigate transient
//! disruptions*; this module makes our own cluster's disruption surface a
//! first-class, reproducible input instead of a pair of ad-hoc environment
//! hooks. A [`FaultPlan`] is a seeded, serializable schedule of faults,
//! each addressed by worker slot and session event count; the plan is
//! executed by [`FaultTransport`] / [`FaultListener`] wrappers that
//! implement the ordinary [`Transport`] / [`Listener`] traits, so the
//! protocol, coordinator, and worker code under test are byte-for-byte the
//! production paths — only the stream beneath them misbehaves, on
//! schedule.
//!
//! The legacy env hooks (`QISMET_CLUSTER_EXIT_AFTER`,
//! `QISMET_NET_DROP_AFTER`, `QISMET_NET_MAX_SESSIONS`) survive as thin
//! adapters: [`FaultPlan::from_env`] translates them into an equivalent
//! plan, so existing CI jobs and scripts keep working unchanged.
//!
//! ## Fault taxonomy
//!
//! | [`FaultKind`]      | Effect at trigger                                     |
//! |--------------------|-------------------------------------------------------|
//! | `Disconnect`       | channel ops fail (`ConnectionAborted`) for the session|
//! | `Hang`             | channel ops block forever (process alive, no frames)  |
//! | `SlowFrames(ms)`   | every subsequent send sleeps `ms` first               |
//! | `TruncateFrame`    | next frame is cut mid-body, then the channel dies     |
//! | `CorruptFrame`     | next frame is replaced by garbage, then the channel   |
//! |                    | dies                                                  |
//! | `CrashProcess`     | `std::process::exit(17)` (the whole worker process)   |
//! | `CrashOnSpec(i)`   | session dies when spec `i` is assigned — once per     |
//! |                    | process lifetime                                      |
//! | `PoisonSpec(i)`    | session dies when spec `i` is assigned — every time   |
//!
//! Count-addressed faults (`after_dones`) trigger once the session has sent
//! that many [`Done`](crate::protocol::Done) frames — matching the legacy
//! hooks' "after N results" semantics. Spec-addressed faults trigger when
//! an [`Assign`](crate::protocol::Assign) containing the spec arrives
//! (gated on `after_dones` too, normally 0).
//!
//! `CrashOnSpec` is "once" *per process lifetime*: a long-lived serve
//! daemon survives it exactly once across all its sessions, which is the
//! re-dispatch-then-succeed scenario. A per-session stdio worker process is
//! respawned with fresh state, so there `CrashOnSpec` degenerates to
//! `PoisonSpec` — which the coordinator's poison-spec quarantine is built
//! to absorb.

use crate::protocol::Message;
use crate::transport::{Listener, Transport};
use serde::{Deserialize, Serialize};
use std::collections::HashSet;
use std::io;
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Env hook: a worker process exits with code 17 after sending this many
/// `Done` frames. Adapter for [`FaultKind::CrashProcess`].
pub const EXIT_AFTER_ENV: &str = "QISMET_CLUSTER_EXIT_AFTER";

/// Env hook: a serve-daemon session disconnects after sending this many
/// `Done` frames. Adapter for [`FaultKind::Disconnect`].
pub const DROP_AFTER_ENV: &str = "QISMET_NET_DROP_AFTER";

/// Env hook: a serve daemon accepts at most this many sessions. Adapter
/// for [`FaultPlan::max_sessions`].
pub const MAX_SESSIONS_ENV: &str = "QISMET_NET_MAX_SESSIONS";

/// Exit code used by [`FaultKind::CrashProcess`] (and the legacy
/// [`EXIT_AFTER_ENV`] hook) so a chaos crash is distinguishable from a
/// panic in logs.
pub const CRASH_EXIT_CODE: i32 = 17;

/// One kind of injected misbehavior. See the [module docs](self) for the
/// full taxonomy table.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultKind {
    /// Channel operations fail with `ConnectionAborted` from the trigger on.
    Disconnect,
    /// Channel operations block forever; the process stays alive but sends
    /// no frames (detectable only via deadlines, not EOF).
    Hang,
    /// Every send after the trigger sleeps this many milliseconds first
    /// (a straggler, not a failure).
    SlowFrames(u64),
    /// The next frame after the trigger is truncated mid-body; the channel
    /// then dies.
    TruncateFrame,
    /// The next frame after the trigger is replaced with non-protocol
    /// garbage; the channel then dies.
    CorruptFrame,
    /// The whole worker process exits with [`CRASH_EXIT_CODE`].
    CrashProcess,
    /// The session dies when an `Assign` containing this spec index
    /// arrives — once per process lifetime.
    CrashOnSpec(usize),
    /// The session dies *every time* an `Assign` containing this spec
    /// index arrives (the poison-spec scenario).
    PoisonSpec(usize),
}

/// One scheduled fault: where, when, what.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Fault {
    /// Which pool slot this fault applies to (`None` = every slot). A
    /// stdio worker learns its slot from `QISMET_CLUSTER_WORKER_ID`; a
    /// serve-daemon session learns it from the coordinator's `Hello`.
    pub worker: Option<usize>,
    /// The fault arms once the session has sent this many `Done` frames.
    pub after_dones: usize,
    /// What goes wrong.
    pub kind: FaultKind,
}

/// A deterministic, serializable schedule of faults.
///
/// Plans travel as JSON (`campaign --chaos-plan <file>`), derive from a
/// seed ([`FaultPlan::random`], `--chaos-seed`), or adapt the legacy env
/// hooks ([`FaultPlan::from_env`]). The same plan against the same
/// campaign reproduces the same fault sequence.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// The scheduled faults, evaluated independently.
    pub faults: Vec<Fault>,
    /// For serve daemons: stop accepting sessions after this many
    /// (`None` = unlimited).
    pub max_sessions: Option<usize>,
}

impl FaultPlan {
    /// An empty plan (no faults, unlimited sessions).
    pub fn new() -> Self {
        FaultPlan {
            faults: Vec::new(),
            max_sessions: None,
        }
    }

    /// True when the plan schedules nothing at all.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty() && self.max_sessions.is_none()
    }

    /// Translates the legacy env hooks into a plan.
    ///
    /// Returns `Ok(None)` when none of the variables are set.
    ///
    /// # Errors
    ///
    /// A description of the offending variable when one is set to a
    /// non-numeric value.
    pub fn from_env() -> Result<Option<FaultPlan>, String> {
        let read = |name: &str| -> Result<Option<usize>, String> {
            match std::env::var(name) {
                Ok(raw) => raw
                    .trim()
                    .parse::<usize>()
                    .map(Some)
                    .map_err(|_| format!("{name} must be a non-negative integer, got {raw:?}")),
                Err(_) => Ok(None),
            }
        };
        let mut plan = FaultPlan::new();
        if let Some(n) = read(EXIT_AFTER_ENV)? {
            plan.faults.push(Fault {
                worker: None,
                after_dones: n,
                kind: FaultKind::CrashProcess,
            });
        }
        if let Some(n) = read(DROP_AFTER_ENV)? {
            plan.faults.push(Fault {
                worker: None,
                after_dones: n,
                kind: FaultKind::Disconnect,
            });
        }
        plan.max_sessions = read(MAX_SESSIONS_ENV)?;
        Ok(if plan.is_empty() { None } else { Some(plan) })
    }

    /// A seeded pseudo-random plan of 1–3 faults over `workers` slots and
    /// `specs` spec indices. Deterministic in `seed`; slow-frame delays are
    /// bounded (<= 50 ms) so chaos suites stay fast.
    pub fn random(seed: u64, workers: usize, specs: usize) -> FaultPlan {
        let mut rng = SplitMix64::new(seed);
        let count = 1 + (rng.next() % 3) as usize;
        let mut faults = Vec::with_capacity(count);
        for _ in 0..count {
            // Mostly slot-addressed, so some slots stay healthy and the
            // campaign usually completes instead of erroring out.
            let worker = if workers > 0 && !rng.next().is_multiple_of(4) {
                Some((rng.next() % workers as u64) as usize)
            } else {
                None
            };
            let after_dones = 1 + (rng.next() % 3) as usize;
            let spec = |r: u64| (r % specs.max(1) as u64) as usize;
            let kind = match rng.next() % 8 {
                0 => FaultKind::Disconnect,
                1 => FaultKind::Hang,
                2 => FaultKind::SlowFrames(5 + rng.next() % 46),
                3 => FaultKind::TruncateFrame,
                4 => FaultKind::CorruptFrame,
                5 => FaultKind::CrashProcess,
                6 => FaultKind::CrashOnSpec(spec(rng.next())),
                _ => FaultKind::PoisonSpec(spec(rng.next())),
            };
            faults.push(Fault {
                worker,
                after_dones,
                kind,
            });
        }
        FaultPlan {
            faults,
            max_sessions: None,
        }
    }

    /// Serializes the plan to its JSON file format.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("FaultPlan serializes infallibly")
    }

    /// Parses a plan from its JSON file format.
    ///
    /// # Errors
    ///
    /// A description of the parse failure.
    pub fn from_json(text: &str) -> Result<FaultPlan, String> {
        serde_json::from_str(text).map_err(|e| format!("invalid fault plan: {e}"))
    }
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::new()
    }
}

/// Fault state shared across every session of one process (so "once per
/// process lifetime" faults stay once even when a daemon serves many
/// sessions).
#[derive(Debug, Default)]
pub struct ChaosState {
    consumed: Mutex<HashSet<usize>>,
}

impl ChaosState {
    /// Fresh shared state (nothing consumed yet).
    pub fn new() -> Arc<Self> {
        Arc::new(ChaosState::default())
    }

    /// Marks fault `index` consumed; true if it was not already.
    fn consume(&self, index: usize) -> bool {
        self.consumed
            .lock()
            .expect("chaos state lock poisoned")
            .insert(index)
    }
}

/// What a triggered garbling fault writes next.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Garble {
    Truncate,
    Corrupt,
}

/// A [`Transport`] wrapper that executes a [`FaultPlan`] against the
/// stream. Wraps the *worker side* of a session (stdio worker or daemon
/// session); the coordinator side always runs the production transport.
pub struct FaultTransport {
    inner: Box<dyn Transport>,
    plan: FaultPlan,
    shared: Arc<ChaosState>,
    slot: Option<usize>,
    dones_sent: usize,
    fired: Vec<bool>,
    dead: bool,
    hung: bool,
    slow_millis: u64,
    garble: Option<Garble>,
}

impl FaultTransport {
    /// Wraps `inner`, executing `plan`. `slot` is the worker's pool slot if
    /// already known (stdio workers read `QISMET_CLUSTER_WORKER_ID`);
    /// daemon sessions pass `None` and learn it from the coordinator's
    /// `Hello`.
    pub fn new(inner: Box<dyn Transport>, plan: FaultPlan, slot: Option<usize>) -> Self {
        FaultTransport::with_shared(inner, plan, slot, ChaosState::new())
    }

    /// Like [`FaultTransport::new`] but sharing once-per-process fault
    /// state with other sessions (used by [`FaultListener`]).
    pub fn with_shared(
        inner: Box<dyn Transport>,
        plan: FaultPlan,
        slot: Option<usize>,
        shared: Arc<ChaosState>,
    ) -> Self {
        let fired = vec![false; plan.faults.len()];
        FaultTransport {
            inner,
            plan,
            shared,
            slot,
            dones_sent: 0,
            fired,
            dead: false,
            hung: false,
            slow_millis: 0,
            garble: None,
        }
    }

    fn applies(&self, fault: &Fault) -> bool {
        match fault.worker {
            None => true,
            Some(slot) => self.slot == Some(slot),
        }
    }

    /// Fires every armed count-addressed fault. Called at each channel
    /// operation boundary so faults land deterministically between frames.
    fn check_triggers(&mut self) {
        for i in 0..self.plan.faults.len() {
            if self.fired[i] {
                continue;
            }
            let fault = self.plan.faults[i].clone();
            if !self.applies(&fault) || self.dones_sent < fault.after_dones {
                continue;
            }
            match fault.kind {
                FaultKind::Disconnect => self.dead = true,
                FaultKind::Hang => self.hung = true,
                FaultKind::SlowFrames(millis) => self.slow_millis = millis,
                FaultKind::TruncateFrame => self.garble = Some(Garble::Truncate),
                FaultKind::CorruptFrame => self.garble = Some(Garble::Corrupt),
                FaultKind::CrashProcess => {
                    qismet_telemetry::counter!("chaos.faults_fired").inc();
                    std::process::exit(CRASH_EXIT_CODE)
                }
                // Spec-addressed faults trigger on Assign contents, not here.
                FaultKind::CrashOnSpec(_) | FaultKind::PoisonSpec(_) => continue,
            }
            self.fired[i] = true;
            qismet_telemetry::counter!("chaos.faults_fired").inc();
            qismet_telemetry::event(
                "chaos_fault",
                format!("{:?} fired on slot {:?}", fault.kind, self.slot),
            );
        }
    }

    /// Enforces terminal states: a dead channel errors, a hung channel
    /// blocks until the process is killed.
    fn gate(&mut self) -> io::Result<()> {
        if self.hung {
            loop {
                std::thread::sleep(Duration::from_millis(50));
            }
        }
        if self.dead {
            return Err(io::Error::new(
                io::ErrorKind::ConnectionAborted,
                "chaos: connection dropped by fault plan",
            ));
        }
        Ok(())
    }

    /// The armed spec fault hit by this assignment, if any.
    fn spec_fault_hit(&mut self, indices: &[usize]) -> bool {
        for i in 0..self.plan.faults.len() {
            let fault = self.plan.faults[i].clone();
            if !self.applies(&fault) || self.dones_sent < fault.after_dones {
                continue;
            }
            match fault.kind {
                FaultKind::CrashOnSpec(spec)
                    if indices.contains(&spec) && self.shared.consume(i) =>
                {
                    qismet_telemetry::counter!("chaos.faults_fired").inc();
                    qismet_telemetry::event(
                        "chaos_fault",
                        format!("CrashOnSpec({spec}) fired on slot {:?}", self.slot),
                    );
                    return true;
                }
                FaultKind::PoisonSpec(spec) if indices.contains(&spec) => {
                    qismet_telemetry::counter!("chaos.faults_fired").inc();
                    qismet_telemetry::event(
                        "chaos_fault",
                        format!("PoisonSpec({spec}) fired on slot {:?}", self.slot),
                    );
                    return true;
                }
                _ => {}
            }
        }
        false
    }
}

impl std::fmt::Debug for FaultTransport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FaultTransport")
            .field("peer", &self.inner.peer())
            .field("slot", &self.slot)
            .field("dones_sent", &self.dones_sent)
            .field("dead", &self.dead)
            .finish_non_exhaustive()
    }
}

impl Transport for FaultTransport {
    fn send(&mut self, msg: &Message) -> io::Result<()> {
        self.check_triggers();
        self.gate()?;
        if let Some(garble) = self.garble.take() {
            let bytes: &[u8] = match garble {
                // A frame that claims 64 bytes but delivers 9: the peer's
                // read_exact hits EOF mid-body once we die.
                Garble::Truncate => b"64\n{\"Done\":{\"",
                // A header that is not a number at all.
                Garble::Corrupt => b"\xff\xfenot a frame\n\x00garbage\n",
            };
            let _ = self.inner.send_raw(bytes);
            self.dead = true;
            return Err(io::Error::new(
                io::ErrorKind::ConnectionAborted,
                "chaos: frame garbled by fault plan",
            ));
        }
        if self.slow_millis > 0 {
            std::thread::sleep(Duration::from_millis(self.slow_millis));
        }
        self.inner.send(msg)?;
        if matches!(msg, Message::Done(_)) {
            self.dones_sent += 1;
        }
        Ok(())
    }

    fn recv(&mut self) -> io::Result<Message> {
        self.check_triggers();
        self.gate()?;
        let msg = self.inner.recv()?;
        if self.slot.is_none() {
            if let Message::Hello(hello) = &msg {
                self.slot = Some(hello.worker_id);
            }
        }
        if let Message::Assign(assign) = &msg {
            if self.spec_fault_hit(&assign.indices) {
                self.dead = true;
                return Err(io::Error::new(
                    io::ErrorKind::ConnectionReset,
                    "chaos: session killed by spec fault",
                ));
            }
        }
        Ok(msg)
    }

    fn peer(&self) -> String {
        format!("chaos({})", self.inner.peer())
    }

    fn set_read_timeout(&mut self, timeout: Option<Duration>) -> io::Result<()> {
        self.inner.set_read_timeout(timeout)
    }

    fn send_raw(&mut self, bytes: &[u8]) -> io::Result<()> {
        self.inner.send_raw(bytes)
    }
}

/// A [`Listener`] wrapper that wraps every accepted session in a
/// [`FaultTransport`] sharing one [`ChaosState`], so once-per-process
/// faults stay once across a daemon's whole lifetime.
pub struct FaultListener {
    inner: Box<dyn Listener>,
    plan: FaultPlan,
    shared: Arc<ChaosState>,
}

impl FaultListener {
    /// Wraps `inner`, applying `plan` to every accepted session.
    pub fn new(inner: Box<dyn Listener>, plan: FaultPlan) -> Self {
        FaultListener {
            inner,
            plan,
            shared: ChaosState::new(),
        }
    }
}

impl std::fmt::Debug for FaultListener {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FaultListener")
            .field("plan", &self.plan)
            .finish_non_exhaustive()
    }
}

impl Listener for FaultListener {
    fn accept(&mut self) -> io::Result<Box<dyn Transport>> {
        let session = self.inner.accept()?;
        Ok(Box::new(FaultTransport::with_shared(
            session,
            self.plan.clone(),
            None,
            Arc::clone(&self.shared),
        )))
    }

    fn local_addr(&self) -> io::Result<String> {
        self.inner.local_addr()
    }
}

/// SplitMix64: tiny, dependency-free PRNG for [`FaultPlan::random`]. Not
/// the campaign RNG — plans only need stable stream-from-seed behavior.
struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{Assign, Done, Hello, Outcome};
    use serde::Value;
    use std::collections::VecDeque;

    /// Records sends and replays scripted incoming messages; no real peer.
    /// State lives behind an `Arc` so tests can inspect it after handing
    /// the transport to a `FaultTransport`.
    #[derive(Debug, Default)]
    struct MockState {
        sent: Vec<Message>,
        raw: Vec<Vec<u8>>,
        incoming: VecDeque<Message>,
    }

    #[derive(Default)]
    struct MockTransport {
        state: Arc<Mutex<MockState>>,
    }

    impl MockTransport {
        fn scripted(incoming: &[Message]) -> (Box<Self>, Arc<Mutex<MockState>>) {
            let state = Arc::new(Mutex::new(MockState {
                incoming: incoming.iter().cloned().collect(),
                ..MockState::default()
            }));
            (
                Box::new(MockTransport {
                    state: Arc::clone(&state),
                }),
                state,
            )
        }
    }

    impl Transport for MockTransport {
        fn send(&mut self, msg: &Message) -> io::Result<()> {
            self.state.lock().unwrap().sent.push(msg.clone());
            Ok(())
        }

        fn recv(&mut self) -> io::Result<Message> {
            self.state
                .lock()
                .unwrap()
                .incoming
                .pop_front()
                .ok_or_else(|| {
                    io::Error::new(io::ErrorKind::UnexpectedEof, "mock script exhausted")
                })
        }

        fn peer(&self) -> String {
            "mock".into()
        }

        fn send_raw(&mut self, bytes: &[u8]) -> io::Result<()> {
            self.state.lock().unwrap().raw.push(bytes.to_vec());
            Ok(())
        }
    }

    fn done(index: usize) -> Message {
        Message::Done(Done {
            index,
            seed: index as u64,
            outcome: Outcome::Record(Value::U64(index as u64)),
            stats: None,
        })
    }

    fn assign(indices: &[usize]) -> Message {
        Message::Assign(Assign {
            indices: indices.to_vec(),
        })
    }

    fn plan(kind: FaultKind, worker: Option<usize>, after_dones: usize) -> FaultPlan {
        FaultPlan {
            faults: vec![Fault {
                worker,
                after_dones,
                kind,
            }],
            max_sessions: None,
        }
    }

    #[test]
    fn plan_roundtrips_through_json() {
        let plan = FaultPlan {
            faults: vec![
                Fault {
                    worker: Some(1),
                    after_dones: 2,
                    kind: FaultKind::SlowFrames(25),
                },
                Fault {
                    worker: None,
                    after_dones: 0,
                    kind: FaultKind::PoisonSpec(7),
                },
            ],
            max_sessions: Some(3),
        };
        let text = plan.to_json();
        assert_eq!(FaultPlan::from_json(&text).unwrap(), plan);
        assert!(FaultPlan::from_json("{broken").is_err());
    }

    #[test]
    fn random_plans_are_deterministic_in_the_seed() {
        let a = FaultPlan::random(42, 3, 16);
        let b = FaultPlan::random(42, 3, 16);
        assert_eq!(a, b);
        assert!(!a.faults.is_empty() && a.faults.len() <= 3);
        // Different seeds diverge somewhere in a small window.
        assert!((0..32u64).any(|s| FaultPlan::random(s, 3, 16) != a));
    }

    #[test]
    fn env_adapter_translates_the_legacy_hooks() {
        // Env mutation: keep all three vars inside this single test to
        // avoid cross-test races.
        for var in [EXIT_AFTER_ENV, DROP_AFTER_ENV, MAX_SESSIONS_ENV] {
            std::env::remove_var(var);
        }
        assert_eq!(FaultPlan::from_env(), Ok(None));
        std::env::set_var(EXIT_AFTER_ENV, "3");
        std::env::set_var(DROP_AFTER_ENV, "2");
        std::env::set_var(MAX_SESSIONS_ENV, "5");
        let plan = FaultPlan::from_env().unwrap().unwrap();
        assert_eq!(plan.max_sessions, Some(5));
        assert_eq!(
            plan.faults,
            vec![
                Fault {
                    worker: None,
                    after_dones: 3,
                    kind: FaultKind::CrashProcess,
                },
                Fault {
                    worker: None,
                    after_dones: 2,
                    kind: FaultKind::Disconnect,
                },
            ]
        );
        std::env::set_var(EXIT_AFTER_ENV, "not-a-number");
        assert!(FaultPlan::from_env().is_err());
        for var in [EXIT_AFTER_ENV, DROP_AFTER_ENV, MAX_SESSIONS_ENV] {
            std::env::remove_var(var);
        }
    }

    #[test]
    fn disconnect_fires_after_the_scheduled_done_count() {
        let (mock, _state) = MockTransport::scripted(&[]);
        let mut t = FaultTransport::new(mock, plan(FaultKind::Disconnect, None, 2), Some(0));
        t.send(&done(0)).unwrap();
        t.send(&done(1)).unwrap();
        let err = t.send(&done(2)).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::ConnectionAborted);
        // Dead is terminal: recv fails too.
        assert_eq!(
            t.recv().unwrap_err().kind(),
            io::ErrorKind::ConnectionAborted
        );
    }

    #[test]
    fn slot_addressed_faults_skip_other_workers() {
        let (mock, _state) = MockTransport::scripted(&[]);
        let mut t = FaultTransport::new(mock, plan(FaultKind::Disconnect, Some(1), 0), Some(0));
        for i in 0..4 {
            t.send(&done(i)).unwrap();
        }
    }

    #[test]
    fn daemon_sessions_learn_their_slot_from_the_hello() {
        let (mock, _state) = MockTransport::scripted(&[Message::Hello(Hello {
            worker_id: 1,
            fingerprint: 0,
            spec_count: 4,
            token: String::new(),
            threads: 0,
            build: crate::protocol::BuildStamp::local(false),
        })]);
        let mut t = FaultTransport::new(mock, plan(FaultKind::Disconnect, Some(1), 0), None);
        // Slot unknown: the slot-1 fault cannot apply yet, so the Hello
        // gets through — and teaches the transport it *is* slot 1.
        t.recv().unwrap();
        let err = t.send(&done(0)).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::ConnectionAborted);
    }

    #[test]
    fn slow_frames_delay_but_do_not_fail() {
        let (mock, _state) = MockTransport::scripted(&[]);
        let mut t = FaultTransport::new(mock, plan(FaultKind::SlowFrames(1), None, 1), Some(0));
        for i in 0..3 {
            t.send(&done(i)).unwrap();
        }
    }

    #[test]
    fn garbling_faults_emit_raw_bytes_then_die() {
        for (kind, expect_prefix) in [
            (FaultKind::TruncateFrame, b"64\n".as_slice()),
            (FaultKind::CorruptFrame, b"\xff\xfe".as_slice()),
        ] {
            let (mock, state) = MockTransport::scripted(&[]);
            let mut t = FaultTransport::new(mock, plan(kind, None, 1), Some(0));
            t.send(&done(0)).unwrap();
            let err = t.send(&done(1)).unwrap_err();
            assert_eq!(err.kind(), io::ErrorKind::ConnectionAborted);
            let state = state.lock().unwrap();
            // The clean frame went through; the garbled one went out raw.
            assert_eq!(state.sent, vec![done(0)]);
            assert_eq!(state.raw.len(), 1);
            assert!(state.raw[0].starts_with(expect_prefix));
        }
    }

    #[test]
    fn poison_spec_kills_every_matching_assign() {
        let shared = ChaosState::new();
        for _session in 0..3 {
            let (mock, _state) = MockTransport::scripted(&[assign(&[3, 7])]);
            let mut t = FaultTransport::with_shared(
                mock,
                plan(FaultKind::PoisonSpec(7), None, 0),
                Some(0),
                Arc::clone(&shared),
            );
            let err = t.recv().unwrap_err();
            assert_eq!(err.kind(), io::ErrorKind::ConnectionReset);
        }
    }

    #[test]
    fn crash_on_spec_is_consumed_after_one_strike() {
        let shared = ChaosState::new();
        let make = |shared: &Arc<ChaosState>| {
            let (mock, _state) = MockTransport::scripted(&[assign(&[7])]);
            FaultTransport::with_shared(
                mock,
                plan(FaultKind::CrashOnSpec(7), None, 0),
                Some(0),
                Arc::clone(shared),
            )
        };
        let mut first = make(&shared);
        assert_eq!(
            first.recv().unwrap_err().kind(),
            io::ErrorKind::ConnectionReset
        );
        // Second session sharing state: the once-fault is spent.
        let mut second = make(&shared);
        assert_eq!(second.recv().unwrap(), assign(&[7]));
    }

    #[test]
    fn unrelated_assigns_pass_through_spec_faults() {
        let (mock, _state) = MockTransport::scripted(&[assign(&[0, 1])]);
        let mut t = FaultTransport::new(mock, plan(FaultKind::PoisonSpec(7), None, 0), Some(0));
        assert_eq!(t.recv().unwrap(), assign(&[0, 1]));
    }
}

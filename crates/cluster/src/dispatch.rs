//! The shared spec-dispatch queue.
//!
//! Extracted from the coordinator so both the static [`WorkerPool`]
//! (one queue for the whole run) and the service daemon (one queue per
//! queued job) share the same crash-blame/poison/speculation semantics.
//! [`Dispatch::pop_batch`] is the blocking form used by the pool's
//! dedicated slot threads; [`Dispatch::try_pop_batch`] is the
//! non-blocking form the daemon uses to pick work across many jobs
//! without parking a session thread on one job's condvar.
//!
//! [`WorkerPool`]: crate::coordinator::WorkerPool

use qismet_telemetry::{counter, event, gauge};
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Condvar, Mutex};

/// One assignment handed to a session.
pub(crate) struct Batch {
    pub(crate) indices: Vec<usize>,
    /// Suspect batches are crash-implicated singletons: a further loss
    /// while one is outstanding is a precise blame strike on that spec.
    pub(crate) suspect: bool,
    /// Whether this batch duplicates in-flight work (tail speculation);
    /// an accepted result from it is a speculation win for this slot.
    pub(crate) speculative: bool,
}

/// The shared dispatch queue, guarded by one mutex/condvar pair so idle
/// workers can wait for work that a dying peer might hand back.
///
/// Fresh work flows through `queue` in batches; crash-implicated work
/// flows through `suspects` one index at a time (so repeated crashes are
/// attributable to a single spec, feeding the poison counter). `holders`
/// tracks how many live sessions are computing each index — normally one,
/// two when speculation duplicates a straggler's assignment.
pub(crate) struct Dispatch {
    state: Mutex<DispatchState>,
    wake: Condvar,
    aborted: AtomicBool,
    speculative: bool,
    poison_after: usize,
}

struct DispatchState {
    /// Never-dispatched (or cleanly returned) work, in dispatch order.
    queue: VecDeque<usize>,
    /// Crash-implicated work, re-dispatched as singletons.
    suspects: VecDeque<usize>,
    /// index -> live sessions currently computing it.
    holders: BTreeMap<usize, usize>,
    /// Indices whose first result has been accepted.
    completed: BTreeSet<usize>,
    /// index -> precise crash strikes (suspect-singleton losses only).
    blame: BTreeMap<usize, usize>,
    /// Indices isolated after reaching the poison threshold.
    poisoned: BTreeSet<usize>,
    /// Total indices this run must settle (completed + poisoned).
    target: usize,
}

impl DispatchState {
    fn is_finished(&self) -> bool {
        self.completed.len() + self.poisoned.len() >= self.target
    }

    fn is_settled(&self, index: usize) -> bool {
        self.completed.contains(&index) || self.poisoned.contains(&index)
    }

    /// Pops the next assignment without waiting: a suspect singleton
    /// first, else up to `k` fresh indices, else (with speculation)
    /// duplicates of in-flight work.
    fn pop_ready(&mut self, k: usize, speculative: bool) -> Option<Batch> {
        while let Some(&front) = self.suspects.front() {
            if self.is_settled(front) {
                self.suspects.pop_front();
                continue;
            }
            self.suspects.pop_front();
            *self.holders.entry(front).or_insert(0) += 1;
            return Some(Batch {
                indices: vec![front],
                suspect: true,
                speculative: false,
            });
        }
        let mut batch = Vec::new();
        while batch.len() < k {
            let Some(index) = self.queue.pop_front() else {
                break;
            };
            if !self.is_settled(index) {
                batch.push(index);
            }
        }
        if !batch.is_empty() {
            for &index in &batch {
                *self.holders.entry(index).or_insert(0) += 1;
            }
            gauge!("cluster.queue_depth").set(self.queue.len() as i64);
            return Some(Batch {
                indices: batch,
                suspect: false,
                speculative: false,
            });
        }
        if speculative && !self.is_finished() {
            // Tail speculation: mirror in-flight work not already
            // duplicated, so one straggler cannot stall the campaign.
            let dups: Vec<usize> = self
                .holders
                .iter()
                .filter(|&(&index, &holders)| holders == 1 && !self.is_settled(index))
                .map(|(&index, _)| index)
                .take(k)
                .collect();
            if !dups.is_empty() {
                for &index in &dups {
                    *self.holders.entry(index).or_insert(0) += 1;
                }
                counter!("cluster.speculative.dispatched").add(dups.len() as u64);
                return Some(Batch {
                    indices: dups,
                    suspect: false,
                    speculative: true,
                });
            }
        }
        None
    }
}

impl Dispatch {
    pub(crate) fn new(pending: &[usize], speculative: bool, poison_after: usize) -> Self {
        Dispatch {
            state: Mutex::new(DispatchState {
                queue: pending.iter().copied().collect(),
                suspects: VecDeque::new(),
                holders: BTreeMap::new(),
                completed: BTreeSet::new(),
                blame: BTreeMap::new(),
                poisoned: BTreeSet::new(),
                target: pending.len(),
            }),
            wake: Condvar::new(),
            aborted: AtomicBool::new(false),
            speculative,
            poison_after,
        }
    }

    /// Pops the next assignment: a suspect singleton first, else up to `k`
    /// fresh indices, else (with speculation) duplicates of in-flight
    /// work. Waits while other workers still hold in-flight work (a dying
    /// peer may hand it back); returns `None` once every index is settled
    /// or the pool aborted.
    pub(crate) fn pop_batch(&self, k: usize) -> Option<Batch> {
        let k = k.max(1);
        let mut state = self.state.lock().expect("dispatch mutex poisoned");
        loop {
            if self.is_aborted() {
                return None;
            }
            if let Some(batch) = state.pop_ready(k, self.speculative) {
                return Some(batch);
            }
            if state.is_finished() {
                return None;
            }
            state = self.wake.wait(state).expect("dispatch mutex poisoned");
        }
    }

    /// Non-blocking [`Dispatch::pop_batch`]: returns `None` immediately
    /// when nothing is claimable right now (in-flight work may still hand
    /// back later). The daemon uses this to scan across jobs instead of
    /// parking on one job's queue.
    pub(crate) fn try_pop_batch(&self, k: usize) -> Option<Batch> {
        if self.is_aborted() {
            return None;
        }
        let mut state = self.state.lock().expect("dispatch mutex poisoned");
        state.pop_ready(k.max(1), self.speculative)
    }

    /// Records an accepted result for `index`. Returns `true` if it is the
    /// first (the caller sinks and keeps it), `false` for a speculative
    /// duplicate (the caller drops it).
    pub(crate) fn complete(&self, index: usize) -> bool {
        let mut state = self.state.lock().expect("dispatch mutex poisoned");
        if let Some(holders) = state.holders.get_mut(&index) {
            *holders -= 1;
            if *holders == 0 {
                state.holders.remove(&index);
            }
        }
        let first = state.completed.insert(index);
        drop(state);
        self.wake.notify_all();
        first
    }

    /// Settles a lost session's outstanding indices: anything no other
    /// live session holds goes back as a suspect, and — when the lost
    /// batch was itself a suspect singleton — earns a precise blame strike
    /// that can poison the spec. Returns whether blame was assigned (a
    /// blamed loss does not charge the worker's respawn budget).
    pub(crate) fn settle_loss(&self, outstanding: &VecDeque<usize>, was_suspect: bool) -> bool {
        if outstanding.is_empty() {
            // In-flight already settled; still wake waiters so idle-exit
            // conditions re-evaluate.
            self.wake.notify_all();
            return false;
        }
        let mut state = self.state.lock().expect("dispatch mutex poisoned");
        let mut blamed = false;
        for &index in outstanding {
            if let Some(holders) = state.holders.get_mut(&index) {
                *holders -= 1;
                if *holders == 0 {
                    state.holders.remove(&index);
                }
            }
            if state.is_settled(index) || state.holders.contains_key(&index) {
                // Completed, already poisoned, or a twin is still on it.
                continue;
            }
            if was_suspect {
                let strikes = {
                    let s = state.blame.entry(index).or_insert(0);
                    *s += 1;
                    *s
                };
                blamed = true;
                if strikes >= self.poison_after {
                    state.poisoned.insert(index);
                    event(
                        "poison",
                        format!("spec {index} isolated after {strikes} attributed crashes"),
                    );
                    counter!("cluster.specs_poisoned").inc();
                    continue;
                }
            }
            state.suspects.push_back(index);
        }
        drop(state);
        self.wake.notify_all();
        blamed
    }

    /// Fatal-error broadcast: waiters wake and bail.
    pub(crate) fn abort(&self) {
        self.aborted.store(true, Ordering::Relaxed);
        self.wake.notify_all();
    }

    pub(crate) fn is_aborted(&self) -> bool {
        self.aborted.load(Ordering::Relaxed)
    }

    /// Wakes waiters when a slot is lost (so survivors re-check the queue).
    pub(crate) fn worker_gone(&self) {
        self.wake.notify_all();
    }

    /// Whether every index is settled (completed or poisoned).
    pub(crate) fn is_finished(&self) -> bool {
        let state = self.state.lock().expect("dispatch mutex poisoned");
        state.is_finished()
    }

    /// Indices whose first result has been accepted.
    pub(crate) fn completed_count(&self) -> usize {
        let state = self.state.lock().expect("dispatch mutex poisoned");
        state.completed.len()
    }

    /// The poisoned indices, sorted.
    pub(crate) fn poisoned_indices(&self) -> Vec<usize> {
        let state = self.state.lock().expect("dispatch mutex poisoned");
        state.poisoned.iter().copied().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn try_pop_never_blocks_and_respects_settled_state() {
        let d = Dispatch::new(&[0, 1, 2, 3], false, 2);
        let b = d.try_pop_batch(3).expect("fresh work is claimable");
        assert_eq!(b.indices, vec![0, 1, 2]);
        assert!(!b.suspect);
        // Remaining index 3 is claimable; in-flight work is not.
        let b2 = d.try_pop_batch(3).expect("index 3 still queued");
        assert_eq!(b2.indices, vec![3]);
        assert!(d.try_pop_batch(3).is_none(), "everything is in flight");
        for i in 0..4 {
            assert!(d.complete(i));
        }
        assert!(d.is_finished());
        assert!(d.try_pop_batch(3).is_none());
    }

    #[test]
    fn try_pop_returns_suspects_as_singletons_after_a_loss() {
        let d = Dispatch::new(&[0, 1], false, 2);
        let b = d.try_pop_batch(2).expect("fresh batch");
        assert_eq!(b.indices, vec![0, 1]);
        let outstanding: VecDeque<usize> = b.indices.iter().copied().collect();
        assert!(
            !d.settle_loss(&outstanding, false),
            "fresh loss is unblamed"
        );
        let s1 = d.try_pop_batch(2).expect("suspect singleton");
        assert_eq!(s1.indices, vec![0]);
        assert!(s1.suspect);
        let s2 = d.try_pop_batch(2).expect("second suspect singleton");
        assert_eq!(s2.indices, vec![1]);
        assert!(s2.suspect);
    }

    #[test]
    fn suspect_losses_blame_and_poison_the_spec() {
        let d = Dispatch::new(&[7], false, 2);
        for round in 0..2 {
            let b = d.try_pop_batch(4).expect("claimable");
            let was_suspect = b.suspect;
            assert_eq!(was_suspect, round > 0);
            let outstanding: VecDeque<usize> = b.indices.iter().copied().collect();
            let blamed = d.settle_loss(&outstanding, was_suspect);
            assert_eq!(blamed, was_suspect);
        }
        // Second suspect loss reached poison_after = 2.
        let b = d.try_pop_batch(4).expect("first suspect retry");
        let outstanding: VecDeque<usize> = b.indices.iter().copied().collect();
        assert!(d.settle_loss(&outstanding, true));
        assert_eq!(d.poisoned_indices(), vec![7]);
        assert!(d.is_finished());
        assert!(d.try_pop_batch(4).is_none());
    }

    #[test]
    fn aborted_dispatch_hands_out_nothing() {
        let d = Dispatch::new(&[0, 1], false, 2);
        d.abort();
        assert!(d.try_pop_batch(2).is_none());
        assert!(d.pop_batch(2).is_none());
    }
}

//! Vendored, dependency-free stand-in for the parts of `serde` this
//! workspace uses.
//!
//! The build environment has no access to crates.io, so the real `serde`
//! cannot be fetched. This shim keeps the workspace's `#[derive(Serialize,
//! Deserialize)]` annotations and `serde_json::{to_string, from_str}` call
//! sites compiling unchanged by routing everything through an in-memory
//! [`Value`] tree:
//!
//! * [`Serialize`] — converts a value into a [`Value`].
//! * [`Deserialize`] — reconstructs a value from a [`Value`].
//! * The derive macros (re-exported from the companion `serde_derive`
//!   proc-macro crate) generate those impls for plain structs and enums.
//!
//! The JSON text layer lives in the sibling `serde_json` shim.

#![forbid(unsafe_code)]

use std::collections::BTreeMap;
use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// An in-memory JSON-like value tree.
///
/// Integers keep their own variants so `u64` seeds and indices survive
/// round-trips exactly (a plain `f64` model would corrupt values above
/// 2^53).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Non-negative integer.
    U64(u64),
    /// Negative integer.
    I64(i64),
    /// Floating point number.
    F64(f64),
    /// String.
    String(String),
    /// Array.
    Array(Vec<Value>),
    /// Object; insertion-ordered so structs round-trip field order.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Object lookup by key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The object fields, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(fields) => Some(fields),
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric view as `f64` (integers convert losslessly up to 2^53).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::U64(u) => Some(*u as f64),
            Value::I64(i) => Some(*i as f64),
            Value::F64(f) => Some(*f),
            _ => None,
        }
    }

    /// Numeric view as `u64`, when exactly representable.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::U64(u) => Some(*u),
            Value::I64(i) if *i >= 0 => Some(*i as u64),
            Value::F64(f) if *f >= 0.0 && f.fract() == 0.0 && *f <= u64::MAX as f64 => {
                Some(*f as u64)
            }
            _ => None,
        }
    }

    /// Numeric view as `i64`, when exactly representable.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::U64(u) if *u <= i64::MAX as u64 => Some(*u as i64),
            Value::I64(i) => Some(*i),
            Value::F64(f) if f.fract() == 0.0 && *f >= i64::MIN as f64 && *f <= i64::MAX as f64 => {
                Some(*f as i64)
            }
            _ => None,
        }
    }

    /// Short name of the variant, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::U64(_) | Value::I64(_) | Value::F64(_) => "number",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// Deserialization failure.
#[derive(Debug, Clone, PartialEq)]
pub struct DeError {
    message: String,
}

impl DeError {
    /// Creates an error with the given message.
    pub fn new(message: impl Into<String>) -> Self {
        DeError {
            message: message.into(),
        }
    }

    /// Convenience constructor for type mismatches.
    pub fn expected(what: &str, got: &Value) -> Self {
        DeError::new(format!("expected {what}, found {}", got.kind()))
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for DeError {}

/// Serialization into the [`Value`] tree.
pub trait Serialize {
    /// Converts `self` into a value tree.
    fn to_value(&self) -> Value;
}

/// Deserialization from the [`Value`] tree.
pub trait Deserialize: Sized {
    /// Reconstructs `Self` from a value tree.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::U64(*self as u64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let u = v.as_u64().ok_or_else(|| DeError::expected("unsigned integer", v))?;
                <$t>::try_from(u).map_err(|_| DeError::new("integer out of range"))
            }
        }
    )*};
}

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let i = *self as i64;
                if i >= 0 { Value::U64(i as u64) } else { Value::I64(i) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let i = v.as_i64().ok_or_else(|| DeError::expected("integer", v))?;
                <$t>::try_from(i).map_err(|_| DeError::new("integer out of range"))
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);
impl_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            // serde_json writes non-finite floats as null; accept them back
            // as NaN so round-trips never fail outright.
            Value::Null => Ok(f64::NAN),
            _ => v.as_f64().ok_or_else(|| DeError::expected("number", v)),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(*self as f64)
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        f64::from_value(v).map(|f| f as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(DeError::expected("bool", v)),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| DeError::expected("string", v))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_array()
            .ok_or_else(|| DeError::expected("array", v))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(inner) => inner.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            _ => T::from_value(v).map(Some),
        }
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let items = v.as_array().ok_or_else(|| DeError::expected("array", v))?;
        if items.len() != 2 {
            return Err(DeError::new("expected a 2-element array"));
        }
        Ok((A::from_value(&items[0])?, B::from_value(&items[1])?))
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_value(&self) -> Value {
        Value::Array(vec![
            self.0.to_value(),
            self.1.to_value(),
            self.2.to_value(),
        ])
    }
}

impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let items = v.as_array().ok_or_else(|| DeError::expected("array", v))?;
        if items.len() != 3 {
            return Err(DeError::new("expected a 3-element array"));
        }
        Ok((
            A::from_value(&items[0])?,
            B::from_value(&items[1])?,
            C::from_value(&items[2])?,
        ))
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_object()
            .ok_or_else(|| DeError::expected("object", v))?
            .iter()
            .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
            .collect()
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitive_roundtrips() {
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert_eq!(u64::from_value(&u64::MAX.to_value()).unwrap(), u64::MAX);
        assert_eq!(i32::from_value(&(-7i32).to_value()).unwrap(), -7);
        assert!(bool::from_value(&true.to_value()).unwrap());
        let v: Vec<f64> = vec![1.0, 2.0];
        assert_eq!(Vec::<f64>::from_value(&v.to_value()).unwrap(), v);
    }

    #[test]
    fn map_and_tuple_roundtrip() {
        let mut m = BTreeMap::new();
        m.insert("a".to_string(), (1u64, vec![0.5f64]));
        let back: BTreeMap<String, (u64, Vec<f64>)> =
            Deserialize::from_value(&m.to_value()).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn type_errors_are_typed() {
        assert!(bool::from_value(&Value::U64(1)).is_err());
        assert!(String::from_value(&Value::Null).is_err());
    }
}

//! Vendored, dependency-free stand-in for the slice of `proptest` this
//! workspace's property tests use.
//!
//! The build environment has no access to crates.io. This shim keeps the
//! `proptest!` test modules compiling and genuinely property-testing: each
//! test draws `ProptestConfig::cases` deterministic pseudo-random inputs
//! from its strategies and runs the body on every one. What it does *not*
//! do is shrink failures — a failing case prints its index and seed
//! instead, which is enough to reproduce deterministically.

#![forbid(unsafe_code)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::ops::Range;

pub mod prelude {
    //! One-stop import mirroring `proptest::prelude::*`.
    pub use crate::{prop_assert, prop_assert_eq, proptest, ProptestConfig, Strategy};
}

/// Per-test configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to execute.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// A generator of random values of an associated type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate_value(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }
}

/// The [`Strategy::prop_map`] adapter.
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn generate_value(&self, rng: &mut StdRng) -> U {
        (self.f)(self.inner.generate_value(rng))
    }
}

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate_value(&self, rng: &mut StdRng) -> f64 {
        assert!(self.start < self.end, "empty f64 range");
        self.start + rng.gen::<f64>() * (self.end - self.start)
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate_value(&self, rng: &mut StdRng) -> $t {
                assert!(self.start < self.end, "empty integer range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.gen::<u64>() % span) as $t
            }
        }
    )*};
}

impl_int_range_strategy!(usize, u64, u32, u16, u8);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $idx:tt),+)),+ $(,)?) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate_value(&self, rng: &mut StdRng) -> Self::Value {
                ($( self.$idx.generate_value(rng), )+)
            }
        }
    )+};
}

impl_tuple_strategy!(
    (A: 0),
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3),
);

/// A fixed value "strategy" (proptest's `Just`).
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate_value(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

pub mod collection {
    //! Collection strategies.

    use super::{StdRng, Strategy};
    use rand::Rng;
    use std::ops::Range;

    /// Strategy for `Vec`s with a size drawn from `size` and elements from
    /// `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty size range");
        VecStrategy { element, size }
    }

    /// The [`vec`] strategy.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate_value(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + (rng.gen::<u64>() % span) as usize;
            (0..len).map(|_| self.element.generate_value(rng)).collect()
        }
    }
}

/// Derives a stable per-test RNG seed from the test path.
pub fn seed_for(test_name: &str) -> u64 {
    // FNV-1a over the test name: stable across runs and platforms.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Builds the deterministic RNG for one case of one test.
pub fn case_rng(test_name: &str, case: u32) -> StdRng {
    StdRng::seed_from_u64(seed_for(test_name) ^ ((case as u64) << 32 | 0x5bd1_e995))
}

/// Property-test assertion; identical to `assert!` in this shim.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Property-test equality assertion; identical to `assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Declares property tests: every `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` deterministic random cases.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($pat:pat in $strategy:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $config;
                for __case in 0..__config.cases {
                    let mut __rng = $crate::case_rng(
                        concat!(module_path!(), "::", stringify!($name)),
                        __case,
                    );
                    let ($($pat,)+) = (
                        $( $crate::Strategy::generate_value(&($strategy), &mut __rng), )+
                    );
                    $body
                }
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($pat:pat in $strategy:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $(
                $(#[$meta])*
                fn $name( $($pat in $strategy),+ ) $body
            )*
        }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    fn arb_small() -> impl Strategy<Value = f64> {
        (0.0f64..1.0).prop_map(|x| x * 0.5)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in -2.0f64..3.0, n in 1usize..10) {
            prop_assert!((-2.0..3.0).contains(&x));
            prop_assert!((1..10).contains(&n));
        }

        #[test]
        fn mapped_strategy_applies(x in arb_small()) {
            prop_assert!((0.0..0.5).contains(&x));
        }

        #[test]
        fn vec_strategy_sizes(v in crate::collection::vec((0u64..4, 0.0f64..1.0), 2..6)) {
            prop_assert!((2..6).contains(&v.len()));
            for (k, f) in v {
                prop_assert!(k < 4);
                prop_assert!((0.0..1.0).contains(&f));
            }
        }
    }

    #[test]
    fn determinism() {
        let a: Vec<u64> = (0..4)
            .map(|c| {
                let mut rng = crate::case_rng("t", c);
                rand::Rng::gen::<u64>(&mut rng)
            })
            .collect();
        let b: Vec<u64> = (0..4)
            .map(|c| {
                let mut rng = crate::case_rng("t", c);
                rand::Rng::gen::<u64>(&mut rng)
            })
            .collect();
        assert_eq!(a, b);
    }
}

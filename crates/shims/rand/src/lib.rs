//! Vendored, dependency-free stand-in for the parts of the `rand` crate this
//! workspace uses: the [`Rng`] / [`RngCore`] / [`SeedableRng`] traits and a
//! deterministic [`rngs::StdRng`].
//!
//! The build environment has no access to crates.io, so the real `rand`
//! cannot be fetched. This shim mirrors the 0.8 API surface that the
//! workspace calls (`rng.gen::<f64>()`, `rng.gen::<u64>()`,
//! `rng.gen::<bool>()`, `StdRng::seed_from_u64`) with a xoshiro256++
//! generator seeded through SplitMix64. The streams are *different* from
//! upstream `StdRng` (ChaCha12), but every experiment in this repository
//! derives its randomness through these seeds, so results remain fully
//! deterministic and self-consistent.

#![forbid(unsafe_code)]

/// Low-level uniform bit generation.
pub trait RngCore {
    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types samplable from the [`Standard`] distribution.
pub trait Distribution<T> {
    /// Draws one sample.
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;
}

/// The standard (uniform) distribution marker, as in `rand::distributions`.
#[derive(Debug, Clone, Copy, Default)]
pub struct Standard;

impl Distribution<f64> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Distribution<f32> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f32 {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Distribution<u64> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Distribution<u32> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Distribution<usize> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        rng.next_u64() as usize
    }
}

impl Distribution<bool> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> bool {
        // High bit of a fresh word.
        rng.next_u64() >> 63 == 1
    }
}

/// High-level sampling helpers, auto-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of type `T` from the standard distribution.
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
    {
        Standard.sample(self)
    }

    /// Samples `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }

    /// Uniform sample from `[low, high)` over `u64`-convertible ranges.
    fn gen_range(&mut self, range: core::ops::Range<usize>) -> usize {
        assert!(range.start < range.end, "empty range");
        let span = (range.end - range.start) as u64;
        range.start + (self.next_u64() % span) as usize
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Deterministic construction from seeds.
pub trait SeedableRng: Sized {
    /// Raw seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Builds from a raw byte seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds from a `u64` by expanding it with SplitMix64 (the upstream
    /// `rand` convention for this method, though the expansion differs).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^= z >> 31;
            for (b, s) in chunk.iter_mut().zip(z.to_le_bytes()) {
                *b = s;
            }
        }
        Self::from_seed(seed)
    }
}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic RNG: xoshiro256++.
    ///
    /// Small, fast, passes BigCrush, and — critically for this offline
    /// build — implementable without external dependencies.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks(8).enumerate() {
                let mut w = [0u8; 8];
                w.copy_from_slice(chunk);
                s[i] = u64::from_le_bytes(w);
            }
            // A xoshiro state must not be all zero.
            if s == [0; 4] {
                s = [
                    0x9e37_79b9_7f4a_7c15,
                    0xbf58_476d_1ce4_e5b9,
                    0x94d0_49bb_1331_11eb,
                    0x2545_f491_4f6c_dd1d,
                ];
            }
            StdRng { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_streams() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn bool_is_roughly_fair() {
        let mut rng = StdRng::seed_from_u64(9);
        let trues = (0..10_000).filter(|_| rng.gen::<bool>()).count();
        assert!((trues as f64 / 10_000.0 - 0.5).abs() < 0.03);
    }

    #[test]
    fn works_through_unsized_refs() {
        fn draw<R: Rng + ?Sized>(rng: &mut R) -> f64 {
            rng.gen::<f64>()
        }
        let mut rng = StdRng::seed_from_u64(3);
        let via_ref = {
            let dynrng: &mut StdRng = &mut rng;
            draw(dynrng)
        };
        assert!((0.0..1.0).contains(&via_ref));
    }
}

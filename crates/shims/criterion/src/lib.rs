//! Vendored, dependency-free stand-in for the slice of the `criterion` API
//! this workspace's perf benches use.
//!
//! The build environment has no access to crates.io. This shim keeps the
//! bench sources compiling unchanged and produces honest (if statistically
//! unsophisticated) wall-clock numbers: each benchmark runs a timed warmup,
//! then `sample_size` samples, and reports the per-iteration mean and
//! best-sample time.

#![forbid(unsafe_code)]

use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Prevents the optimizer from deleting a benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// How `iter_batched` amortizes setup cost (shim: semantics are identical
/// across sizes; setup is always excluded from timing).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// Top-level benchmark driver.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 30,
            warm_up_time: Duration::from_millis(300),
            measurement_time: Duration::from_secs(1),
        }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Sets the warmup duration.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Sets the measurement duration budget.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\nbench group: {name}");
        BenchmarkGroup {
            criterion: self,
            group: name,
        }
    }

    /// Runs a single benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(self, &id.into(), f);
        self
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    group: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = format!("{}/{}", self.group, id.into());
        run_bench(self.criterion, &id, f);
        self
    }

    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.sample_size = n.max(2);
        self
    }

    /// Closes the group.
    pub fn finish(self) {}
}

fn run_bench<F: FnMut(&mut Bencher)>(c: &Criterion, id: &str, mut f: F) {
    let mut b = Bencher {
        warm_up_time: c.warm_up_time,
        measurement_time: c.measurement_time,
        sample_size: c.sample_size,
        samples_ns: Vec::new(),
    };
    f(&mut b);
    if b.samples_ns.is_empty() {
        println!("  {id}: no samples recorded");
        return;
    }
    let mean = b.samples_ns.iter().sum::<f64>() / b.samples_ns.len() as f64;
    let best = b.samples_ns.iter().cloned().fold(f64::INFINITY, f64::min);
    println!(
        "  {id}: mean {} / best {} ({} samples)",
        format_ns(mean),
        format_ns(best),
        b.samples_ns.len()
    );
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} us", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Per-benchmark measurement driver handed to the closure.
pub struct Bencher {
    warm_up_time: Duration,
    measurement_time: Duration,
    sample_size: usize,
    samples_ns: Vec<f64>,
}

impl Bencher {
    /// Benchmarks a routine.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warmup while estimating a per-call time to size the samples.
        let warm_start = Instant::now();
        let mut calls = 0u64;
        while warm_start.elapsed() < self.warm_up_time {
            black_box(routine());
            calls += 1;
        }
        let per_call = warm_start.elapsed().as_secs_f64() / calls.max(1) as f64;
        let budget = self.measurement_time.as_secs_f64();
        let per_sample = budget / self.sample_size as f64;
        let iters_per_sample = ((per_sample / per_call.max(1e-9)) as u64).clamp(1, 1_000_000);
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            let elapsed = start.elapsed().as_secs_f64();
            self.samples_ns
                .push(elapsed * 1e9 / iters_per_sample as f64);
        }
    }

    /// Benchmarks a routine whose input comes from an untimed setup closure.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let warm_start = Instant::now();
        while warm_start.elapsed() < self.warm_up_time {
            let input = setup();
            black_box(routine(input));
        }
        for _ in 0..self.sample_size {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.samples_ns.push(start.elapsed().as_secs_f64() * 1e9);
        }
    }
}

/// Declares a benchmark group function, mirroring criterion's two forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the bench binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_records() {
        let mut c = Criterion::default()
            .sample_size(3)
            .warm_up_time(Duration::from_millis(5))
            .measurement_time(Duration::from_millis(10));
        let mut group = c.benchmark_group("shim");
        let mut ran = 0u64;
        group.bench_function("noop", |b| {
            b.iter(|| {
                ran += 1;
                ran
            })
        });
        group.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::SmallInput)
        });
        group.finish();
        assert!(ran > 0);
    }
}

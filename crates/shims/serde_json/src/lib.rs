//! Vendored, dependency-free stand-in for the parts of `serde_json` this
//! workspace uses: [`to_string`], [`to_string_pretty`], and [`from_str`]
//! over the `serde` shim's [`Value`] tree.
//!
//! Floats are written with Rust's shortest-round-trip formatting, so every
//! finite `f64` survives a serialize/deserialize cycle bit-exactly;
//! non-finite floats are written as `null` (matching upstream `serde_json`).

#![forbid(unsafe_code)]

use serde::{DeError, Deserialize, Serialize, Value};
use std::fmt;

pub use serde::Value as JsonValue;

/// JSON (de)serialization failure.
#[derive(Debug, Clone, PartialEq)]
pub struct Error {
    message: String,
}

impl Error {
    fn new(message: impl Into<String>) -> Self {
        Error {
            message: message.into(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error::new(e.to_string())
    }
}

/// Serializes a value to compact JSON.
///
/// # Errors
///
/// Never fails for the value model this shim supports; the `Result` mirrors
/// the upstream signature.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes a value to pretty (2-space indented) JSON.
///
/// # Errors
///
/// Never fails for the value model this shim supports.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Deserializes a value from JSON text.
///
/// # Errors
///
/// Returns a descriptive [`Error`] on malformed JSON or shape mismatches.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse(s)?;
    Ok(T::from_value(&value)?)
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::U64(u) => out.push_str(&u.to_string()),
        Value::I64(i) => out.push_str(&i.to_string()),
        Value::F64(f) => {
            if f.is_finite() {
                // `{}` is Rust's shortest representation that parses back to
                // the same bits; force a trailing `.0` so integral floats stay
                // floats in mixed-type readers.
                let s = format!("{f}");
                out.push_str(&s);
                if !s.contains(['.', 'e', 'E']) {
                    out.push_str(".0");
                }
            } else {
                out.push_str("null");
            }
        }
        Value::String(s) => write_string(out, s),
        Value::Array(items) => {
            write_seq(out, items.len(), indent, depth, '[', ']', |out, i, d| {
                write_value(out, &items[i], indent, d);
            });
        }
        Value::Object(fields) => {
            write_seq(out, fields.len(), indent, depth, '{', '}', |out, i, d| {
                write_string(out, &fields[i].0);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, &fields[i].1, indent, d);
            });
        }
    }
}

fn write_seq(
    out: &mut String,
    len: usize,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    mut item: impl FnMut(&mut String, usize, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(step) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', step * (depth + 1)));
        }
        item(out, i, depth + 1);
    }
    if let Some(step) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', step * depth));
    }
    out.push(close);
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Result<u8, Error> {
        self.skip_ws();
        self.bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| Error::new("unexpected end of JSON"))
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek()? == b {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn literal(&mut self, lit: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(Error::new(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek()? {
            b'n' => self.literal("null", Value::Null),
            b't' => self.literal("true", Value::Bool(true)),
            b'f' => self.literal("false", Value::Bool(false)),
            b'"' => self.string().map(Value::String),
            b'[' => self.array(),
            b'{' => self.object(),
            _ => self.number(),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek()? == b']' {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `]` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        if self.peek()? == b'}' {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.expect(b':')?;
            let value = self.value()?;
            fields.push((key, value));
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `}}` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::new("invalid UTF-8 in string"))?,
            );
            match self.bytes.get(self.pos) {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .bytes
                        .get(self.pos)
                        .copied()
                        .ok_or_else(|| Error::new("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            self.pos += 4;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::new("invalid \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::new("invalid \\u escape"))?;
                            // Surrogate pairs are not produced by this shim's
                            // writer; map lone surrogates to the replacement
                            // character rather than failing.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => {
                            return Err(Error::new(format!("invalid escape `\\{}`", other as char)))
                        }
                    }
                }
                _ => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        let start = self.pos;
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if text.is_empty() {
            return Err(Error::new(format!("expected value at byte {start}")));
        }
        if !text.contains(['.', 'e', 'E']) {
            if text.starts_with('-') {
                if let Ok(i) = text.parse::<i64>() {
                    return Ok(Value::I64(i));
                }
            } else if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::U64(u));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error::new(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrips() {
        let x = 0.1f64 + 0.2;
        let json = to_string(&x).unwrap();
        let back: f64 = from_str(&json).unwrap();
        assert_eq!(x.to_bits(), back.to_bits());
        let big = u64::MAX - 3;
        let back: u64 = from_str(&to_string(&big).unwrap()).unwrap();
        assert_eq!(back, big);
    }

    #[test]
    fn containers_roundtrip() {
        let v = vec![vec![1.5f64, -2.0], vec![]];
        let back: Vec<Vec<f64>> = from_str(&to_string(&v).unwrap()).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn strings_escape() {
        let s = "line\n\"quoted\"\tcontrol\u{1}".to_string();
        let back: String = from_str(&to_string(&s).unwrap()).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn pretty_output_parses() {
        let v = Value::Object(vec![
            ("a".into(), Value::Array(vec![Value::U64(1), Value::Null])),
            ("b".into(), Value::Bool(false)),
        ]);
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains('\n'));
        let back: Value = from_str(&pretty).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<f64>("1.0garbage").is_err());
        assert!(from_str::<Vec<f64>>("[1,").is_err());
        assert!(from_str::<String>("\"unterminated").is_err());
    }

    #[test]
    fn integral_floats_stay_floats() {
        let json = to_string(&1.0f64).unwrap();
        assert_eq!(json, "1.0");
    }
}

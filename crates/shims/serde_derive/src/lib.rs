//! Vendored stand-in for `serde_derive`, written against `proc_macro` only
//! (the offline build has no `syn`/`quote`).
//!
//! Supports what this workspace's types need:
//!
//! * structs with named fields,
//! * unit structs,
//! * enums whose variants are unit or single-field tuple ("newtype")
//!   variants, using serde's externally-tagged representation
//!   (`"Variant"` / `{"Variant": value}`).
//!
//! Generic types, tuple structs, struct variants, and `#[serde(...)]`
//! attributes are intentionally unsupported and produce a compile error
//! naming the limitation.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// What we parsed out of the derive input.
enum Shape {
    /// `struct Name { field, ... }` (fields possibly empty) or `struct Name;`.
    Struct { name: String, fields: Vec<String> },
    /// `enum Name { Unit, Newtype(T), ... }`; bool marks newtype variants.
    Enum {
        name: String,
        variants: Vec<(String, bool)>,
    },
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});").parse().unwrap()
}

/// Skips attributes (`#[...]`) and visibility (`pub`, `pub(...)`).
fn skip_attrs_and_vis(tokens: &[TokenTree], mut i: usize) -> usize {
    loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                // `#` then a bracket group.
                i += 2;
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
            _ => return i,
        }
    }
}

/// Splits a delimited group body at top-level commas.
fn split_commas(tokens: &[TokenTree]) -> Vec<Vec<TokenTree>> {
    let mut out = Vec::new();
    let mut current = Vec::new();
    let mut angle_depth = 0i32;
    for t in tokens {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => {
                angle_depth += 1;
                current.push(t.clone());
            }
            TokenTree::Punct(p) if p.as_char() == '>' => {
                angle_depth -= 1;
                current.push(t.clone());
            }
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                if !current.is_empty() {
                    out.push(std::mem::take(&mut current));
                }
            }
            _ => current.push(t.clone()),
        }
    }
    if !current.is_empty() {
        out.push(current);
    }
    out
}

fn parse_shape(input: TokenStream) -> Result<Shape, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_attrs_and_vis(&tokens, 0);
    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("unexpected derive input start: {other:?}")),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected type name, found {other:?}")),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            return Err(format!(
                "serde_derive shim: generic type `{name}` is not supported"
            ));
        }
    }
    match kind.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let body: Vec<TokenTree> = g.stream().into_iter().collect();
                let mut fields = Vec::new();
                for field_tokens in split_commas(&body) {
                    let j = skip_attrs_and_vis(&field_tokens, 0);
                    match field_tokens.get(j) {
                        Some(TokenTree::Ident(id)) => fields.push(id.to_string()),
                        other => {
                            return Err(format!(
                                "serde_derive shim: cannot parse field of `{name}`: {other:?}"
                            ))
                        }
                    }
                }
                Ok(Shape::Struct { name, fields })
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Ok(Shape::Struct {
                name,
                fields: Vec::new(),
            }),
            _ => Err(format!(
                "serde_derive shim: tuple struct `{name}` is not supported"
            )),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let body: Vec<TokenTree> = g.stream().into_iter().collect();
                let mut variants = Vec::new();
                for var_tokens in split_commas(&body) {
                    let j = skip_attrs_and_vis(&var_tokens, 0);
                    let vname = match var_tokens.get(j) {
                        Some(TokenTree::Ident(id)) => id.to_string(),
                        other => {
                            return Err(format!(
                                "serde_derive shim: cannot parse variant of `{name}`: {other:?}"
                            ))
                        }
                    };
                    match var_tokens.get(j + 1) {
                        None => variants.push((vname, false)),
                        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                            if split_commas(&g.stream().into_iter().collect::<Vec<_>>()).len() != 1
                            {
                                return Err(format!(
                                    "serde_derive shim: multi-field variant `{name}::{vname}` \
                                     is not supported"
                                ));
                            }
                            variants.push((vname, true));
                        }
                        Some(TokenTree::Punct(p)) if p.as_char() == '=' => {
                            // Discriminant (`Variant = 3`): value irrelevant here.
                            variants.push((vname, false));
                        }
                        _ => {
                            return Err(format!(
                                "serde_derive shim: struct variant `{name}::{vname}` \
                                 is not supported"
                            ))
                        }
                    }
                }
                Ok(Shape::Enum { name, variants })
            }
            _ => Err(format!("serde_derive shim: malformed enum `{name}`")),
        },
        other => Err(format!(
            "serde_derive shim: cannot derive for `{other}` items"
        )),
    }
}

/// Derives the value-tree `Serialize` impl.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let shape = match parse_shape(input) {
        Ok(s) => s,
        Err(e) => return compile_error(&e),
    };
    let code = match shape {
        Shape::Struct { name, fields } => {
            let pushes: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "__fields.push(({f:?}.to_string(), \
                         ::serde::Serialize::to_value(&self.{f})));"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         let mut __fields: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = ::std::vec::Vec::new();\n\
                         {pushes}\n\
                         ::serde::Value::Object(__fields)\n\
                     }}\n\
                 }}"
            )
        }
        Shape::Enum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|(v, has_data)| {
                    if *has_data {
                        format!(
                            "{name}::{v}(__inner) => ::serde::Value::Object(vec![({v:?}.to_string(), \
                             ::serde::Serialize::to_value(__inner))]),"
                        )
                    } else {
                        format!("{name}::{v} => ::serde::Value::String({v:?}.to_string()),")
                    }
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         match self {{ {arms} }}\n\
                     }}\n\
                 }}"
            )
        }
    };
    code.parse().unwrap()
}

/// Derives the value-tree `Deserialize` impl.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let shape = match parse_shape(input) {
        Ok(s) => s,
        Err(e) => return compile_error(&e),
    };
    let code = match shape {
        Shape::Struct { name, fields } => {
            let field_inits: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::from_value(__obj_get(__v, {f:?})\
                         .ok_or_else(|| ::serde::DeError::new(concat!(\"missing field `\", {f:?}, \"` in {name}\")))?)?,"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                         fn __obj_get<'a>(v: &'a ::serde::Value, key: &str) -> ::std::option::Option<&'a ::serde::Value> {{ v.get(key) }}\n\
                         if __v.as_object().is_none() {{\n\
                             return ::std::result::Result::Err(::serde::DeError::expected(\"object for {name}\", __v));\n\
                         }}\n\
                         ::std::result::Result::Ok({name} {{ {field_inits} }})\n\
                     }}\n\
                 }}"
            )
        }
        Shape::Enum { name, variants } => {
            let unit_arms: String = variants
                .iter()
                .filter(|(_, has_data)| !has_data)
                .map(|(v, _)| format!("{v:?} => ::std::result::Result::Ok({name}::{v}),"))
                .collect();
            let data_arms: String = variants
                .iter()
                .filter(|(_, has_data)| *has_data)
                .map(|(v, _)| {
                    format!(
                        "{v:?} => ::std::result::Result::Ok({name}::{v}(\
                         ::serde::Deserialize::from_value(__inner)?)),"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                         match __v {{\n\
                             ::serde::Value::String(__s) => match __s.as_str() {{\n\
                                 {unit_arms}\n\
                                 other => ::std::result::Result::Err(::serde::DeError::new(\
                                     format!(\"unknown {name} variant `{{other}}`\"))),\n\
                             }},\n\
                             ::serde::Value::Object(__fields) if __fields.len() == 1 => {{\n\
                                 let (__tag, __inner) = &__fields[0];\n\
                                 match __tag.as_str() {{\n\
                                     {data_arms}\n\
                                     other => ::std::result::Result::Err(::serde::DeError::new(\
                                         format!(\"unknown {name} variant `{{other}}`\"))),\n\
                                 }}\n\
                             }}\n\
                             _ => ::std::result::Result::Err(::serde::DeError::expected(\"{name} variant\", __v)),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
    };
    code.parse().unwrap()
}

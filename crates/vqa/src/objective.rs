//! VQE objective evaluators, from ideal to transient-noisy.
//!
//! The noisy evaluator mirrors the paper's simulation methodology
//! (Section 6.2): the ideal expectation is computed exactly, the **static**
//! device noise enters as a multiplicative attenuation of the traceless part
//! (the global-depolarizing contraction validated against the density-matrix
//! backend), finite shots add Gaussian estimator noise, and the **transient**
//! component is looked up from a [`TransientTrace`] keyed by the quantum-job
//! counter and applied as an extra attenuation of the signal, "normalized to
//! the magnitude of the VQA estimations".
//!
//! Evaluations within one job share the job's transient value up to a
//! within-job spread — the same physical event hits every circuit in the
//! job, but not perfectly identically (paper Fig. 6: individual candidates
//! are perturbed differently). QISMET's estimator feeds on exactly this
//! structure.

use crate::ansatz::{Ansatz, CompiledAnsatz};
use crate::job::{JobLayout, JobRequest, JobResult};
use qismet_mathkit::{normal, rng_from_seed};
use qismet_qnoise::{StaticNoiseModel, TransientTrace};
use qismet_qsim::{Backend, CachedStatevectorBackend, CompiledObservable, PauliSum};
use rand::rngs::StdRng;
use std::cell::RefCell;
use std::fmt;

/// Typed failure of a noisy measurement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ObjectiveError {
    /// The transient trace has no slot for the requested quantum job.
    /// Allocate traces with headroom for QISMET retries (the harnesses use
    /// ~4x the iteration count) or stop the run when
    /// [`NoisyObjective::jobs_remaining`] hits zero.
    TraceExhausted {
        /// The job index that was requested.
        job: usize,
        /// The trace's capacity in jobs.
        capacity: usize,
    },
}

impl fmt::Display for ObjectiveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ObjectiveError::TraceExhausted { job, capacity } => write!(
                f,
                "transient trace exhausted: job {job} requested but the trace holds \
                 {capacity} slots (allocate headroom for retries)"
            ),
        }
    }
}

impl std::error::Error for ObjectiveError {}

/// Exact, noise-free objective (the paper's "Noise-free" reference).
///
/// The ansatz is lowered once into a [`CompiledAnsatz`] and the Hamiltonian
/// into a [`CompiledObservable`] at construction; each evaluation then
/// rebinds the plan in place and executes it through the pluggable
/// [`Backend`] — no circuit binding, no gate re-dispatch, no per-term state
/// sweeps, and (with the default buffer-reusing
/// [`CachedStatevectorBackend`]) no allocation at all per parameter point.
pub struct ExactObjective {
    ansatz: Ansatz,
    hamiltonian: PauliSum,
    compiled: RefCell<CompiledAnsatz>,
    observable: CompiledObservable,
    backend: RefCell<Box<dyn Backend>>,
}

impl Clone for ExactObjective {
    fn clone(&self) -> Self {
        ExactObjective {
            ansatz: self.ansatz.clone(),
            hamiltonian: self.hamiltonian.clone(),
            compiled: RefCell::new(self.compiled.borrow().clone()),
            observable: self.observable.clone(),
            backend: RefCell::new(self.backend.borrow().clone()),
        }
    }
}

impl fmt::Debug for ExactObjective {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ExactObjective")
            .field("ansatz", &self.ansatz)
            .field("hamiltonian", &self.hamiltonian)
            .field("backend", &self.backend.borrow().name())
            .finish()
    }
}

impl ExactObjective {
    /// Creates the evaluator on the default cached statevector backend.
    ///
    /// # Panics
    ///
    /// Panics on qubit-width mismatch.
    pub fn new(ansatz: Ansatz, hamiltonian: PauliSum) -> Self {
        Self::with_backend(
            ansatz,
            hamiltonian,
            Box::new(CachedStatevectorBackend::new()),
        )
    }

    /// Creates the evaluator on an explicit execution backend.
    ///
    /// # Panics
    ///
    /// Panics on qubit-width mismatch.
    pub fn with_backend(ansatz: Ansatz, hamiltonian: PauliSum, backend: Box<dyn Backend>) -> Self {
        assert_eq!(
            ansatz.n_qubits(),
            hamiltonian.n_qubits(),
            "ansatz and Hamiltonian width"
        );
        let compiled = RefCell::new(ansatz.compile());
        let observable = CompiledObservable::compile(&hamiltonian);
        ExactObjective {
            ansatz,
            hamiltonian,
            compiled,
            observable,
            backend: RefCell::new(backend),
        }
    }

    /// The ansatz.
    pub fn ansatz(&self) -> &Ansatz {
        &self.ansatz
    }

    /// The Hamiltonian.
    pub fn hamiltonian(&self) -> &PauliSum {
        &self.hamiltonian
    }

    /// Name of the execution backend in use.
    pub fn backend_name(&self) -> &'static str {
        self.backend.borrow().name()
    }

    /// Evaluates `<psi(theta)| H |psi(theta)>` exactly, by rebinding the
    /// compiled plan in place — the allocation-free hot path.
    ///
    /// # Panics
    ///
    /// Panics if `params` is shorter than the ansatz requires.
    pub fn eval(&self, params: &[f64]) -> f64 {
        self.backend
            .borrow_mut()
            .evaluate_plan(
                self.compiled.borrow_mut().plan_mut(),
                params,
                &self.observable,
            )
            .expect("parameter count")
    }

    /// Evaluates many parameter vectors as **one backend batch**, in order.
    /// Results are bitwise identical to calling [`ExactObjective::eval`]
    /// per point (the [`Backend`] contract).
    ///
    /// # Panics
    ///
    /// Panics if any parameter vector is shorter than the ansatz requires.
    pub fn eval_batch(&self, params_list: &[Vec<f64>]) -> Vec<f64> {
        self.backend
            .borrow_mut()
            .evaluate_plan_batch(
                self.compiled.borrow_mut().plan_mut(),
                params_list,
                &self.observable,
            )
            .expect("parameter count")
    }
}

/// Configuration for the noisy objective.
#[derive(Debug, Clone)]
pub struct NoisyObjectiveConfig {
    /// Static device model (drives the attenuation factor).
    pub static_model: StaticNoiseModel,
    /// Transient trace keyed by job index.
    pub trace: TransientTrace,
    /// Reference magnitude the trace is normalized to; typically the |exact
    /// ground energy| of the target Hamiltonian.
    pub magnitude_ref: f64,
    /// Standard deviation of shot (sampling) noise on each evaluation.
    pub shot_sigma: f64,
    /// Relative spread of the transient across evaluations within one job.
    pub within_job_spread: f64,
    /// RNG seed for shot noise and within-job spread.
    pub seed: u64,
}

/// The transient-noisy objective of the paper's simulator.
///
/// # Examples
///
/// ```
/// use qismet_vqa::{Ansatz, AnsatzKind, Entanglement, NoisyObjective,
///                  NoisyObjectiveConfig, Tfim};
/// use qismet_qnoise::{StaticNoiseModel, TransientModel};
/// use qismet_mathkit::rng_from_seed;
///
/// let tfim = Tfim::paper_6q();
/// let h = tfim.hamiltonian();
/// let ansatz = Ansatz::new(AnsatzKind::RealAmplitudes, 6, 2, Entanglement::Linear);
/// let trace = TransientModel::moderate(0.1).generate(&mut rng_from_seed(1), 100);
/// let cfg = NoisyObjectiveConfig {
///     static_model: StaticNoiseModel::uniform(6, 100.0, 90.0, 3e-4, 8e-3, 0.02),
///     trace,
///     magnitude_ref: tfim.exact_ground_energy().unwrap().abs(),
///     shot_sigma: 0.02,
///     within_job_spread: 0.25,
///     seed: 7,
/// };
/// let mut obj = NoisyObjective::new(ansatz, h, cfg);
/// let params = vec![0.0; obj.exact().ansatz().n_params()];
/// let noisy = obj.measure(&params);
/// assert!(noisy.is_finite());
/// ```
#[derive(Debug, Clone)]
pub struct NoisyObjective {
    exact: ExactObjective,
    attenuation: f64,
    identity_offset: f64,
    trace: TransientTrace,
    magnitude_ref: f64,
    shot_sigma: f64,
    within_job_spread: f64,
    rng: StdRng,
    job: usize,
    evals: u64,
}

impl NoisyObjective {
    /// Builds the noisy evaluator on the default cached statevector
    /// backend. The static attenuation factor is computed once from the
    /// ansatz shape (gate counts and durations do not depend on the bound
    /// angles).
    pub fn new(ansatz: Ansatz, hamiltonian: PauliSum, cfg: NoisyObjectiveConfig) -> Self {
        Self::with_backend(
            ansatz,
            hamiltonian,
            cfg,
            Box::new(CachedStatevectorBackend::new()),
        )
    }

    /// Like [`NoisyObjective::new`] but on an explicit circuit-execution
    /// [`Backend`].
    pub fn with_backend(
        ansatz: Ansatz,
        hamiltonian: PauliSum,
        cfg: NoisyObjectiveConfig,
        backend: Box<dyn Backend>,
    ) -> Self {
        let bound = ansatz
            .bind(&vec![0.0; ansatz.n_params()])
            .expect("zero binding");
        let attenuation = cfg.static_model.attenuation_factor(&bound);
        let identity_offset = hamiltonian.identity_coefficient();
        NoisyObjective {
            exact: ExactObjective::with_backend(ansatz, hamiltonian, backend),
            attenuation,
            identity_offset,
            trace: cfg.trace,
            magnitude_ref: cfg.magnitude_ref,
            shot_sigma: cfg.shot_sigma,
            within_job_spread: cfg.within_job_spread,
            rng: rng_from_seed(cfg.seed),
            job: 0,
            evals: 0,
        }
    }

    /// The underlying exact evaluator.
    pub fn exact(&self) -> &ExactObjective {
        &self.exact
    }

    /// The static attenuation factor in effect.
    pub fn attenuation(&self) -> f64 {
        self.attenuation
    }

    /// The objective-magnitude reference the transient trace was normalized
    /// to (metadata; the multiplicative injection uses the instantaneous
    /// signal, which equals this scale near convergence).
    pub fn magnitude_ref(&self) -> f64 {
        self.magnitude_ref
    }

    /// Current job index (transient-trace key).
    pub fn job(&self) -> usize {
        self.job
    }

    /// Total objective evaluations performed (overhead accounting).
    pub fn evals(&self) -> u64 {
        self.evals
    }

    /// Advances to the next quantum job (next transient-trace slot).
    pub fn advance_job(&mut self) {
        self.job += 1;
    }

    /// The raw trace value for a job.
    ///
    /// # Panics
    ///
    /// Panics if the trace is exhausted.
    pub fn transient_at(&self, job: usize) -> f64 {
        self.trace.value(job)
    }

    /// Remaining trace capacity in jobs.
    pub fn jobs_remaining(&self) -> usize {
        self.trace.len().saturating_sub(self.job)
    }

    /// Noise-free expectation (for analysis plots; not available to tuners
    /// on real hardware).
    pub fn eval_exact(&self, params: &[f64]) -> f64 {
        self.exact.eval(params)
    }

    /// Static-noise-only measurement (the paper's unrealistic "static only"
    /// blue line): attenuated signal plus shot noise, no transient term.
    pub fn measure_static_only(&mut self, params: &[f64]) -> f64 {
        self.evals += 1;
        let ideal = self.exact.eval(params);
        let signal = self.attenuation * (ideal - self.identity_offset);
        self.identity_offset + signal + normal(&mut self.rng, 0.0, self.shot_sigma)
    }

    /// Full measurement at the current job: static attenuation, transient
    /// attenuation from the trace, and shot noise.
    ///
    /// # Panics
    ///
    /// Panics if the transient trace is exhausted (allocate ~4x the
    /// iteration count to cover QISMET retries). Use
    /// [`NoisyObjective::try_measure`] to handle exhaustion as a typed
    /// error instead.
    pub fn measure(&mut self, params: &[f64]) -> f64 {
        self.try_measure(params).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Like [`NoisyObjective::measure`], but reports trace exhaustion as
    /// [`ObjectiveError::TraceExhausted`] instead of panicking.
    ///
    /// # Errors
    ///
    /// [`ObjectiveError::TraceExhausted`] when the current job index has no
    /// transient-trace slot; the measurement is not counted and no
    /// randomness is consumed.
    pub fn try_measure(&mut self, params: &[f64]) -> Result<f64, ObjectiveError> {
        let job = self.job;
        self.try_measure_at_job(params, job)
    }

    /// Full measurement pinned to an explicit job index (QISMET's executor
    /// uses this to evaluate reference reruns inside the current job).
    ///
    /// The transient acts as an **extra attenuation of the signal** — a
    /// temporary additional depolarization, exactly what a T1/T2 dip does to
    /// an expectation value. A trace value `v` (fraction of the objective
    /// magnitude, Section 6.2's normalization) multiplies the signal by
    /// `1 - v * wobble`, clamped to the physical band
    /// `[-0.25, 1.25]` (a transient cannot produce signal out of thin air;
    /// small overshoot accounts for readout artifacts).
    ///
    /// # Panics
    ///
    /// Panics if `job` exceeds the trace length; see
    /// [`NoisyObjective::try_measure_at_job`] for the typed variant.
    pub fn measure_at_job(&mut self, params: &[f64], job: usize) -> f64 {
        self.try_measure_at_job(params, job)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Like [`NoisyObjective::measure_at_job`], but reports trace
    /// exhaustion as a typed error instead of panicking.
    ///
    /// # Errors
    ///
    /// [`ObjectiveError::TraceExhausted`] when `job` has no trace slot.
    pub fn try_measure_at_job(
        &mut self,
        params: &[f64],
        job: usize,
    ) -> Result<f64, ObjectiveError> {
        let ideal = self.exact.eval(params);
        self.noisy_from_ideal(ideal, job)
    }

    /// Applies the noise stack (static attenuation, transient attenuation,
    /// shot noise) to an ideal expectation at `job`. Shared by the per-call
    /// and batched paths so both consume the RNG identically.
    fn noisy_from_ideal(&mut self, ideal: f64, job: usize) -> Result<f64, ObjectiveError> {
        let v_job = self.trace.get(job).ok_or(ObjectiveError::TraceExhausted {
            job,
            capacity: self.trace.len(),
        })?;
        self.evals += 1;
        let signal = self.attenuation * (ideal - self.identity_offset);
        // Per-evaluation wobble of the shared job transient.
        let wobble = 1.0 + self.within_job_spread * qismet_mathkit::standard_normal(&mut self.rng);
        let tau = (1.0 - v_job * wobble).clamp(-0.25, 1.25);
        Ok(self.identity_offset + signal * tau + normal(&mut self.rng, 0.0, self.shot_sigma))
    }

    /// Executes a whole [`JobRequest`] — the unit the runners assemble per
    /// iteration (optimizer evaluations, plus the rerun circuit for
    /// QISMET) — as **one batched backend call**, then applies the noise
    /// stack to each result in submission order.
    ///
    /// The RNG is consumed in exactly the order a sequence of
    /// [`NoisyObjective::measure`] calls would consume it, so batched and
    /// per-call execution produce bit-identical measured series.
    ///
    /// Under [`JobLayout::JobPerEval`] the job counter advances after every
    /// point; under [`JobLayout::SharedJob`] all points read the current
    /// job's transient slot and the caller advances the counter once the
    /// iteration concludes.
    ///
    /// # Errors
    ///
    /// [`ObjectiveError::TraceExhausted`] if the trace runs out mid-batch
    /// (evaluations before the failing point are already accounted, exactly
    /// as the sequential path would have).
    pub fn execute(&mut self, request: &JobRequest) -> Result<JobResult, ObjectiveError> {
        let ideals = self.exact.eval_batch(request.points());
        self.apply_noise_stack(ideals, request)
    }

    /// Applies this objective's noise stack to pre-computed ideal values in
    /// submission order — the back half of [`NoisyObjective::execute`],
    /// shared with the lockstep path so both consume the RNG and the job
    /// counter identically.
    fn apply_noise_stack(
        &mut self,
        ideals: Vec<f64>,
        request: &JobRequest,
    ) -> Result<JobResult, ObjectiveError> {
        let mut values = Vec::with_capacity(ideals.len());
        for ideal in ideals {
            let job = self.job;
            values.push(self.noisy_from_ideal(ideal, job)?);
            if request.layout() == JobLayout::JobPerEval {
                self.advance_job();
            }
        }
        Ok(JobResult::new(values, request.rerun_index()))
    }
}

/// Executes one [`JobRequest`] per independent trajectory (lane) as a
/// single cross-lane batched backend call: every lane's ideal evaluations
/// are concatenated into one `evaluate_plan_batch` on lane 0's backend —
/// where the lane-batched statevector engine runs them in lockstep — and
/// each lane's noise stack is then applied in lane order.
///
/// Per-lane results, RNG streams, eval counters, and job counters are
/// **bitwise identical** to calling [`NoisyObjective::execute`] on each
/// lane sequentially: ideal evaluations are RNG-free and grouping-invariant
/// (the [`Backend`] batch contract), and each lane's noise application
/// consumes only that lane's RNG in unchanged order.
///
/// All lanes must share one ansatz/Hamiltonian structure (independent
/// trajectories of the same scenario — each lane keeps its own angles,
/// seed, trace, and job counter).
///
/// # Errors
///
/// The first lane's [`ObjectiveError::TraceExhausted`], if any; earlier
/// lanes are already accounted, exactly as sequential execution would
/// leave them.
///
/// # Panics
///
/// Panics if `objectives` and `requests` differ in length or the lanes
/// disagree on ansatz width or parameter count.
pub fn execute_lockstep(
    objectives: &mut [&mut NoisyObjective],
    requests: &[JobRequest],
) -> Result<Vec<JobResult>, ObjectiveError> {
    assert_eq!(objectives.len(), requests.len(), "one request per lane");
    if objectives.is_empty() {
        return Ok(Vec::new());
    }
    let lead = objectives[0].exact.ansatz();
    let (n_qubits, n_params) = (lead.n_qubits(), lead.n_params());
    for obj in objectives.iter().skip(1) {
        assert_eq!(obj.exact.ansatz().n_qubits(), n_qubits, "lane ansatz width");
        assert_eq!(
            obj.exact.ansatz().n_params(),
            n_params,
            "lane parameter count"
        );
    }
    let all_points: Vec<Vec<f64>> = requests
        .iter()
        .flat_map(|r| r.points().iter().cloned())
        .collect();
    let ideals = objectives[0].exact.eval_batch(&all_points);
    let mut out = Vec::with_capacity(objectives.len());
    let mut off = 0usize;
    for (obj, req) in objectives.iter_mut().zip(requests) {
        let lane_ideals = ideals[off..off + req.len()].to_vec();
        off += req.len();
        out.push(obj.apply_noise_stack(lane_ideals, req)?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ansatz::{AnsatzKind, Entanglement};
    use crate::tfim::Tfim;

    fn setup(trace: TransientTrace, seed: u64) -> (NoisyObjective, f64) {
        let tfim = Tfim::paper_6q();
        let h = tfim.hamiltonian();
        let gs = tfim.exact_ground_energy().unwrap();
        let ansatz = Ansatz::new(AnsatzKind::RealAmplitudes, 6, 2, Entanglement::Linear);
        let cfg = NoisyObjectiveConfig {
            static_model: StaticNoiseModel::uniform(6, 100.0, 90.0, 3e-4, 8e-3, 0.02),
            trace,
            magnitude_ref: gs.abs(),
            shot_sigma: 0.02,
            within_job_spread: 0.25,
            seed,
        };
        (NoisyObjective::new(ansatz, h, cfg), gs)
    }

    #[test]
    fn exact_objective_reaches_ground_energy_bound() {
        let tfim = Tfim::paper_6q();
        let gs = tfim.exact_ground_energy().unwrap();
        let ansatz = Ansatz::new(AnsatzKind::RealAmplitudes, 6, 2, Entanglement::Linear);
        let obj = ExactObjective::new(ansatz, tfim.hamiltonian());
        let e0 = obj.eval(&vec![0.0; obj.ansatz().n_params()]);
        // Variational bound.
        assert!(e0 >= gs - 1e-9);
    }

    #[test]
    fn static_attenuation_contracts_toward_offset() {
        let trace = TransientTrace::zeros(10);
        let (mut obj, _) = setup(trace, 1);
        let params = obj.exact().ansatz().initial_params(5);
        let ideal = obj.eval_exact(&params);
        let mut noisy = Vec::new();
        for _ in 0..64 {
            noisy.push(obj.measure_static_only(&params));
        }
        let mean_noisy = qismet_mathkit::mean(&noisy);
        // TFIM identity offset is zero; attenuated |E| must shrink.
        assert!(mean_noisy.abs() < ideal.abs());
        assert!(
            (mean_noisy - obj.attenuation() * ideal).abs() < 0.05,
            "mean {mean_noisy} vs predicted {}",
            obj.attenuation() * ideal
        );
    }

    #[test]
    fn quiet_trace_measurement_matches_static_only() {
        let trace = TransientTrace::zeros(100);
        let (mut obj, _) = setup(trace, 2);
        let params = obj.exact().ansatz().initial_params(6);
        let mut a = Vec::new();
        let mut b = Vec::new();
        for _ in 0..50 {
            a.push(obj.measure(&params));
            b.push(obj.measure_static_only(&params));
        }
        let ma = qismet_mathkit::mean(&a);
        let mb = qismet_mathkit::mean(&b);
        assert!((ma - mb).abs() < 0.02, "with-trace {ma} vs static {mb}");
    }

    #[test]
    fn adverse_transient_raises_energy_estimate() {
        // A trace pinned at +0.3 (30% of magnitude, adverse) on every job.
        let trace = TransientTrace::from_values(vec![0.3; 10]);
        let (mut obj, gs) = setup(trace, 3);
        // Use parameters that give a decently negative energy.
        let params = obj.exact().ansatz().initial_params(7);
        let ideal = obj.eval_exact(&params);
        let mut vals = Vec::new();
        for _ in 0..64 {
            vals.push(obj.measure(&params));
        }
        let mean = qismet_mathkit::mean(&vals);
        let static_pred = obj.attenuation() * ideal;
        assert!(
            mean > static_pred + 0.1,
            "transient should push energy up: {mean} vs {static_pred} (gs {gs})"
        );
    }

    #[test]
    fn job_advancement_changes_transient() {
        let mut values = vec![0.0; 10];
        values[3] = 0.5;
        let trace = TransientTrace::from_values(values);
        let (mut obj, _) = setup(trace, 4);
        let params = obj.exact().ansatz().initial_params(8);
        assert_eq!(obj.job(), 0);
        let quiet = obj.measure(&params);
        obj.advance_job();
        obj.advance_job();
        obj.advance_job();
        assert_eq!(obj.job(), 3);
        let burst: Vec<f64> = (0..32).map(|_| obj.measure(&params)).collect();
        let mean_burst = qismet_mathkit::mean(&burst);
        assert!(
            mean_burst > quiet + 0.2,
            "burst mean {mean_burst} vs quiet {quiet}"
        );
    }

    #[test]
    fn measure_at_job_pins_the_slot() {
        let mut values = vec![0.0; 10];
        values[5] = 0.8;
        let trace = TransientTrace::from_values(values);
        let (mut obj, _) = setup(trace, 5);
        let params = obj.exact().ansatz().initial_params(9);
        let at5: Vec<f64> = (0..32).map(|_| obj.measure_at_job(&params, 5)).collect();
        let at0: Vec<f64> = (0..32).map(|_| obj.measure_at_job(&params, 0)).collect();
        assert!(qismet_mathkit::mean(&at5) > qismet_mathkit::mean(&at0) + 0.2);
        // Pinning does not advance the job counter.
        assert_eq!(obj.job(), 0);
    }

    #[test]
    fn eval_counter_tracks_overhead() {
        let trace = TransientTrace::zeros(10);
        let (mut obj, _) = setup(trace, 6);
        let params = obj.exact().ansatz().initial_params(10);
        assert_eq!(obj.evals(), 0);
        let _ = obj.measure(&params);
        let _ = obj.measure_static_only(&params);
        assert_eq!(obj.evals(), 2);
    }

    #[test]
    fn exhausted_trace_is_a_typed_error_not_a_panic() {
        // Regression: trace exhaustion used to be an index-out-of-bounds
        // panic deep inside TransientTrace; it must surface as
        // ObjectiveError::TraceExhausted at the measure* boundary.
        let trace = TransientTrace::zeros(2);
        let (mut obj, _) = setup(trace, 8);
        let params = obj.exact().ansatz().initial_params(1);
        assert!(obj.try_measure(&params).is_ok());
        obj.advance_job();
        obj.advance_job();
        let evals_before = obj.evals();
        let err = obj.try_measure(&params).unwrap_err();
        assert_eq!(
            err,
            ObjectiveError::TraceExhausted {
                job: 2,
                capacity: 2
            }
        );
        assert!(err.to_string().contains("transient trace exhausted"));
        // A failed measurement is not accounted as an evaluation.
        assert_eq!(obj.evals(), evals_before);
        // Pinned lookups report the requested job.
        assert_eq!(
            obj.try_measure_at_job(&params, 7),
            Err(ObjectiveError::TraceExhausted {
                job: 7,
                capacity: 2
            })
        );
        // Batched execution surfaces the same typed error.
        let req = JobRequest::shared_job(vec![params.clone()]);
        assert!(matches!(
            obj.execute(&req),
            Err(ObjectiveError::TraceExhausted { job: 2, .. })
        ));
    }

    #[test]
    #[should_panic(expected = "transient trace exhausted")]
    fn measure_still_panics_on_exhaustion_with_the_typed_message() {
        let trace = TransientTrace::zeros(1);
        let (mut obj, _) = setup(trace, 9);
        let params = obj.exact().ansatz().initial_params(2);
        obj.advance_job();
        let _ = obj.measure(&params);
    }

    #[test]
    fn batched_execution_matches_sequential_measures_bitwise() {
        let trace = TransientTrace::from_values(vec![0.0, 0.3, -0.1, 0.5, 0.0, 0.2]);
        let params: Vec<Vec<f64>> = (0..4)
            .map(|k| {
                let (obj, _) = setup(TransientTrace::zeros(1), 1);
                obj.exact().ansatz().initial_params(40 + k)
            })
            .collect();

        // Sequential shared-job: measure each point at the current job.
        let (mut seq, _) = setup(trace.clone(), 11);
        let sequential: Vec<f64> = params.iter().map(|p| seq.measure(p)).collect();

        // Batched shared-job on an identically seeded objective.
        let (mut batched, _) = setup(trace.clone(), 11);
        let result = batched
            .execute(&JobRequest::shared_job(params.clone()))
            .unwrap();
        assert_eq!(result.values().len(), sequential.len());
        for (i, (a, b)) in sequential.iter().zip(result.values()).enumerate() {
            assert_eq!(a.to_bits(), b.to_bits(), "shared-job point {i}: {a} vs {b}");
        }
        assert_eq!(batched.job(), seq.job());
        assert_eq!(batched.evals(), seq.evals());

        // Sequential job-per-eval: measure + advance per point.
        let (mut seq, _) = setup(trace.clone(), 11);
        let sequential: Vec<f64> = params
            .iter()
            .map(|p| {
                let e = seq.measure(p);
                seq.advance_job();
                e
            })
            .collect();
        let (mut batched, _) = setup(trace, 11);
        let result = batched
            .execute(&JobRequest::job_per_eval(params.clone()))
            .unwrap();
        for (i, (a, b)) in sequential.iter().zip(result.values()).enumerate() {
            assert_eq!(a.to_bits(), b.to_bits(), "job-per-eval point {i}");
        }
        assert_eq!(batched.job(), seq.job());
    }

    #[test]
    fn explicit_backends_agree_with_the_default() {
        use qismet_qsim::StatevectorBackend;
        let tfim = Tfim::paper_6q();
        let ansatz = Ansatz::new(AnsatzKind::RealAmplitudes, 6, 2, Entanglement::Linear);
        let cached = ExactObjective::new(ansatz.clone(), tfim.hamiltonian());
        let fresh = ExactObjective::with_backend(
            ansatz,
            tfim.hamiltonian(),
            Box::new(StatevectorBackend::new()),
        );
        assert_eq!(cached.backend_name(), "cached-statevector");
        assert_eq!(fresh.backend_name(), "statevector");
        let params = cached.ansatz().initial_params(12);
        assert_eq!(
            cached.eval(&params).to_bits(),
            fresh.eval(&params).to_bits()
        );
        let batch = vec![params.clone(), cached.ansatz().initial_params(13)];
        let a = cached.eval_batch(&batch);
        let b = fresh.eval_batch(&batch);
        assert_eq!(a.len(), 2);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
        // Cloning an objective clones its backend.
        let cloned = cached.clone();
        assert_eq!(cloned.backend_name(), "cached-statevector");
        assert_eq!(
            cloned.eval(&params).to_bits(),
            cached.eval(&params).to_bits()
        );
    }

    #[test]
    fn extreme_trace_values_saturate() {
        // A pathological +5.0 trace value must not send the estimate to
        // -infinity or invert the landscape beyond the clamp.
        let trace = TransientTrace::from_values(vec![5.0; 4]);
        let (mut obj, _) = setup(trace, 7);
        let params = obj.exact().ansatz().initial_params(11);
        let ideal = obj.eval_exact(&params);
        let v = obj.measure(&params);
        assert!(v.is_finite());
        // Clamped to at most 1.5x the signal beyond the offset.
        assert!(v.abs() < 3.0 * ideal.abs().max(1.0) + 1.0);
    }
}

//! QAOA for MaxCut — the other flagship VQA.
//!
//! The paper's evaluation targets VQE, but states that "QISMET is broadly
//! applicable across all VQAs" (Section 2). This module provides the QAOA
//! substrate to exercise that claim: MaxCut cost Hamiltonians over arbitrary
//! graphs and the standard alternating cost/mixer ansatz, compatible with
//! the same objective pipeline and controllers as VQE.

use qismet_qsim::{Circuit, Param, Pauli, PauliString, PauliSum};

/// An undirected weighted graph for MaxCut.
#[derive(Debug, Clone, PartialEq)]
pub struct Graph {
    n_vertices: usize,
    edges: Vec<(usize, usize, f64)>,
}

impl Graph {
    /// Creates a graph; edges are `(u, v, weight)` with `u != v`.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range vertices or self-loops.
    pub fn new(n_vertices: usize, edges: Vec<(usize, usize, f64)>) -> Self {
        for &(u, v, _) in &edges {
            assert!(u < n_vertices && v < n_vertices, "vertex out of range");
            assert_ne!(u, v, "self-loops not allowed");
        }
        Graph { n_vertices, edges }
    }

    /// An unweighted cycle (ring) of `n` vertices.
    pub fn ring(n: usize) -> Self {
        assert!(n >= 3, "ring needs at least 3 vertices");
        Graph::new(n, (0..n).map(|i| (i, (i + 1) % n, 1.0)).collect())
    }

    /// Number of vertices.
    pub fn n_vertices(&self) -> usize {
        self.n_vertices
    }

    /// The edge list.
    pub fn edges(&self) -> &[(usize, usize, f64)] {
        &self.edges
    }

    /// Cut value of a bit-assignment (bit `i` of `assignment` = side of
    /// vertex `i`).
    pub fn cut_value(&self, assignment: u64) -> f64 {
        self.edges
            .iter()
            .filter(|&&(u, v, _)| (assignment >> u & 1) != (assignment >> v & 1))
            .map(|&(_, _, w)| w)
            .sum()
    }

    /// The maximum cut by brute force (exponential; for reference at small
    /// sizes).
    ///
    /// # Panics
    ///
    /// Panics if the graph has more than 24 vertices.
    pub fn max_cut_brute_force(&self) -> (u64, f64) {
        assert!(self.n_vertices <= 24, "brute force limited to 24 vertices");
        let mut best = (0u64, f64::NEG_INFINITY);
        for a in 0..(1u64 << self.n_vertices) {
            let c = self.cut_value(a);
            if c > best.1 {
                best = (a, c);
            }
        }
        best
    }
}

/// The MaxCut **cost Hamiltonian** in minimization form:
/// `C = sum_(u,v) w/2 (Z_u Z_v - I)`, whose ground energy is `-maxcut`.
pub fn maxcut_hamiltonian(graph: &Graph) -> PauliSum {
    let n = graph.n_vertices();
    let mut h = PauliSum::zero(n);
    for &(u, v, w) in graph.edges() {
        let mut paulis = vec![Pauli::I; n];
        paulis[u] = Pauli::Z;
        paulis[v] = Pauli::Z;
        h.add_term(0.5 * w, PauliString::new(paulis));
        h.add_term(-0.5 * w, PauliString::identity(n));
    }
    h
}

/// Builds the depth-`p` QAOA circuit: Hadamard layer, then `p` alternating
/// cost layers (`RZZ(2 gamma_k w)` per edge) and mixer layers
/// (`RX(2 beta_k)` per qubit). Parameters are ordered
/// `[gamma_0, beta_0, gamma_1, beta_1, ...]` (so `n_params = 2p`).
///
/// # Panics
///
/// Panics if `p == 0`.
pub fn qaoa_circuit(graph: &Graph, p: usize) -> Circuit {
    assert!(p > 0, "QAOA needs at least one layer");
    let n = graph.n_vertices();
    let mut c = Circuit::new(n);
    for q in 0..n {
        c.h(q);
    }
    for layer in 0..p {
        let gamma = Param::Free(2 * layer);
        let beta = Param::Free(2 * layer + 1);
        for &(u, v, _w) in graph.edges() {
            // One shared gamma per layer (the standard unweighted-QAOA
            // parameterization; weighted graphs would scale the angle).
            c.rzz(gamma, u, v);
        }
        for q in 0..n {
            c.rx(beta, q);
        }
    }
    c
}

/// The approximation ratio of an expectation value: `<C>` mapped to
/// `cut / maxcut` using `cut = -<C>`.
pub fn approximation_ratio(expectation: f64, max_cut: f64) -> f64 {
    if max_cut <= 0.0 {
        return f64::NAN;
    }
    -expectation / max_cut
}

#[cfg(test)]
mod tests {
    use super::*;
    use qismet_qsim::{exact_energy, StateVector};

    #[test]
    fn ring_cut_values() {
        let g = Graph::ring(4);
        // Alternating assignment cuts all 4 edges.
        assert_eq!(g.cut_value(0b0101), 4.0);
        assert_eq!(g.cut_value(0b0000), 0.0);
        assert_eq!(g.cut_value(0b0001), 2.0);
        let (_, best) = g.max_cut_brute_force();
        assert_eq!(best, 4.0);
    }

    #[test]
    fn odd_ring_frustration() {
        let g = Graph::ring(5);
        let (_, best) = g.max_cut_brute_force();
        assert_eq!(best, 4.0); // odd ring cannot cut all edges
    }

    #[test]
    fn hamiltonian_ground_energy_is_negative_maxcut() {
        for n in [4, 5, 6] {
            let g = Graph::ring(n);
            let h = maxcut_hamiltonian(&g);
            let (_, maxcut) = g.max_cut_brute_force();
            let e0 = h.ground_energy().unwrap();
            assert!(
                (e0 + maxcut).abs() < 1e-9,
                "ring {n}: ground {e0} vs -maxcut {}",
                -maxcut
            );
        }
    }

    #[test]
    fn qaoa_p1_ring_known_quality() {
        // p = 1 QAOA on the 4-ring at near-optimal angles reaches a decent
        // approximation ratio; sweep a small grid and take the best.
        let g = Graph::ring(4);
        let h = maxcut_hamiltonian(&g);
        let circuit = qaoa_circuit(&g, 1);
        assert_eq!(circuit.n_params(), 2);
        let (_, maxcut) = g.max_cut_brute_force();
        let mut best = f64::NEG_INFINITY;
        for i in 0..24 {
            for j in 0..24 {
                let gamma = i as f64 * std::f64::consts::PI / 24.0;
                let beta = j as f64 * std::f64::consts::PI / 24.0;
                let bound = circuit.bind(&[gamma, beta]).unwrap();
                let e = exact_energy(&bound, &h).unwrap();
                best = best.max(approximation_ratio(e, maxcut));
            }
        }
        // Known result: depth-1 QAOA on the 4-cycle achieves exactly 3/4.
        assert!(
            (best - 0.75).abs() < 0.01,
            "p=1 best ratio {best}, theory 0.75"
        );
    }

    #[test]
    fn deeper_qaoa_does_not_hurt() {
        let g = Graph::ring(4);
        let h = maxcut_hamiltonian(&g);
        // p = 2 grid (coarse) should match or beat the p = 1 grid best.
        let best_at = |p: usize, steps: usize| {
            let circuit = qaoa_circuit(&g, p);
            let mut best = f64::INFINITY;
            let mut params = vec![0.0; 2 * p];
            fn rec(
                k: usize,
                params: &mut Vec<f64>,
                steps: usize,
                circuit: &Circuit,
                h: &PauliSum,
                best: &mut f64,
            ) {
                if k == params.len() {
                    let bound = circuit.bind(params).unwrap();
                    let e = exact_energy(&bound, h).unwrap();
                    if e < *best {
                        *best = e;
                    }
                    return;
                }
                for i in 0..steps {
                    params[k] = i as f64 * std::f64::consts::PI / steps as f64;
                    rec(k + 1, params, steps, circuit, h, best);
                }
            }
            rec(0, &mut params, steps, &circuit, &h, &mut best);
            best
        };
        let e1 = best_at(1, 12);
        let e2 = best_at(2, 6);
        assert!(
            e2 <= e1 + 1e-9,
            "p=2 {e2} should not be worse than p=1 {e1}"
        );
    }

    #[test]
    fn uniform_superposition_gives_half_the_edges() {
        // The initial |+...+> state cuts each edge with probability 1/2.
        let g = Graph::ring(6);
        let h = maxcut_hamiltonian(&g);
        let mut c = Circuit::new(6);
        for q in 0..6 {
            c.h(q);
        }
        let sv = StateVector::from_circuit(&c).unwrap();
        let e = sv.expectation(&h);
        assert!((e + 3.0).abs() < 1e-9, "expected -|E|/2 = -3, got {e}");
    }

    #[test]
    #[should_panic(expected = "self-loops")]
    fn self_loop_rejected() {
        let _ = Graph::new(3, vec![(1, 1, 1.0)]);
    }
}

//! Hardware-efficient variational ansatz families.
//!
//! The paper uses IBM's `EfficientSU2` and `RealAmplitudes` circuits with
//! 2/4/8 block repetitions (Table 1). Both are alternating layers of
//! parameterized single-qubit rotations and CX entanglers, shallow enough
//! for NISQ devices.

use qismet_qsim::{Circuit, CompiledCircuit, Param};

/// Entanglement pattern of the CX layers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Entanglement {
    /// `CX(i, i+1)` chain.
    Linear,
    /// Chain plus wrap-around `CX(n-1, 0)`.
    Circular,
    /// All pairs `CX(i, j)`, `i < j`.
    Full,
}

impl Entanglement {
    fn pairs(self, n: usize) -> Vec<(usize, usize)> {
        match self {
            Entanglement::Linear => (0..n.saturating_sub(1)).map(|i| (i, i + 1)).collect(),
            Entanglement::Circular => {
                let mut p: Vec<(usize, usize)> =
                    (0..n.saturating_sub(1)).map(|i| (i, i + 1)).collect();
                if n > 2 {
                    p.push((n - 1, 0));
                }
                p
            }
            Entanglement::Full => {
                let mut p = Vec::new();
                for i in 0..n {
                    for j in (i + 1)..n {
                        p.push((i, j));
                    }
                }
                p
            }
        }
    }
}

/// Which ansatz family to build (paper Table 1's "SU2" and "RA").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AnsatzKind {
    /// `EfficientSU2`: RY + RZ rotation layers.
    EfficientSu2,
    /// `RealAmplitudes`: RY rotation layers only (real-valued states).
    RealAmplitudes,
}

impl AnsatzKind {
    /// Short label matching the paper's Table 1.
    pub fn label(self) -> &'static str {
        match self {
            AnsatzKind::EfficientSu2 => "SU2",
            AnsatzKind::RealAmplitudes => "RA",
        }
    }

    /// Rotations per qubit per rotation layer (2 for SU2, 1 for RA).
    fn rotations_per_qubit(self) -> usize {
        match self {
            AnsatzKind::EfficientSu2 => 2,
            AnsatzKind::RealAmplitudes => 1,
        }
    }
}

/// A parameterized hardware-efficient ansatz.
#[derive(Debug, Clone, PartialEq)]
pub struct Ansatz {
    kind: AnsatzKind,
    n_qubits: usize,
    reps: usize,
    entanglement: Entanglement,
    circuit: Circuit,
}

impl Ansatz {
    /// Builds an ansatz with `reps` entangling blocks. The circuit has
    /// `reps + 1` rotation layers (one trailing layer after the last
    /// entangler), matching the Qiskit constructions.
    ///
    /// # Panics
    ///
    /// Panics if `n_qubits == 0`.
    pub fn new(kind: AnsatzKind, n_qubits: usize, reps: usize, entanglement: Entanglement) -> Self {
        Self::with_preparation(kind, n_qubits, reps, entanglement, &[])
    }

    /// Like [`Ansatz::new`] but with X gates on `excitations` appended
    /// **after** the variational layers, so that the zero-parameter circuit
    /// prepares exactly the reference determinant (e.g. the Hartree-Fock
    /// state of a chemistry problem). Appending rather than prepending
    /// matters: at `theta = 0` the CX entanglers would otherwise cascade a
    /// prepended excitation across the register.
    ///
    /// # Panics
    ///
    /// Panics if `n_qubits == 0` or an excitation index is out of range.
    pub fn with_preparation(
        kind: AnsatzKind,
        n_qubits: usize,
        reps: usize,
        entanglement: Entanglement,
        excitations: &[usize],
    ) -> Self {
        assert!(n_qubits > 0, "ansatz needs at least one qubit");
        let mut circuit = Circuit::new(n_qubits);
        let rpq = kind.rotations_per_qubit();
        let mut param = 0usize;
        let rotation_layer = |c: &mut Circuit, param: &mut usize| {
            for q in 0..n_qubits {
                c.ry(Param::Free(*param), q);
                *param += 1;
                if rpq == 2 {
                    c.rz(Param::Free(*param), q);
                    *param += 1;
                }
            }
        };
        rotation_layer(&mut circuit, &mut param);
        for _ in 0..reps {
            for (a, b) in entanglement.pairs(n_qubits) {
                circuit.cx(a, b);
            }
            rotation_layer(&mut circuit, &mut param);
        }
        for &q in excitations {
            circuit.x(q);
        }
        Ansatz {
            kind,
            n_qubits,
            reps,
            entanglement,
            circuit,
        }
    }

    /// The ansatz family.
    pub fn kind(&self) -> AnsatzKind {
        self.kind
    }

    /// Circuit width.
    pub fn n_qubits(&self) -> usize {
        self.n_qubits
    }

    /// Number of entangling blocks.
    pub fn reps(&self) -> usize {
        self.reps
    }

    /// Number of free parameters.
    pub fn n_params(&self) -> usize {
        self.circuit.n_params()
    }

    /// The parameterized circuit (free parameters `0..n_params`).
    pub fn circuit(&self) -> &Circuit {
        &self.circuit
    }

    /// Binds a parameter vector into a concrete circuit.
    ///
    /// # Errors
    ///
    /// Propagates [`qismet_qsim::CircuitError::ParamCountMismatch`].
    pub fn bind(&self, params: &[f64]) -> Result<Circuit, qismet_qsim::CircuitError> {
        self.circuit.bind(params)
    }

    /// Deterministic small random initial parameters in `[-0.1, 0.1)`.
    pub fn initial_params(&self, seed: u64) -> Vec<f64> {
        use rand::Rng;
        let mut rng = qismet_mathkit::rng_from_seed(seed);
        (0..self.n_params())
            .map(|_| rng.gen::<f64>() * 0.2 - 0.1)
            .collect()
    }

    /// Deterministic uninformed initial parameters in `[-pi, pi)` — the
    /// cold start the paper's convergence curves exhibit (objective begins
    /// near zero and descends over >1000 iterations).
    pub fn initial_params_wide(&self, seed: u64) -> Vec<f64> {
        use rand::Rng;
        let mut rng = qismet_mathkit::rng_from_seed(seed);
        (0..self.n_params())
            .map(|_| (rng.gen::<f64>() * 2.0 - 1.0) * std::f64::consts::PI)
            .collect()
    }

    /// Lowers the ansatz once into a rebindable execution plan. Objective
    /// evaluators hold one [`CompiledAnsatz`] and rebind it per parameter
    /// point instead of binding a fresh [`Circuit`] per evaluation.
    pub fn compile(&self) -> CompiledAnsatz {
        CompiledAnsatz {
            plan: CompiledCircuit::compile(&self.circuit),
        }
    }
}

/// An [`Ansatz`] lowered into a [`CompiledCircuit`]: single-qubit runs
/// fused, entangler strides precomputed, and every free parameter a
/// rebindable slot. Evaluating a new parameter point costs a handful of
/// stack 2x2 recomputations — no circuit binding, no allocation.
#[derive(Debug, Clone)]
pub struct CompiledAnsatz {
    plan: CompiledCircuit,
}

impl CompiledAnsatz {
    /// Circuit width.
    pub fn n_qubits(&self) -> usize {
        self.plan.n_qubits()
    }

    /// Number of free parameters.
    pub fn n_params(&self) -> usize {
        self.plan.n_params()
    }

    /// The underlying execution plan.
    pub fn plan(&self) -> &CompiledCircuit {
        &self.plan
    }

    /// Mutable access for rebinding through a backend.
    pub fn plan_mut(&mut self) -> &mut CompiledCircuit {
        &mut self.plan
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qismet_qsim::StateVector;

    #[test]
    fn parameter_counts_match_qiskit_conventions() {
        // RealAmplitudes: (reps + 1) * n parameters.
        let ra = Ansatz::new(AnsatzKind::RealAmplitudes, 6, 4, Entanglement::Linear);
        assert_eq!(ra.n_params(), 30);
        // EfficientSU2: 2 * (reps + 1) * n parameters.
        let su2 = Ansatz::new(AnsatzKind::EfficientSu2, 6, 2, Entanglement::Linear);
        assert_eq!(su2.n_params(), 36);
    }

    #[test]
    fn cx_counts_per_entanglement() {
        let lin = Ansatz::new(AnsatzKind::RealAmplitudes, 6, 4, Entanglement::Linear);
        assert_eq!(lin.circuit().cx_count(), 4 * 5);
        let circ = Ansatz::new(AnsatzKind::RealAmplitudes, 6, 2, Entanglement::Circular);
        assert_eq!(circ.circuit().cx_count(), 2 * 6);
        let full = Ansatz::new(AnsatzKind::RealAmplitudes, 4, 1, Entanglement::Full);
        assert_eq!(full.circuit().cx_count(), 6);
    }

    #[test]
    fn depth_grows_with_reps() {
        let d2 = Ansatz::new(AnsatzKind::RealAmplitudes, 6, 2, Entanglement::Linear)
            .circuit()
            .depth();
        let d8 = Ansatz::new(AnsatzKind::RealAmplitudes, 6, 8, Entanglement::Linear)
            .circuit()
            .depth();
        assert!(d8 > d2 * 2);
    }

    #[test]
    fn zero_params_give_identity_action_on_zero_state() {
        // All RY(0)/RZ(0) are identity; CX on |0..0> is identity.
        let a = Ansatz::new(AnsatzKind::EfficientSu2, 4, 3, Entanglement::Linear);
        let bound = a.bind(&vec![0.0; a.n_params()]).unwrap();
        let sv = StateVector::from_circuit(&bound).unwrap();
        assert!((sv.probabilities()[0] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn real_amplitudes_states_are_real() {
        let a = Ansatz::new(AnsatzKind::RealAmplitudes, 3, 2, Entanglement::Linear);
        let params = a.initial_params(3);
        let bound = a.bind(&params).unwrap();
        let sv = StateVector::from_circuit(&bound).unwrap();
        for amp in sv.amplitudes() {
            assert!(amp.im.abs() < 1e-12, "imaginary amplitude {amp}");
        }
    }

    #[test]
    fn initial_params_deterministic_and_small() {
        let a = Ansatz::new(AnsatzKind::EfficientSu2, 6, 2, Entanglement::Linear);
        let p1 = a.initial_params(42);
        let p2 = a.initial_params(42);
        assert_eq!(p1, p2);
        assert!(p1.iter().all(|v| v.abs() <= 0.1));
        assert_ne!(p1, a.initial_params(43));
    }

    #[test]
    fn bind_rejects_short_vectors() {
        let a = Ansatz::new(AnsatzKind::RealAmplitudes, 4, 1, Entanglement::Linear);
        assert!(a.bind(&[0.0; 3]).is_err());
    }

    #[test]
    fn labels() {
        assert_eq!(AnsatzKind::EfficientSu2.label(), "SU2");
        assert_eq!(AnsatzKind::RealAmplitudes.label(), "RA");
    }
}

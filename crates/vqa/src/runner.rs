//! The VQA tuning loop (baseline and blocking schemes).
//!
//! Execution model: **every objective evaluation is its own quantum job**
//! (its own transient-trace slot), reflecting how a traditional VQA stack
//! submits work — each energy estimation goes to the device as a separate
//! submission, so the evaluations inside one gradient estimate can land in
//! *different* noise environments. This is precisely the assumption the
//! paper says breaks ("the VQA tuner works under the underlying assumption
//! that the noise landscape of the device is unchanged during this gradient
//! estimation process... This is often not the case", Section 1).
//!
//! QISMET's loop (in the `qismet` core crate) instead co-schedules each
//! iteration's circuits into a single job (paper Fig. 7) — which is what
//! makes its rerun-based transient estimate meaningful.

use crate::job::JobRequest;
use crate::objective::{execute_lockstep, NoisyObjective};
use qismet_optim::{BlockingPolicy, Proposer};

/// How candidate parameters are admitted each iteration.
#[derive(Debug, Clone)]
pub enum TuningScheme {
    /// Always accept the optimizer's candidate (paper "Baseline").
    Baseline,
    /// Accept only non-worsening candidates (paper "Blocking").
    Blocking(BlockingPolicy),
}

/// Complete record of one tuning run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunRecord {
    /// Machine-measured energy of the tracked parameters per iteration
    /// (what the paper's convergence plots show).
    pub measured: Vec<f64>,
    /// Transient-free exact energy of the tracked parameters per iteration
    /// (analysis only; unavailable on hardware).
    pub exact: Vec<f64>,
    /// Final parameter vector.
    pub final_params: Vec<f64>,
    /// Quantum jobs consumed.
    pub jobs: usize,
    /// Total objective evaluations (circuit executions).
    pub evals: u64,
    /// Candidates accepted.
    pub accepted: usize,
    /// Candidates rejected (blocking only).
    pub rejected: usize,
}

impl RunRecord {
    /// Mean measured energy over the trailing `window` iterations — the
    /// "end expectation value" the paper quotes.
    ///
    /// # Panics
    ///
    /// Panics if the record is empty or window is zero.
    pub fn final_energy(&self, window: usize) -> f64 {
        assert!(window > 0 && !self.measured.is_empty());
        let n = self.measured.len();
        let start = n.saturating_sub(window);
        qismet_mathkit::mean(&self.measured[start..])
    }

    /// Mean exact (transient-free) energy over the trailing `window`
    /// iterations.
    ///
    /// # Panics
    ///
    /// Panics if the record is empty or window is zero.
    pub fn final_exact_energy(&self, window: usize) -> f64 {
        assert!(window > 0 && !self.exact.is_empty());
        let n = self.exact.len();
        let start = n.saturating_sub(window);
        qismet_mathkit::mean(&self.exact[start..])
    }
}

/// Runs `iterations` of VQA tuning under the given scheme.
///
/// # Panics
///
/// Panics if the transient trace inside `objective` is too short (allocate
/// at least `iterations + 1` job slots; QISMET-style retries need more).
pub fn run_tuning(
    proposer: &mut dyn Proposer,
    objective: &mut NoisyObjective,
    theta0: Vec<f64>,
    iterations: usize,
    scheme: TuningScheme,
) -> RunRecord {
    let mut theta = theta0;
    let mut measured = Vec::with_capacity(iterations);
    let mut exact = Vec::with_capacity(iterations);
    let mut accepted = 0usize;
    let mut rejected = 0usize;
    let mut blocking = match scheme {
        TuningScheme::Baseline => None,
        TuningScheme::Blocking(p) => Some(p),
    };
    // Blocking compares candidates against the last accepted measurement.
    let mut incumbent_energy = objective.measure(&theta);
    objective.advance_job();

    for _ in 0..iterations {
        // One job per evaluation: the optimizer's evaluations land in
        // consecutive (independent) noise environments. When the optimizer
        // can name its query points up front, the whole gradient estimate
        // goes to the execution backend as one batch; the callback path is
        // the fallback for optimizers with value-dependent queries.
        let proposal = match proposer.eval_points(&theta) {
            Some(points) => {
                let request = JobRequest::job_per_eval(points);
                let result = objective
                    .execute(&request)
                    .unwrap_or_else(|e| panic!("{e}"));
                proposer.propose_from(&theta, result.values())
            }
            None => {
                let obj = &mut *objective;
                proposer.propose(&theta, &mut |p: &[f64]| {
                    let e = obj.measure(p);
                    obj.advance_job();
                    e
                })
            }
        };
        let candidate_energy = objective.measure(&proposal.candidate);
        objective.advance_job();
        let accept = match blocking.as_mut() {
            None => true,
            Some(policy) => policy.accepts(incumbent_energy, candidate_energy),
        };
        if accept {
            theta = proposal.candidate;
            incumbent_energy = candidate_energy;
            accepted += 1;
            measured.push(candidate_energy);
        } else {
            rejected += 1;
            // Record a *fresh* measurement of the retained parameters, not
            // the stale accepted value — otherwise the series acquires a
            // min-of-noise selection bias no hardware run would show.
            let fresh = objective.measure(&theta);
            objective.advance_job();
            measured.push(fresh);
        }
        exact.push(objective.eval_exact(&theta));
        proposer.advance();
    }

    RunRecord {
        measured,
        exact,
        final_params: theta,
        jobs: objective.job(),
        evals: objective.evals(),
        accepted,
        rejected,
    }
}

/// One independent trajectory of a lockstep tuning group: its own
/// optimizer, its own noisy objective (seed, trace, job counter), and its
/// own starting parameters. All lanes of a group must share one
/// ansatz/Hamiltonian structure.
pub struct TuningLane<'a> {
    /// The lane's optimizer state.
    pub proposer: &'a mut dyn Proposer,
    /// The lane's noisy objective (independent seed and transient trace).
    pub objective: &'a mut NoisyObjective,
    /// The lane's starting parameters.
    pub theta0: Vec<f64>,
}

/// Runs `iterations` of VQA tuning for B independent same-structure
/// trajectories in **lockstep**: the per-lane control flow is exactly
/// [`run_tuning`]'s, but every evaluation site — the initial incumbent
/// measurement, each iteration's gradient batch, the candidate
/// measurement, rejected lanes' fresh re-measurements, and the exact
/// analysis series — executes all lanes as one cross-lane batched backend
/// call, which the lane-batched statevector engine evaluates in one SoA
/// state.
///
/// Each lane's [`RunRecord`] is **bitwise identical** to running that lane
/// alone through [`run_tuning`]: per-lane RNG, job, and optimizer state
/// are self-contained, ideal evaluations are RNG-free, and the backend
/// batch contract makes values independent of the grouping. Lanes whose
/// optimizer cannot name its query points up front
/// (`eval_points() == None`) fall back to their own sequential callback
/// path for that iteration, still bitwise identical.
///
/// # Panics
///
/// Panics if the lanes disagree on parameter count, or if any lane's
/// transient trace is too short (same headroom rule as [`run_tuning`]).
pub fn run_tuning_lockstep(
    lanes: &mut [TuningLane<'_>],
    iterations: usize,
    scheme: TuningScheme,
) -> Vec<RunRecord> {
    let b = lanes.len();
    if b == 0 {
        return Vec::new();
    }
    let n_params = lanes[0].theta0.len();
    for lane in lanes.iter() {
        assert_eq!(lane.theta0.len(), n_params, "lane parameter count");
    }
    let mut theta: Vec<Vec<f64>> = lanes.iter().map(|l| l.theta0.clone()).collect();
    let mut measured: Vec<Vec<f64>> = vec![Vec::with_capacity(iterations); b];
    let mut exact: Vec<Vec<f64>> = vec![Vec::with_capacity(iterations); b];
    let mut accepted = vec![0usize; b];
    let mut rejected = vec![0usize; b];
    let mut blocking: Vec<Option<BlockingPolicy>> = (0..b)
        .map(|_| match &scheme {
            TuningScheme::Baseline => None,
            TuningScheme::Blocking(p) => Some(p.clone()),
        })
        .collect();

    // Cross-lane batched single-point measurement at each lane's current
    // job (the lockstep twin of per-lane `measure` + `advance_job`).
    fn measure_all(lanes: &mut [TuningLane<'_>], points: &[Vec<f64>]) -> Vec<f64> {
        let reqs: Vec<JobRequest> = points
            .iter()
            .map(|p| JobRequest::shared_job(vec![p.clone()]))
            .collect();
        let mut objs: Vec<&mut NoisyObjective> =
            lanes.iter_mut().map(|l| &mut *l.objective).collect();
        let results = execute_lockstep(&mut objs, &reqs).unwrap_or_else(|e| panic!("{e}"));
        for lane in lanes.iter_mut() {
            lane.objective.advance_job();
        }
        results.into_iter().map(|r| r.values()[0]).collect()
    }

    let mut incumbent = measure_all(lanes, &theta);

    for _ in 0..iterations {
        // Gradient estimates: lanes whose optimizer names its points up
        // front share one cross-lane job-per-eval batch; the rest take
        // their own callback path (independent RNG streams, so order
        // across lanes cannot change any lane's bits).
        let points_per_lane: Vec<Option<Vec<Vec<f64>>>> = lanes
            .iter_mut()
            .zip(&theta)
            .map(|(lane, th)| lane.proposer.eval_points(th))
            .collect();
        let batched_lanes: Vec<usize> = (0..b).filter(|&l| points_per_lane[l].is_some()).collect();
        let mut proposals: Vec<Option<qismet_optim::Proposal>> = (0..b).map(|_| None).collect();
        if !batched_lanes.is_empty() {
            let reqs: Vec<JobRequest> = batched_lanes
                .iter()
                .map(|&l| {
                    JobRequest::job_per_eval(points_per_lane[l].clone().expect("filtered Some"))
                })
                .collect();
            let mut objs: Vec<&mut NoisyObjective> = Vec::with_capacity(batched_lanes.len());
            let mut rest: &mut [TuningLane<'_>] = lanes;
            let mut prev = 0usize;
            for &l in &batched_lanes {
                let (skip, tail) = rest.split_at_mut(l - prev);
                let (head, tail) = tail.split_first_mut().expect("lane index in range");
                let _ = skip;
                objs.push(&mut *head.objective);
                rest = tail;
                prev = l + 1;
            }
            let results = execute_lockstep(&mut objs, &reqs).unwrap_or_else(|e| panic!("{e}"));
            for (&l, result) in batched_lanes.iter().zip(results) {
                proposals[l] = Some(lanes[l].proposer.propose_from(&theta[l], result.values()));
            }
        }
        for l in 0..b {
            if proposals[l].is_none() {
                let lane = &mut lanes[l];
                let obj = &mut *lane.objective;
                proposals[l] = Some(lane.proposer.propose(&theta[l], &mut |p: &[f64]| {
                    let e = obj.measure(p);
                    obj.advance_job();
                    e
                }));
            }
        }
        let proposals: Vec<qismet_optim::Proposal> = proposals
            .into_iter()
            .map(|p| p.expect("every lane proposed"))
            .collect();

        // Candidate measurements, one cross-lane batch.
        let candidates: Vec<Vec<f64>> = proposals.iter().map(|p| p.candidate.clone()).collect();
        let candidate_energy = measure_all(lanes, &candidates);

        // Accept/reject per lane, then re-measure every rejected lane's
        // retained parameters as one cross-lane batch.
        let mut fresh_lanes: Vec<usize> = Vec::new();
        for l in 0..b {
            let accept = match blocking[l].as_mut() {
                None => true,
                Some(policy) => policy.accepts(incumbent[l], candidate_energy[l]),
            };
            if accept {
                theta[l] = proposals[l].candidate.clone();
                incumbent[l] = candidate_energy[l];
                accepted[l] += 1;
                measured[l].push(candidate_energy[l]);
            } else {
                rejected[l] += 1;
                fresh_lanes.push(l);
            }
        }
        if !fresh_lanes.is_empty() {
            let retained: Vec<Vec<f64>> = fresh_lanes.iter().map(|&l| theta[l].clone()).collect();
            let reqs: Vec<JobRequest> = retained
                .iter()
                .map(|p| JobRequest::shared_job(vec![p.clone()]))
                .collect();
            let mut objs: Vec<&mut NoisyObjective> = Vec::with_capacity(fresh_lanes.len());
            let mut rest: &mut [TuningLane<'_>] = lanes;
            let mut prev = 0usize;
            for &l in &fresh_lanes {
                let (_, tail) = rest.split_at_mut(l - prev);
                let (head, tail) = tail.split_first_mut().expect("lane index in range");
                objs.push(&mut *head.objective);
                rest = tail;
                prev = l + 1;
            }
            let results = execute_lockstep(&mut objs, &reqs).unwrap_or_else(|e| panic!("{e}"));
            for (&l, result) in fresh_lanes.iter().zip(results) {
                lanes[l].objective.advance_job();
                measured[l].push(result.values()[0]);
            }
        }

        // Exact analysis series: RNG-free, so one cross-lane batch through
        // lane 0's exact evaluator is bitwise identical to per-lane calls.
        let exact_vals = lanes[0].objective.exact().eval_batch(&theta);
        for l in 0..b {
            exact[l].push(exact_vals[l]);
            lanes[l].proposer.advance();
        }
    }

    (0..b)
        .map(|l| RunRecord {
            measured: std::mem::take(&mut measured[l]),
            exact: std::mem::take(&mut exact[l]),
            final_params: std::mem::take(&mut theta[l]),
            jobs: lanes[l].objective.job(),
            evals: lanes[l].objective.evals(),
            accepted: accepted[l],
            rejected: rejected[l],
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ansatz::{Ansatz, AnsatzKind, Entanglement};
    use crate::objective::NoisyObjectiveConfig;
    use crate::tfim::Tfim;
    use qismet_mathkit::rng_from_seed;
    use qismet_optim::{GainSchedule, Spsa};
    use qismet_qnoise::{StaticNoiseModel, TransientModel, TransientTrace};

    fn objective_with(trace: TransientTrace, seed: u64) -> (NoisyObjective, f64) {
        let tfim = Tfim::paper_6q();
        let gs = tfim.exact_ground_energy().unwrap();
        let ansatz = Ansatz::new(AnsatzKind::RealAmplitudes, 6, 2, Entanglement::Linear);
        let cfg = NoisyObjectiveConfig {
            static_model: StaticNoiseModel::uniform(6, 120.0, 100.0, 2e-4, 5e-3, 0.02),
            trace,
            magnitude_ref: gs.abs(),
            shot_sigma: 0.03,
            within_job_spread: 0.25,
            seed,
        };
        (NoisyObjective::new(ansatz, tfim.hamiltonian(), cfg), gs)
    }

    #[test]
    fn baseline_converges_without_transients() {
        let (mut obj, gs) = objective_with(TransientTrace::zeros(1400), 1);
        let theta0 = obj.exact().ansatz().initial_params(2);
        let mut spsa = Spsa::new(theta0.len(), GainSchedule::spall_default(), 3);
        let rec = run_tuning(&mut spsa, &mut obj, theta0, 400, TuningScheme::Baseline);
        assert_eq!(rec.measured.len(), 400);
        // The exact energy of the final parameters should be well below the
        // starting point and a decent fraction of the ground energy.
        let start = rec.exact[0];
        let end = rec.final_exact_energy(20);
        assert!(end < start, "no descent: start {start}, end {end}");
        assert!(end < -(0.55 * gs.abs()), "end {end} vs ground {gs}");
        assert_eq!(rec.accepted, 400);
        assert_eq!(rec.rejected, 0);
    }

    #[test]
    fn transients_hurt_baseline_convergence() {
        let quiet = TransientTrace::zeros(2400);
        let noisy = TransientModel::severe(0.35).generate(&mut rng_from_seed(11), 2400);
        let run = |trace: TransientTrace| {
            let (mut obj, _) = objective_with(trace, 5);
            let theta0 = obj.exact().ansatz().initial_params(2);
            let mut spsa = Spsa::new(theta0.len(), GainSchedule::spall_default(), 3);
            run_tuning(&mut spsa, &mut obj, theta0, 700, TuningScheme::Baseline)
        };
        let quiet_rec = run(quiet);
        let noisy_rec = run(noisy);
        // The measured series under transients shows spikes: its worst
        // (max) late-phase value sits above the quiet one.
        let quiet_late = qismet_mathkit::max(&quiet_rec.measured[350..]);
        let noisy_late = qismet_mathkit::max(&noisy_rec.measured[350..]);
        assert!(
            noisy_late > quiet_late + 0.3,
            "transient spikes missing: {noisy_late} vs {quiet_late}"
        );
    }

    #[test]
    fn blocking_rejects_some_candidates() {
        let noisy = TransientModel::moderate(0.3).generate(&mut rng_from_seed(13), 1800);
        let (mut obj, _) = objective_with(noisy, 6);
        let theta0 = obj.exact().ansatz().initial_params(2);
        let mut spsa = Spsa::new(theta0.len(), GainSchedule::spall_default(), 3);
        let rec = run_tuning(
            &mut spsa,
            &mut obj,
            theta0,
            400,
            TuningScheme::Blocking(BlockingPolicy::adaptive(0.05)),
        );
        assert!(rec.rejected > 0, "blocking never rejected");
        assert_eq!(rec.accepted + rec.rejected, 400);
    }

    #[test]
    fn one_job_per_evaluation_for_baseline() {
        let (mut obj, _) = objective_with(TransientTrace::zeros(400), 7);
        let theta0 = obj.exact().ansatz().initial_params(2);
        let mut spsa = Spsa::new(theta0.len(), GainSchedule::spall_default(), 3);
        let rec = run_tuning(&mut spsa, &mut obj, theta0, 50, TuningScheme::Baseline);
        // Baseline evals: 1 initial + (2 gradient + 1 candidate) per iter,
        // and every evaluation is its own quantum job (separate submission).
        assert_eq!(rec.evals, 1 + 3 * 50);
        assert_eq!(rec.jobs, 1 + 3 * 50);
    }

    /// Forwards a proposer while hiding `eval_points`, forcing the runner
    /// onto the legacy one-measure-per-callback path.
    struct Unbatched<P: Proposer>(P);

    impl<P: Proposer> Proposer for Unbatched<P> {
        fn propose(
            &mut self,
            theta: &[f64],
            objective: &mut dyn FnMut(&[f64]) -> f64,
        ) -> qismet_optim::Proposal {
            self.0.propose(theta, objective)
        }
        fn advance(&mut self) {
            self.0.advance()
        }
        fn iteration(&self) -> usize {
            self.0.iteration()
        }
        fn evals_per_proposal(&self) -> usize {
            self.0.evals_per_proposal()
        }
        fn name(&self) -> &'static str {
            "unbatched"
        }
    }

    #[test]
    fn batched_and_callback_paths_produce_identical_records() {
        // The acceptance bar for the Backend refactor: same seeds => the
        // measured series (and everything else in the record) must match
        // bit-for-bit whether the iteration goes through one batched
        // JobRequest or through per-call evaluation.
        let trace = TransientModel::moderate(0.25).generate(&mut rng_from_seed(41), 1200);
        let run = |batched: bool| {
            let (mut obj, _) = objective_with(trace.clone(), 9);
            let theta0 = obj.exact().ansatz().initial_params(2);
            let mut spsa = Spsa::new(theta0.len(), GainSchedule::spall_default(), 3);
            if batched {
                run_tuning(&mut spsa, &mut obj, theta0, 120, TuningScheme::Baseline)
            } else {
                let mut hidden = Unbatched(spsa);
                run_tuning(&mut hidden, &mut obj, theta0, 120, TuningScheme::Baseline)
            }
        };
        let via_batch = run(true);
        let via_callback = run(false);
        assert_eq!(via_batch, via_callback);
        for (a, b) in via_batch.measured.iter().zip(&via_callback.measured) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn lockstep_lanes_match_sequential_runs_bitwise() {
        // The acceptance bar for the lane-batched trials seam: running B
        // independent trajectories in lockstep (every evaluation site a
        // cross-lane batch through the SoA engine) must reproduce each
        // lane's sequential record bit-for-bit — including a lane whose
        // optimizer hides its eval points and takes the callback path.
        for scheme in [
            TuningScheme::Baseline,
            TuningScheme::Blocking(BlockingPolicy::adaptive(0.05)),
        ] {
            let seeds = [9u64, 23, 57];
            let traces: Vec<TransientTrace> = seeds
                .iter()
                .map(|&s| TransientModel::moderate(0.3).generate(&mut rng_from_seed(s ^ 7), 600))
                .collect();
            let sequential: Vec<RunRecord> = seeds
                .iter()
                .zip(&traces)
                .enumerate()
                .map(|(i, (&s, trace))| {
                    let (mut obj, _) = objective_with(trace.clone(), s);
                    let theta0 = obj.exact().ansatz().initial_params(2);
                    let mut spsa = Spsa::new(theta0.len(), GainSchedule::spall_default(), s + 1);
                    if i == 2 {
                        let mut hidden = Unbatched(spsa);
                        run_tuning(&mut hidden, &mut obj, theta0, 60, scheme.clone())
                    } else {
                        run_tuning(&mut spsa, &mut obj, theta0, 60, scheme.clone())
                    }
                })
                .collect();

            let mut objs: Vec<NoisyObjective> = seeds
                .iter()
                .zip(&traces)
                .map(|(&s, trace)| objective_with(trace.clone(), s).0)
                .collect();
            let theta0 = objs[0].exact().ansatz().initial_params(2);
            let mut spsa0 = Spsa::new(theta0.len(), GainSchedule::spall_default(), seeds[0] + 1);
            let mut spsa1 = Spsa::new(theta0.len(), GainSchedule::spall_default(), seeds[1] + 1);
            let mut hidden2 = Unbatched(Spsa::new(
                theta0.len(),
                GainSchedule::spall_default(),
                seeds[2] + 1,
            ));
            let mut it = objs.iter_mut();
            let (o0, o1, o2) = (it.next().unwrap(), it.next().unwrap(), it.next().unwrap());
            let mut lanes = vec![
                TuningLane {
                    proposer: &mut spsa0,
                    objective: o0,
                    theta0: theta0.clone(),
                },
                TuningLane {
                    proposer: &mut spsa1,
                    objective: o1,
                    theta0: theta0.clone(),
                },
                TuningLane {
                    proposer: &mut hidden2,
                    objective: o2,
                    theta0: theta0.clone(),
                },
            ];
            let lockstep = run_tuning_lockstep(&mut lanes, 60, scheme);
            assert_eq!(lockstep.len(), sequential.len());
            for (l, (a, b)) in lockstep.iter().zip(&sequential).enumerate() {
                assert_eq!(a, b, "lane {l} record");
                for (x, y) in a.measured.iter().zip(&b.measured) {
                    assert_eq!(x.to_bits(), y.to_bits(), "lane {l} measured");
                }
                for (x, y) in a.exact.iter().zip(&b.exact) {
                    assert_eq!(x.to_bits(), y.to_bits(), "lane {l} exact");
                }
                for (x, y) in a.final_params.iter().zip(&b.final_params) {
                    assert_eq!(x.to_bits(), y.to_bits(), "lane {l} params");
                }
            }
        }
    }

    #[test]
    fn final_energy_window() {
        let rec = RunRecord {
            measured: vec![0.0, -1.0, -2.0, -3.0],
            exact: vec![0.0; 4],
            final_params: vec![],
            jobs: 4,
            evals: 0,
            accepted: 4,
            rejected: 0,
        };
        assert_eq!(rec.final_energy(2), -2.5);
        assert_eq!(rec.final_energy(100), -1.5);
    }
}

//! The one-dimensional Transverse Field Ising Model (TFIM).
//!
//! The paper's primary VQE target (Section 6.1): "an ubiquitous model that
//! has applications in understanding phase transitions in magnetic
//! materials. The TFIM is a desirable system since it is exactly solvable
//! via classical means."
//!
//! `H = -J sum_i Z_i Z_{i+1} - h sum_i X_i` over an open or periodic chain.

use qismet_qsim::{Pauli, PauliString, PauliSum};

/// Chain boundary conditions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Boundary {
    /// Open chain: `n - 1` coupling terms.
    Open,
    /// Periodic chain: `n` coupling terms (wraps around).
    Periodic,
}

/// TFIM specification.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Tfim {
    /// Number of spins.
    pub n: usize,
    /// Ising coupling strength.
    pub j: f64,
    /// Transverse field strength.
    pub h: f64,
    /// Boundary conditions.
    pub boundary: Boundary,
}

impl Tfim {
    /// The paper-scale instance: 6 spins at the critical point `J = h = 1`,
    /// open boundary.
    pub fn paper_6q() -> Self {
        Tfim {
            n: 6,
            j: 1.0,
            h: 1.0,
            boundary: Boundary::Open,
        }
    }

    /// Builds the Pauli-sum Hamiltonian.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`.
    pub fn hamiltonian(&self) -> PauliSum {
        assert!(self.n >= 2, "TFIM needs at least two spins");
        let mut sum = PauliSum::zero(self.n);
        let couplings = match self.boundary {
            Boundary::Open => self.n - 1,
            Boundary::Periodic => self.n,
        };
        for i in 0..couplings {
            let a = i;
            let b = (i + 1) % self.n;
            let mut paulis = vec![Pauli::I; self.n];
            paulis[a] = Pauli::Z;
            paulis[b] = Pauli::Z;
            sum.add_term(-self.j, PauliString::new(paulis));
        }
        for i in 0..self.n {
            sum.add_term(-self.h, PauliString::single(self.n, i, Pauli::X));
        }
        sum
    }

    /// Exact ground energy by dense diagonalization (fine for `n <= 10`).
    ///
    /// # Errors
    ///
    /// Propagates eigensolver failures.
    pub fn exact_ground_energy(&self) -> Result<f64, qismet_mathkit::EigError> {
        self.hamiltonian().ground_energy()
    }

    /// Analytic ground energy of the **periodic** chain via the
    /// free-fermion (Jordan-Wigner) solution:
    /// `E = -sum_k eps(k)` over the fermion modes with
    /// `eps(k) = 2 sqrt(J^2 + h^2 - 2 J h cos k)`.
    ///
    /// Exact in the thermodynamic limit and for finite even chains in the
    /// dominant (odd-parity-free) sector; used as a cross-check of the dense
    /// solver at small `n` (agreement to finite-size corrections) and as the
    /// scalable reference at large `n`.
    ///
    /// # Panics
    ///
    /// Panics if called on an open-boundary instance.
    pub fn free_fermion_energy(&self) -> f64 {
        assert_eq!(
            self.boundary,
            Boundary::Periodic,
            "free-fermion formula applies to the periodic chain"
        );
        // Anti-periodic (Neveu-Schwarz) momenta for the even-parity sector:
        // k = pi (2m + 1) / n, m = 0..n-1.
        let n = self.n as f64;
        let mut e = 0.0;
        for m in 0..self.n {
            let k = std::f64::consts::PI * (2.0 * m as f64 + 1.0) / n;
            let eps =
                2.0 * (self.j * self.j + self.h * self.h - 2.0 * self.j * self.h * k.cos()).sqrt();
            e -= eps / 2.0;
        }
        e
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn term_counts() {
        let open = Tfim {
            n: 6,
            j: 1.0,
            h: 0.5,
            boundary: Boundary::Open,
        };
        assert_eq!(open.hamiltonian().terms().len(), 5 + 6);
        let periodic = Tfim {
            boundary: Boundary::Periodic,
            ..open
        };
        assert_eq!(periodic.hamiltonian().terms().len(), 6 + 6);
    }

    #[test]
    fn two_site_exact_energy() {
        // H = -J Z0 Z1 - h (X0 + X1): ground energy -sqrt(J^2 + ...) known:
        // eigenvalues of the 4x4 are -+ sqrt(J^2 + 4h^2) and -+ J... ground
        // = -sqrt(J^2 + 4 h^2).
        let t = Tfim {
            n: 2,
            j: 1.0,
            h: 0.5,
            boundary: Boundary::Open,
        };
        let e = t.exact_ground_energy().unwrap();
        assert!((e + (1.0f64 + 4.0 * 0.25).sqrt()).abs() < 1e-9, "E = {e}");
    }

    #[test]
    fn paper_instance_ground_energy() {
        // 6-qubit critical open TFIM: ground energy approximately -7.2958
        // (cross-checked against dense diagonalization).
        let t = Tfim::paper_6q();
        let e = t.exact_ground_energy().unwrap();
        assert!(e < -7.0 && e > -7.6, "E = {e}");
        // The Hamiltonian norm bounds it.
        assert!(e.abs() <= t.hamiltonian().one_norm());
    }

    #[test]
    fn free_fermion_matches_dense_for_periodic_chain() {
        for (n, j, h) in [(4, 1.0, 1.0), (6, 1.0, 0.5), (8, 0.7, 1.3)] {
            let t = Tfim {
                n,
                j,
                h,
                boundary: Boundary::Periodic,
            };
            let dense = t.exact_ground_energy().unwrap();
            let analytic = t.free_fermion_energy();
            assert!(
                (dense - analytic).abs() < 1e-8,
                "n={n} J={j} h={h}: dense {dense} vs analytic {analytic}"
            );
        }
    }

    #[test]
    fn field_dominated_limit() {
        // h >> J: ground state ~ |+...+> with E ~ -n h.
        let t = Tfim {
            n: 4,
            j: 0.01,
            h: 2.0,
            boundary: Boundary::Open,
        };
        let e = t.exact_ground_energy().unwrap();
        assert!((e + 8.0).abs() < 0.05, "E = {e}");
    }

    #[test]
    fn coupling_dominated_limit() {
        // J >> h: ground state ~ ferromagnet with E ~ -(n-1) J.
        let t = Tfim {
            n: 4,
            j: 2.0,
            h: 0.01,
            boundary: Boundary::Open,
        };
        let e = t.exact_ground_energy().unwrap();
        assert!((e + 6.0).abs() < 0.05, "E = {e}");
    }

    #[test]
    fn measurement_groups_are_two() {
        // All ZZ terms share the Z basis; all X terms share the X basis.
        let h = Tfim::paper_6q().hamiltonian();
        assert_eq!(h.measurement_groups().len(), 2);
    }

    #[test]
    #[should_panic(expected = "at least two spins")]
    fn tiny_chain_rejected() {
        let t = Tfim {
            n: 1,
            j: 1.0,
            h: 1.0,
            boundary: Boundary::Open,
        };
        let _ = t.hamiltonian();
    }
}

//! Batched job assembly for the execution layer.
//!
//! The paper's Fig. 7 structures each QISMET iteration as **one quantum
//! job**: the optimizer's evaluations, a rerun of the previous iteration's
//! circuit, and the candidate evaluation all execute under the same noise
//! environment. [`JobRequest`] is that structure made explicit: the runner
//! assembles every parameter point an iteration needs, and
//! `NoisyObjective::execute` hands the whole batch to the circuit
//! [`qismet_qsim::Backend`] in a single `evaluate_batch` call.
//!
//! Two layouts cover both execution models in the workspace:
//!
//! * [`JobLayout::SharedJob`] — all points share the current quantum job
//!   (QISMET's co-scheduled iteration; the caller advances the job once).
//! * [`JobLayout::JobPerEval`] — every point is its own quantum job (the
//!   traditional VQA stack, where each energy estimation is a separate
//!   submission landing in an independent noise environment).

/// How a batch of evaluations maps onto quantum jobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobLayout {
    /// All evaluations share the objective's current job (and its transient
    /// slot); the caller advances the job counter afterwards.
    SharedJob,
    /// Each evaluation consumes its own job: the objective advances the job
    /// counter after every point.
    JobPerEval,
}

/// One iteration's worth of objective evaluations, assembled before
/// execution so the backend sees them as a single batch.
///
/// # Examples
///
/// ```
/// use qismet_vqa::{JobLayout, JobRequest};
///
/// let req = JobRequest::shared_job(vec![vec![0.1, 0.2], vec![0.3, 0.4]])
///     .with_rerun(vec![0.0, 0.0]);
/// assert_eq!(req.len(), 3);
/// assert_eq!(req.layout(), JobLayout::SharedJob);
/// assert_eq!(req.rerun_index(), Some(2));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct JobRequest {
    points: Vec<Vec<f64>>,
    rerun: Option<usize>,
    layout: JobLayout,
}

impl JobRequest {
    /// A batch whose evaluations all share the current quantum job
    /// (QISMET's Fig. 7 co-scheduling).
    pub fn shared_job(points: Vec<Vec<f64>>) -> Self {
        JobRequest {
            points,
            rerun: None,
            layout: JobLayout::SharedJob,
        }
    }

    /// A batch where every evaluation is its own quantum job (the
    /// traditional VQA submission model).
    pub fn job_per_eval(points: Vec<Vec<f64>>) -> Self {
        JobRequest {
            points,
            rerun: None,
            layout: JobLayout::JobPerEval,
        }
    }

    /// Appends the previous iteration's parameters as the trailing
    /// **rerun** circuit (the transient reference of Fig. 8).
    pub fn with_rerun(mut self, params: Vec<f64>) -> Self {
        self.rerun = Some(self.points.len());
        self.points.push(params);
        self
    }

    /// The parameter points, in submission order (rerun last, if present).
    pub fn points(&self) -> &[Vec<f64>] {
        &self.points
    }

    /// The batch layout.
    pub fn layout(&self) -> JobLayout {
        self.layout
    }

    /// Index of the rerun point, when one was attached.
    pub fn rerun_index(&self) -> Option<usize> {
        self.rerun
    }

    /// Total points in the batch.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// `true` when the batch holds no points.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }
}

/// The measured values for one executed [`JobRequest`], in point order.
#[derive(Debug, Clone, PartialEq)]
pub struct JobResult {
    values: Vec<f64>,
    rerun: Option<usize>,
}

impl JobResult {
    pub(crate) fn new(values: Vec<f64>, rerun: Option<usize>) -> Self {
        JobResult { values, rerun }
    }

    /// Every measured value, in submission order.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// The optimizer-evaluation values (everything before the rerun).
    pub fn eval_values(&self) -> &[f64] {
        match self.rerun {
            Some(idx) => &self.values[..idx],
            None => &self.values,
        }
    }

    /// The rerun circuit's measured value, when one was requested.
    pub fn rerun_value(&self) -> Option<f64> {
        self.rerun.map(|idx| self.values[idx])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rerun_is_appended_last() {
        let req = JobRequest::shared_job(vec![vec![1.0], vec![2.0]]).with_rerun(vec![9.0]);
        assert_eq!(req.len(), 3);
        assert_eq!(req.points()[2], vec![9.0]);
        assert_eq!(req.rerun_index(), Some(2));
        assert!(!req.is_empty());
    }

    #[test]
    fn result_splits_evals_and_rerun() {
        let res = JobResult::new(vec![0.1, 0.2, 0.9], Some(2));
        assert_eq!(res.eval_values(), &[0.1, 0.2]);
        assert_eq!(res.rerun_value(), Some(0.9));
        assert_eq!(res.values().len(), 3);
    }

    #[test]
    fn result_without_rerun() {
        let res = JobResult::new(vec![0.1, 0.2], None);
        assert_eq!(res.eval_values(), &[0.1, 0.2]);
        assert_eq!(res.rerun_value(), None);
    }

    #[test]
    fn layouts_are_preserved() {
        assert_eq!(
            JobRequest::job_per_eval(vec![]).layout(),
            JobLayout::JobPerEval
        );
        assert_eq!(
            JobRequest::shared_job(vec![]).layout(),
            JobLayout::SharedJob
        );
        assert!(JobRequest::shared_job(vec![]).is_empty());
    }
}

//! The paper's Table 1 application registry.
//!
//! Six 6-qubit TFIM VQE applications differing in ansatz family, block
//! repetitions, and the machine whose transient trace drives the simulation:
//!
//! | App  | Qubits | Ansatz | Reps | Machine + trial |
//! |------|--------|--------|------|-----------------|
//! | App1 | 6      | SU2    | 2    | Toronto (v1)    |
//! | App2 | 6      | RA     | 4    | Guadalupe (v1)  |
//! | App3 | 6      | RA     | 4    | Guadalupe (v2)  |
//! | App4 | 6      | SU2    | 4    | Toronto (v2)    |
//! | App5 | 6      | RA     | 8    | Cairo (v1)      |
//! | App6 | 6      | RA     | 8    | Casablanca (v1) |

use crate::ansatz::{Ansatz, AnsatzKind, Entanglement};
use crate::objective::{NoisyObjective, NoisyObjectiveConfig};
use crate::tfim::Tfim;
use qismet_mathkit::derive_seed;
use qismet_qnoise::Machine;
use qismet_qsim::{Backend, CachedStatevectorBackend};

/// One row of Table 1.
#[derive(Debug, Clone, PartialEq)]
pub struct AppSpec {
    /// Application index (1-6).
    pub id: u8,
    /// Qubit count (6 for all paper apps).
    pub n_qubits: usize,
    /// Ansatz family.
    pub ansatz: AnsatzKind,
    /// Entangling block repetitions.
    pub reps: usize,
    /// Machine whose traces drive the noise.
    pub machine: Machine,
    /// Trace trial index (the paper's "(v1)" / "(v2)").
    pub trial: u32,
}

impl AppSpec {
    /// The six simulation applications of Table 1.
    pub fn table1() -> Vec<AppSpec> {
        use AnsatzKind::*;
        vec![
            AppSpec {
                id: 1,
                n_qubits: 6,
                ansatz: EfficientSu2,
                reps: 2,
                machine: Machine::Toronto,
                trial: 1,
            },
            AppSpec {
                id: 2,
                n_qubits: 6,
                ansatz: RealAmplitudes,
                reps: 4,
                machine: Machine::Guadalupe,
                trial: 1,
            },
            AppSpec {
                id: 3,
                n_qubits: 6,
                ansatz: RealAmplitudes,
                reps: 4,
                machine: Machine::Guadalupe,
                trial: 2,
            },
            AppSpec {
                id: 4,
                n_qubits: 6,
                ansatz: EfficientSu2,
                reps: 4,
                machine: Machine::Toronto,
                trial: 2,
            },
            AppSpec {
                id: 5,
                n_qubits: 6,
                ansatz: RealAmplitudes,
                reps: 8,
                machine: Machine::Cairo,
                trial: 1,
            },
            AppSpec {
                id: 6,
                n_qubits: 6,
                ansatz: RealAmplitudes,
                reps: 8,
                machine: Machine::Casablanca,
                trial: 1,
            },
        ]
    }

    /// Looks up a Table 1 app by index (1-6).
    pub fn by_id(id: u8) -> Option<AppSpec> {
        Self::table1().into_iter().find(|a| a.id == id)
    }

    /// Display name (`"App3"`).
    pub fn name(&self) -> String {
        format!("App{}", self.id)
    }

    /// Deterministic seed stream for this app.
    pub fn seed(&self, master: u64) -> u64 {
        derive_seed(
            master,
            (self.id as u64) << 32 | self.machine.seed_stream() << 8 | self.trial as u64,
        )
    }

    /// Builds the ansatz.
    pub fn build_ansatz(&self) -> Ansatz {
        Ansatz::new(self.ansatz, self.n_qubits, self.reps, Entanglement::Linear)
    }

    /// Builds the full simulated application instance.
    ///
    /// * `job_capacity` — transient-trace length; allocate several times the
    ///   planned iteration count to absorb QISMET retries.
    /// * `magnitude` — transient burst magnitude as a fraction of objective
    ///   magnitude; `None` uses the machine's native intensity.
    pub fn build(
        &self,
        job_capacity: usize,
        magnitude: Option<f64>,
        master_seed: u64,
    ) -> AppInstance {
        self.build_with_backend(
            job_capacity,
            magnitude,
            master_seed,
            Box::new(CachedStatevectorBackend::new()),
        )
    }

    /// Like [`AppSpec::build`] but running the objective on an explicit
    /// circuit-execution [`Backend`] — the hook campaign executors use to
    /// share one pooled backend (scratch state + compiled plans) across all
    /// runs on a worker thread. Results are identical to [`AppSpec::build`]
    /// by the [`Backend`] contract.
    pub fn build_with_backend(
        &self,
        job_capacity: usize,
        magnitude: Option<f64>,
        master_seed: u64,
        backend: Box<dyn Backend>,
    ) -> AppInstance {
        let tfim = Tfim {
            n: self.n_qubits,
            j: 1.0,
            h: 1.0,
            boundary: crate::tfim::Boundary::Open,
        };
        let hamiltonian = tfim.hamiltonian();
        let exact_ground = tfim
            .exact_ground_energy()
            .expect("dense TFIM diagonalization");
        let ansatz = self.build_ansatz();
        let seed = self.seed(master_seed);
        let mag = magnitude.unwrap_or_else(|| self.machine.native_transient_magnitude());
        let trace = self.machine.transient_model(mag).generate(
            &mut qismet_mathkit::rng_from_seed(derive_seed(seed, 1)),
            job_capacity,
        );
        let cfg = NoisyObjectiveConfig {
            static_model: self.machine.static_model(self.n_qubits),
            trace,
            magnitude_ref: exact_ground.abs(),
            shot_sigma: 0.01 * exact_ground.abs(),
            // Evaluations co-scheduled into one job (QISMET's Fig. 7 layout)
            // share the job's transient up to this residual spread —
            // state-dependent impact differences between nearby circuits
            // (Section 3.2c). The baseline never benefits from this: its
            // evaluations run as separate jobs.
            within_job_spread: 0.2,
            seed: derive_seed(seed, 2),
        };
        let theta0 = ansatz.initial_params_wide(derive_seed(seed, 3));
        let objective =
            NoisyObjective::with_backend(ansatz.clone(), hamiltonian.clone(), cfg, backend);
        AppInstance {
            spec: self.clone(),
            ansatz,
            hamiltonian,
            exact_ground,
            objective,
            theta0,
        }
    }
}

/// A fully wired simulated application.
#[derive(Debug, Clone)]
pub struct AppInstance {
    /// The Table 1 row this instance realizes.
    pub spec: AppSpec,
    /// The variational ansatz.
    pub ansatz: Ansatz,
    /// The TFIM Hamiltonian.
    pub hamiltonian: qismet_qsim::PauliSum,
    /// Exact ground energy (classical reference).
    pub exact_ground: f64,
    /// The transient-noisy objective.
    pub objective: NoisyObjective,
    /// Initial parameters.
    pub theta0: Vec<f64>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_matches_paper() {
        let apps = AppSpec::table1();
        assert_eq!(apps.len(), 6);
        assert!(apps.iter().all(|a| a.n_qubits == 6));
        let app2 = AppSpec::by_id(2).unwrap();
        assert_eq!(app2.ansatz, AnsatzKind::RealAmplitudes);
        assert_eq!(app2.reps, 4);
        assert_eq!(app2.machine, Machine::Guadalupe);
        let app5 = AppSpec::by_id(5).unwrap();
        assert_eq!(app5.machine, Machine::Cairo);
        assert_eq!(app5.reps, 8);
        assert!(AppSpec::by_id(7).is_none());
    }

    #[test]
    fn seeds_are_distinct_across_apps() {
        let apps = AppSpec::table1();
        let mut seen = std::collections::HashSet::new();
        for a in &apps {
            assert!(seen.insert(a.seed(42)), "seed collision for {}", a.name());
        }
        // Same app, same master seed: stable.
        assert_eq!(apps[0].seed(42), AppSpec::by_id(1).unwrap().seed(42));
    }

    #[test]
    fn build_produces_consistent_instance() {
        let app = AppSpec::by_id(2).unwrap().build(200, None, 7);
        assert_eq!(app.ansatz.n_params(), 30); // RA, 6 qubits, reps 4
        assert_eq!(app.theta0.len(), 30);
        assert!(app.exact_ground < -7.0);
        assert_eq!(app.objective.jobs_remaining(), 200);
        // App name format.
        assert_eq!(app.spec.name(), "App2");
    }

    #[test]
    fn magnitude_override_scales_trace() {
        let calm = AppSpec::by_id(1).unwrap().build(5000, Some(0.0), 7);
        let wild = AppSpec::by_id(1).unwrap().build(5000, Some(0.5), 7);
        let calm_max = qismet_mathkit::max(
            &(0..5000)
                .map(|j| calm.objective.transient_at(j).abs())
                .collect::<Vec<_>>(),
        );
        let wild_max = qismet_mathkit::max(
            &(0..5000)
                .map(|j| wild.objective.transient_at(j).abs())
                .collect::<Vec<_>>(),
        );
        assert!(
            calm_max < 0.01,
            "zero-magnitude trace should be jitter-free"
        );
        assert!(wild_max > 0.3, "wild trace max {wild_max}");
    }

    #[test]
    fn deeper_apps_have_lower_attenuation() {
        let shallow = AppSpec::by_id(1).unwrap().build(10, None, 7); // reps 2
        let deep = AppSpec::by_id(5).unwrap().build(10, None, 7); // reps 8, Cairo
        assert!(
            deep.objective.attenuation() < shallow.objective.attenuation(),
            "deep {} vs shallow {}",
            deep.objective.attenuation(),
            shallow.objective.attenuation()
        );
    }
}

//! # qismet-vqa
//!
//! The VQA (variational quantum algorithm) framework of the QISMET
//! reproduction (ASPLOS 2023): everything a VQE needs short of the QISMET
//! controller itself (which lives in the `qismet` core crate):
//!
//! * [`Ansatz`] — hardware-efficient `EfficientSU2` / `RealAmplitudes`
//!   circuit families with configurable repetitions and entanglement.
//! * [`Tfim`] — the paper's primary Hamiltonian (1-D transverse-field Ising
//!   model) with dense **and** free-fermion exact solutions.
//! * [`ExactObjective`] / [`NoisyObjective`] — the objective pipeline: exact
//!   expectation (through the pluggable `qismet_qsim::Backend` layer),
//!   static-noise attenuation, shot noise, and per-job transient injection
//!   per Section 6.2 of the paper.
//! * [`JobRequest`] / [`JobResult`] — one iteration's evaluations assembled
//!   and executed as a single backend batch (the Fig. 7 job structure).
//! * [`run_tuning`] — the Baseline / Blocking tuning loops over any
//!   [`qismet_optim::Proposer`].
//! * [`AppSpec`] — the Table 1 application registry (App1-App6).
//! * Metrics ([`relative_expectation`], [`count_spikes`], ...) used by the
//!   evaluation harnesses.
//!
//! # Examples
//!
//! Running a short baseline VQE on App2:
//!
//! ```
//! use qismet_vqa::{run_tuning, AppSpec, TuningScheme};
//! use qismet_optim::{GainSchedule, Spsa};
//!
//! let mut app = AppSpec::by_id(2).unwrap().build(200, Some(0.1), 42);
//! let mut spsa = Spsa::new(app.theta0.len(), GainSchedule::spall_default(), 1);
//! let record = run_tuning(
//!     &mut spsa,
//!     &mut app.objective,
//!     app.theta0.clone(),
//!     50,
//!     TuningScheme::Baseline,
//! );
//! assert_eq!(record.measured.len(), 50);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod ansatz;
mod apps;
mod history;
mod job;
mod objective;
mod qaoa;
mod runner;
mod tfim;

pub use ansatz::{Ansatz, AnsatzKind, CompiledAnsatz, Entanglement};
pub use apps::{AppInstance, AppSpec};
pub use history::{
    approximation_ratio, count_spikes, improvement_percent, relative_expectation, summarize,
    RunSummary,
};
pub use job::{JobLayout, JobRequest, JobResult};
pub use objective::{
    execute_lockstep, ExactObjective, NoisyObjective, NoisyObjectiveConfig, ObjectiveError,
};
pub use qaoa::{
    approximation_ratio as qaoa_approximation_ratio, maxcut_hamiltonian, qaoa_circuit, Graph,
};
pub use runner::{run_tuning, run_tuning_lockstep, RunRecord, TuningLane, TuningScheme};
pub use tfim::{Boundary, Tfim};

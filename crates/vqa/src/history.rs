//! Metrics over tuning histories — the quantities the paper's evaluation
//! reports.

use crate::runner::RunRecord;

/// The "VQE Expectation rel. Baseline" metric of Figs. 13 and 17: the ratio
/// of final energies, valid when both are negative (a minimization target
/// below zero). A value of 1.42 means the scheme's final expectation is
/// 1.42x more negative than the baseline's.
///
/// Returns `NaN` when either energy is non-negative (the ratio is
/// meaningless there).
pub fn relative_expectation(scheme_energy: f64, baseline_energy: f64) -> f64 {
    if scheme_energy >= 0.0 || baseline_energy >= 0.0 {
        return f64::NAN;
    }
    scheme_energy / baseline_energy
}

/// Percentage improvement of `scheme` over `baseline` toward more negative
/// energies, as quoted in Section 7.1 ("a 40% improvement in VQA
/// estimation"). Positive = scheme better.
pub fn improvement_percent(scheme_energy: f64, baseline_energy: f64) -> f64 {
    (relative_expectation(scheme_energy, baseline_energy) - 1.0) * 100.0
}

/// Approximation ratio relative to the exact ground energy: how much of the
/// ground energy the scheme captured (1 = exact, 0 = null state).
pub fn approximation_ratio(energy: f64, ground_energy: f64) -> f64 {
    if ground_energy == 0.0 {
        return f64::NAN;
    }
    energy / ground_energy
}

/// Summary of one run for report tables.
#[derive(Debug, Clone, PartialEq)]
pub struct RunSummary {
    /// Final measured energy (trailing-window mean).
    pub final_measured: f64,
    /// Final exact (transient-free) energy of the tracked parameters.
    pub final_exact: f64,
    /// Total jobs consumed.
    pub jobs: usize,
    /// Total circuit-level evaluations.
    pub evals: u64,
    /// Accept / reject counts.
    pub accepted: usize,
    /// Rejected candidates.
    pub rejected: usize,
}

/// Condenses a [`RunRecord`] with a trailing window of `window` iterations.
pub fn summarize(record: &RunRecord, window: usize) -> RunSummary {
    RunSummary {
        final_measured: record.final_energy(window),
        final_exact: record.final_exact_energy(window),
        jobs: record.jobs,
        evals: record.evals,
        accepted: record.accepted,
        rejected: record.rejected,
    }
}

/// Counts the transient spikes in a measured series: iterations whose value
/// jumps more than `threshold` above the running median of the previous
/// `lookback` values. Used to quantify Fig. 5-style spike behavior.
pub fn count_spikes(measured: &[f64], lookback: usize, threshold: f64) -> usize {
    assert!(lookback > 0, "lookback must be positive");
    let mut spikes = 0;
    for i in lookback..measured.len() {
        let window = &measured[i - lookback..i];
        let med = qismet_mathkit::median(window);
        if measured[i] > med + threshold {
            spikes += 1;
        }
    }
    spikes
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relative_expectation_ratio() {
        assert!((relative_expectation(-1.42, -1.0) - 1.42).abs() < 1e-12);
        assert!((relative_expectation(-0.8, -1.0) - 0.8).abs() < 1e-12);
        assert!(relative_expectation(0.5, -1.0).is_nan());
        assert!(relative_expectation(-1.0, 0.0).is_nan());
    }

    #[test]
    fn improvement_percent_matches_paper_style() {
        // Fig. 11: "a 40% improvement" == ratio 1.40.
        assert!((improvement_percent(-1.40, -1.0) - 40.0).abs() < 1e-9);
        assert!(improvement_percent(-0.9, -1.0) < 0.0);
    }

    #[test]
    fn approximation_ratio_bounds() {
        assert!((approximation_ratio(-7.0, -7.3) - 0.9589).abs() < 1e-3);
        assert!(approximation_ratio(-1.0, 0.0).is_nan());
    }

    #[test]
    fn spike_counting() {
        let mut series = vec![-1.0; 50];
        series[20] = 0.5; // spike
        series[35] = 0.2; // spike
        let n = count_spikes(&series, 5, 0.5);
        assert_eq!(n, 2);
        let quiet = vec![-1.0; 50];
        assert_eq!(count_spikes(&quiet, 5, 0.5), 0);
    }

    #[test]
    fn summarize_copies_counters() {
        let rec = RunRecord {
            measured: vec![-1.0, -2.0],
            exact: vec![-1.1, -2.1],
            final_params: vec![0.0],
            jobs: 2,
            evals: 7,
            accepted: 2,
            rejected: 0,
        };
        let s = summarize(&rec, 1);
        assert_eq!(s.final_measured, -2.0);
        assert_eq!(s.final_exact, -2.1);
        assert_eq!(s.jobs, 2);
        assert_eq!(s.evals, 7);
    }
}

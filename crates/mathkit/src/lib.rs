//! # qismet-mathkit
//!
//! Self-contained numerical foundation for the QISMET reproduction
//! (ASPLOS 2023, "Navigating the Dynamic Noise Landscape of Variational
//! Quantum Algorithms with QISMET").
//!
//! The crate deliberately re-implements the small amount of numerics the
//! project needs instead of pulling heavyweight linear-algebra dependencies:
//!
//! * [`Complex64`] — double-precision complex arithmetic.
//! * [`RMatrix`] / [`CMatrix`] — dense row-major matrices with the usual
//!   algebra plus Kronecker products (the workhorse for building Pauli-string
//!   operators).
//! * [`sym_eig`] / [`herm_eig`] — Jacobi eigensolvers, used for exact ground
//!   energies of TFIM / H2 Hamiltonians and for Loewdin orthogonalization in
//!   the Hartree-Fock solver.
//! * [`solve`] / [`invert`] — LU-based linear algebra for readout-error
//!   calibration matrices.
//! * [`percentile`], [`geomean`], ... — the statistics the paper's evaluation
//!   quotes (percentile thresholds, geometric-mean improvements).
//! * [`erf`], [`boys_f0`] — special functions for closed-form Gaussian
//!   integrals in the H2 chemistry substrate.
//! * [`derive_seed`], [`standard_normal`], ... — deterministic seeding and
//!   distribution sampling so every experiment is reproducible.
//!
//! # Examples
//!
//! Building a two-qubit operator from Pauli matrices and extracting its
//! ground energy:
//!
//! ```
//! use qismet_mathkit::{herm_eig, CMatrix, Complex64};
//!
//! let z = CMatrix::from_rows(&[
//!     &[Complex64::ONE, Complex64::ZERO],
//!     &[Complex64::ZERO, Complex64::new(-1.0, 0.0)],
//! ]);
//! let zz = z.kron(&z);
//! let eig = herm_eig(&zz).unwrap();
//! assert!((eig.values[0] + 1.0).abs() < 1e-10);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod complex;
mod eig;
mod linsolve;
mod matrix;
mod rng;
mod special;
mod stats;

pub use complex::Complex64;
pub use eig::{generalized_sym_eig, ground_energy, ground_state, herm_eig, sym_eig};
pub use eig::{EigError, HermEig, SymEig};
pub use linsolve::{invert, solve, Lu};
pub use matrix::{CMatrix, MatrixError, RMatrix};
pub use rng::{
    bernoulli, derive_seed, exponential, geometric, normal, pareto, rng_from_seed, sample_discrete,
    standard_normal,
};
pub use special::{boys_f0, erf, erfc};
pub use stats::{
    geomean, max, mean, median, min, moving_average, pearson, percentile, running_min, stddev,
    variance, variance_population,
};

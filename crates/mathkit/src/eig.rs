//! Eigensolvers for the small dense matrices used across the workspace.
//!
//! * [`sym_eig`] — cyclic Jacobi for real symmetric matrices.
//! * [`herm_eig`] — complex Hermitian eigensolver via the standard real
//!   `2n x 2n` embedding `[[X, -Y], [Y, X]]` of `A = X + iY`.
//! * [`generalized_sym_eig`] — `F C = S C e` through symmetric (Loewdin)
//!   orthogonalization, as needed by the restricted Hartree-Fock solver.
//!
//! Matrices in this project top out around `128 x 128` real (6-qubit
//! Hamiltonians embedded to `2n`), for which Jacobi is accurate and fast
//! enough while being simple to verify.

use crate::complex::Complex64;
use crate::matrix::{CMatrix, MatrixError, RMatrix};

/// Result of a symmetric/Hermitian eigendecomposition.
///
/// Eigenvalues are sorted ascending; `vectors.column(k)` (i.e. the k-th
/// column) is the eigenvector for `values[k]`.
#[derive(Debug, Clone)]
pub struct SymEig {
    /// Eigenvalues, ascending.
    pub values: Vec<f64>,
    /// Orthonormal eigenvectors stored column-wise.
    pub vectors: RMatrix,
}

/// Result of a complex Hermitian eigendecomposition.
#[derive(Debug, Clone)]
pub struct HermEig {
    /// Eigenvalues, ascending (all real for Hermitian input).
    pub values: Vec<f64>,
    /// Eigenvectors stored column-wise.
    pub vectors: CMatrix,
}

/// Error from eigensolvers.
#[derive(Debug, Clone, PartialEq)]
pub enum EigError {
    /// Input must be square.
    NotSquare {
        /// Offending shape.
        shape: (usize, usize),
    },
    /// Input must be (numerically) symmetric / Hermitian.
    NotSymmetric,
    /// Jacobi sweep limit exceeded before reaching tolerance.
    NoConvergence {
        /// Residual off-diagonal magnitude when the solver gave up.
        offdiag: f64,
    },
}

impl std::fmt::Display for EigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EigError::NotSquare { shape } => {
                write!(
                    f,
                    "eigensolver requires square input, got {}x{}",
                    shape.0, shape.1
                )
            }
            EigError::NotSymmetric => write!(f, "matrix is not symmetric/Hermitian"),
            EigError::NoConvergence { offdiag } => {
                write!(f, "jacobi failed to converge (offdiag {offdiag:e})")
            }
        }
    }
}

impl std::error::Error for EigError {}

impl From<MatrixError> for EigError {
    fn from(e: MatrixError) -> Self {
        match e {
            MatrixError::NotSquare { shape } => EigError::NotSquare { shape },
            _ => EigError::NotSymmetric,
        }
    }
}

const MAX_SWEEPS: usize = 100;
const SYM_TOL: f64 = 1e-9;

/// Eigendecomposition of a real symmetric matrix by cyclic Jacobi rotations.
///
/// # Errors
///
/// * [`EigError::NotSquare`] for non-square input.
/// * [`EigError::NotSymmetric`] if `|A - A^T|` exceeds an internal tolerance.
/// * [`EigError::NoConvergence`] if the sweep budget is exhausted.
///
/// # Examples
///
/// ```
/// use qismet_mathkit::{sym_eig, RMatrix};
/// let a = RMatrix::from_rows(&[&[2.0, 1.0], &[1.0, 2.0]]);
/// let eig = sym_eig(&a).unwrap();
/// assert!((eig.values[0] - 1.0).abs() < 1e-10);
/// assert!((eig.values[1] - 3.0).abs() < 1e-10);
/// ```
pub fn sym_eig(a: &RMatrix) -> Result<SymEig, EigError> {
    if !a.is_square() {
        return Err(EigError::NotSquare { shape: a.shape() });
    }
    let n = a.rows();
    for i in 0..n {
        for j in (i + 1)..n {
            if (a.at(i, j) - a.at(j, i)).abs() > SYM_TOL {
                return Err(EigError::NotSymmetric);
            }
        }
    }

    let mut m = a.clone();
    m.symmetrize();
    let mut v = RMatrix::identity(n);
    let scale = m.frobenius_norm().max(1.0);
    let tol = 1e-14 * scale;

    for _sweep in 0..MAX_SWEEPS {
        let off = m.max_offdiag_abs();
        if off <= tol {
            return Ok(sorted_sym(m, v));
        }
        for p in 0..n {
            for q in (p + 1)..n {
                let apq = m.at(p, q);
                if apq.abs() <= tol * 1e-2 {
                    continue;
                }
                let app = m.at(p, p);
                let aqq = m.at(q, q);
                // Rotation angle that zeroes element (p, q).
                let theta = 0.5 * (2.0 * apq).atan2(aqq - app);
                let c = theta.cos();
                let s = theta.sin();
                // Update rows/columns p and q of M = J^T M J.
                for k in 0..n {
                    let mkp = m.at(k, p);
                    let mkq = m.at(k, q);
                    m.set(k, p, c * mkp - s * mkq);
                    m.set(k, q, s * mkp + c * mkq);
                }
                for k in 0..n {
                    let mpk = m.at(p, k);
                    let mqk = m.at(q, k);
                    m.set(p, k, c * mpk - s * mqk);
                    m.set(q, k, s * mpk + c * mqk);
                }
                // Accumulate eigenvectors: V = V J.
                for k in 0..n {
                    let vkp = v.at(k, p);
                    let vkq = v.at(k, q);
                    v.set(k, p, c * vkp - s * vkq);
                    v.set(k, q, s * vkp + c * vkq);
                }
            }
        }
    }
    let off = m.max_offdiag_abs();
    if off <= 1e-8 * scale {
        return Ok(sorted_sym(m, v));
    }
    Err(EigError::NoConvergence { offdiag: off })
}

fn sorted_sym(m: RMatrix, v: RMatrix) -> SymEig {
    let n = m.rows();
    let mut idx: Vec<usize> = (0..n).collect();
    idx.sort_by(|&i, &j| {
        m.at(i, i)
            .partial_cmp(&m.at(j, j))
            .expect("finite eigenvalues")
    });
    let mut values = Vec::with_capacity(n);
    let mut vectors = RMatrix::zeros(n, n);
    for (new_col, &old_col) in idx.iter().enumerate() {
        values.push(m.at(old_col, old_col));
        for r in 0..n {
            vectors.set(r, new_col, v.at(r, old_col));
        }
    }
    SymEig { values, vectors }
}

/// Eigendecomposition of a complex Hermitian matrix.
///
/// Implemented by embedding `A = X + iY` into the real symmetric
/// `[[X, -Y], [Y, X]]` whose spectrum is that of `A` doubled; eigenvalues are
/// deduplicated by taking every second entry of the sorted embedded spectrum
/// and the complex eigenvector is recovered as `u + iv` from the embedded
/// vector `(u; v)`.
///
/// # Errors
///
/// * [`EigError::NotSquare`] / [`EigError::NotSymmetric`] for bad input.
/// * [`EigError::NoConvergence`] if the underlying Jacobi solver stalls.
///
/// # Examples
///
/// ```
/// use qismet_mathkit::{herm_eig, CMatrix, Complex64};
/// // Pauli Y has eigenvalues -1 and +1.
/// let y = CMatrix::from_rows(&[
///     &[Complex64::ZERO, Complex64::new(0.0, -1.0)],
///     &[Complex64::new(0.0, 1.0), Complex64::ZERO],
/// ]);
/// let eig = herm_eig(&y).unwrap();
/// assert!((eig.values[0] + 1.0).abs() < 1e-10);
/// assert!((eig.values[1] - 1.0).abs() < 1e-10);
/// ```
pub fn herm_eig(a: &CMatrix) -> Result<HermEig, EigError> {
    if !a.is_square() {
        return Err(EigError::NotSquare { shape: a.shape() });
    }
    if !a.is_hermitian(SYM_TOL) {
        return Err(EigError::NotSymmetric);
    }
    let n = a.rows();
    let x = a.real_part();
    let y = a.imag_part();
    // M = [[X, -Y], [Y, X]]
    let mut m = RMatrix::zeros(2 * n, 2 * n);
    for i in 0..n {
        for j in 0..n {
            m.set(i, j, x.at(i, j));
            m.set(i, j + n, -y.at(i, j));
            m.set(i + n, j, y.at(i, j));
            m.set(i + n, j + n, x.at(i, j));
        }
    }
    let emb = sym_eig(&m)?;
    // Every eigenvalue of A appears twice; take indices 0, 2, 4, ...
    let mut values = Vec::with_capacity(n);
    let mut vectors = CMatrix::zeros(n, n);
    for k in 0..n {
        let src = 2 * k;
        values.push(emb.values[src]);
        for r in 0..n {
            let u = emb.vectors.at(r, src);
            let w = emb.vectors.at(r + n, src);
            vectors.set(r, k, Complex64::new(u, w));
        }
    }
    Ok(HermEig { values, vectors })
}

/// Smallest eigenvalue of a complex Hermitian matrix (the VQE target).
///
/// # Errors
///
/// Same as [`herm_eig`].
pub fn ground_energy(a: &CMatrix) -> Result<f64, EigError> {
    Ok(herm_eig(a)?.values[0])
}

/// Ground state (eigenvector of the smallest eigenvalue) of a Hermitian
/// matrix, normalized.
///
/// # Errors
///
/// Same as [`herm_eig`].
pub fn ground_state(a: &CMatrix) -> Result<(f64, Vec<Complex64>), EigError> {
    let eig = herm_eig(a)?;
    let n = a.rows();
    let mut v: Vec<Complex64> = (0..n).map(|r| eig.vectors.at(r, 0)).collect();
    let norm = v.iter().map(|z| z.norm_sqr()).sum::<f64>().sqrt();
    for z in &mut v {
        *z = *z / norm;
    }
    Ok((eig.values[0], v))
}

/// Solves the generalized symmetric eigenproblem `F C = S C e` with `S`
/// positive definite, via Loewdin orthogonalization `S^{-1/2}`.
///
/// Returns eigenvalues ascending and coefficient columns `C` in the original
/// (non-orthogonal) basis. Used by the restricted Hartree-Fock solver where
/// `F` is the Fock matrix and `S` the overlap matrix.
///
/// # Errors
///
/// Propagates eigensolver failures; also returns [`EigError::NotSymmetric`]
/// if `S` is not positive definite (non-positive eigenvalue).
pub fn generalized_sym_eig(f: &RMatrix, s: &RMatrix) -> Result<SymEig, EigError> {
    let se = sym_eig(s)?;
    let n = s.rows();
    if se.values.iter().any(|&v| v <= 0.0) {
        return Err(EigError::NotSymmetric);
    }
    // S^{-1/2} = U diag(1/sqrt(lambda)) U^T
    let mut d = RMatrix::zeros(n, n);
    for i in 0..n {
        d.set(i, i, 1.0 / se.values[i].sqrt());
    }
    let s_inv_half = &(&se.vectors * &d) * &se.vectors.transpose();
    let f_prime = &(&s_inv_half * f) * &s_inv_half;
    let mut fp = f_prime.clone();
    fp.symmetrize();
    let fe = sym_eig(&fp)?;
    let c = &s_inv_half * &fe.vectors;
    Ok(SymEig {
        values: fe.values,
        vectors: c,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(re: f64, im: f64) -> Complex64 {
        Complex64::new(re, im)
    }

    #[test]
    fn diagonal_matrix_spectrum() {
        let a = RMatrix::from_rows(&[&[3.0, 0.0], &[0.0, -2.0]]);
        let e = sym_eig(&a).unwrap();
        assert!((e.values[0] + 2.0).abs() < 1e-12);
        assert!((e.values[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn two_by_two_known_eigs() {
        // [[2,1],[1,2]] -> {1, 3}
        let a = RMatrix::from_rows(&[&[2.0, 1.0], &[1.0, 2.0]]);
        let e = sym_eig(&a).unwrap();
        assert!((e.values[0] - 1.0).abs() < 1e-10);
        assert!((e.values[1] - 3.0).abs() < 1e-10);
        // Eigenvector for 1 is (1,-1)/sqrt(2) up to sign.
        let v0 = (e.vectors.at(0, 0), e.vectors.at(1, 0));
        assert!((v0.0 + v0.1).abs() < 1e-10);
    }

    #[test]
    fn residual_is_small_for_random_symmetric() {
        // Deterministic pseudo-random symmetric matrix.
        let n = 12;
        let mut a = RMatrix::zeros(n, n);
        let mut state = 0x9e3779b97f4a7c15u64;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
        };
        for i in 0..n {
            for j in i..n {
                let v = next();
                a.set(i, j, v);
                a.set(j, i, v);
            }
        }
        let e = sym_eig(&a).unwrap();
        // Check A v = lambda v for each pair.
        for k in 0..n {
            let v: Vec<f64> = (0..n).map(|r| e.vectors.at(r, k)).collect();
            let av = a.matvec(&v);
            for r in 0..n {
                assert!(
                    (av[r] - e.values[k] * v[r]).abs() < 1e-8,
                    "residual too large at ({r},{k})"
                );
            }
        }
        // Trace is preserved.
        let tr: f64 = e.values.iter().sum();
        assert!((tr - a.trace()).abs() < 1e-8);
    }

    #[test]
    fn eigenvectors_are_orthonormal() {
        let a = RMatrix::from_rows(&[&[4.0, 1.0, 0.5], &[1.0, 3.0, -0.2], &[0.5, -0.2, 1.0]]);
        let e = sym_eig(&a).unwrap();
        let vt_v = &e.vectors.transpose() * &e.vectors;
        assert!(vt_v.approx_eq(&RMatrix::identity(3), 1e-10));
    }

    #[test]
    fn hermitian_pauli_y() {
        let y = CMatrix::from_rows(&[&[c(0.0, 0.0), c(0.0, -1.0)], &[c(0.0, 1.0), c(0.0, 0.0)]]);
        let e = herm_eig(&y).unwrap();
        assert!((e.values[0] + 1.0).abs() < 1e-10);
        assert!((e.values[1] - 1.0).abs() < 1e-10);
        // Verify A v = lambda v in complex arithmetic.
        for k in 0..2 {
            let v: Vec<Complex64> = (0..2).map(|r| e.vectors.at(r, k)).collect();
            let av = y.matvec(&v);
            for r in 0..2 {
                assert!(av[r].approx_eq(v[r] * e.values[k], 1e-9));
            }
        }
    }

    #[test]
    fn ground_state_of_shifted_z() {
        // H = Z + 0.5 X has ground energy -sqrt(1.25).
        let h = CMatrix::from_rows(&[&[c(1.0, 0.0), c(0.5, 0.0)], &[c(0.5, 0.0), c(-1.0, 0.0)]]);
        let (e0, v) = ground_state(&h).unwrap();
        assert!((e0 + 1.25f64.sqrt()).abs() < 1e-10);
        let norm: f64 = v.iter().map(|z| z.norm_sqr()).sum();
        assert!((norm - 1.0).abs() < 1e-12);
    }

    #[test]
    fn rejects_nonsymmetric() {
        let a = RMatrix::from_rows(&[&[0.0, 1.0], &[-1.0, 0.0]]);
        assert_eq!(sym_eig(&a).unwrap_err(), EigError::NotSymmetric);
    }

    #[test]
    fn rejects_nonsquare() {
        let a = RMatrix::zeros(2, 3);
        assert!(matches!(sym_eig(&a), Err(EigError::NotSquare { .. })));
    }

    #[test]
    fn generalized_problem_reduces_to_standard_for_identity_overlap() {
        let f = RMatrix::from_rows(&[&[2.0, 1.0], &[1.0, 2.0]]);
        let s = RMatrix::identity(2);
        let e = generalized_sym_eig(&f, &s).unwrap();
        assert!((e.values[0] - 1.0).abs() < 1e-10);
        assert!((e.values[1] - 3.0).abs() < 1e-10);
    }

    #[test]
    fn generalized_problem_with_overlap() {
        // F C = S C e with S = [[1, 0.5],[0.5, 1]], F = [[1,0],[0,2]].
        let f = RMatrix::from_rows(&[&[1.0, 0.0], &[0.0, 2.0]]);
        let s = RMatrix::from_rows(&[&[1.0, 0.5], &[0.5, 1.0]]);
        let e = generalized_sym_eig(&f, &s).unwrap();
        // Verify F c = e S c for the lowest pair.
        let c0: Vec<f64> = (0..2).map(|r| e.vectors.at(r, 0)).collect();
        let fc = f.matvec(&c0);
        let sc = s.matvec(&c0);
        for r in 0..2 {
            assert!((fc[r] - e.values[0] * sc[r]).abs() < 1e-9);
        }
    }

    #[test]
    fn herm_eig_larger_random_matrix() {
        let n = 8;
        let mut a = CMatrix::zeros(n, n);
        let mut state = 42u64;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
        };
        for i in 0..n {
            let d = next();
            a.set(i, i, c(d, 0.0));
            for j in (i + 1)..n {
                let z = c(next(), next());
                a.set(i, j, z);
                a.set(j, i, z.conj());
            }
        }
        let e = herm_eig(&a).unwrap();
        for k in 0..n {
            let v: Vec<Complex64> = (0..n).map(|r| e.vectors.at(r, k)).collect();
            let av = a.matvec(&v);
            for r in 0..n {
                assert!(
                    av[r].approx_eq(v[r] * e.values[k], 1e-8),
                    "residual at ({r},{k})"
                );
            }
        }
        // Eigenvalues ascending.
        for k in 1..n {
            assert!(e.values[k] >= e.values[k - 1] - 1e-12);
        }
    }
}

//! A minimal, dependency-free double-precision complex number.
//!
//! The QISMET reproduction deliberately avoids external numeric crates; this
//! module provides the small slice of complex arithmetic the quantum
//! simulators need (field operations, conjugation, polar form, exponentials).

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// A complex number with `f64` real and imaginary parts.
///
/// # Examples
///
/// ```
/// use qismet_mathkit::Complex64;
///
/// let i = Complex64::I;
/// assert_eq!(i * i, Complex64::new(-1.0, 0.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex64 {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex64 {
    /// The additive identity `0 + 0i`.
    pub const ZERO: Complex64 = Complex64 { re: 0.0, im: 0.0 };
    /// The multiplicative identity `1 + 0i`.
    pub const ONE: Complex64 = Complex64 { re: 1.0, im: 0.0 };
    /// The imaginary unit `0 + 1i`.
    pub const I: Complex64 = Complex64 { re: 0.0, im: 1.0 };

    /// Creates a complex number from Cartesian parts.
    ///
    /// # Examples
    ///
    /// ```
    /// use qismet_mathkit::Complex64;
    /// let z = Complex64::new(3.0, -4.0);
    /// assert_eq!(z.abs(), 5.0);
    /// ```
    #[inline]
    pub const fn new(re: f64, im: f64) -> Self {
        Complex64 { re, im }
    }

    /// Creates a purely real complex number.
    #[inline]
    pub const fn from_re(re: f64) -> Self {
        Complex64 { re, im: 0.0 }
    }

    /// Creates a complex number from polar form `r * exp(i * theta)`.
    ///
    /// # Examples
    ///
    /// ```
    /// use qismet_mathkit::Complex64;
    /// let z = Complex64::from_polar(2.0, std::f64::consts::FRAC_PI_2);
    /// assert!((z.re).abs() < 1e-15);
    /// assert!((z.im - 2.0).abs() < 1e-15);
    /// ```
    #[inline]
    pub fn from_polar(r: f64, theta: f64) -> Self {
        Complex64 {
            re: r * theta.cos(),
            im: r * theta.sin(),
        }
    }

    /// Returns `exp(i * theta)`, a unit phase.
    #[inline]
    pub fn cis(theta: f64) -> Self {
        Self::from_polar(1.0, theta)
    }

    /// The complex conjugate.
    #[inline]
    pub fn conj(self) -> Self {
        Complex64 {
            re: self.re,
            im: -self.im,
        }
    }

    /// The squared modulus `re^2 + im^2`.
    #[inline]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// The modulus (absolute value).
    #[inline]
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// The argument (phase angle) in `(-pi, pi]`.
    #[inline]
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// The complex exponential `exp(z)`.
    ///
    /// # Examples
    ///
    /// ```
    /// use qismet_mathkit::Complex64;
    /// let z = Complex64::new(0.0, std::f64::consts::PI).exp();
    /// assert!((z.re + 1.0).abs() < 1e-15);
    /// ```
    #[inline]
    pub fn exp(self) -> Self {
        Self::from_polar(self.re.exp(), self.im)
    }

    /// Multiplies by a real scalar.
    #[inline]
    pub fn scale(self, k: f64) -> Self {
        Complex64 {
            re: self.re * k,
            im: self.im * k,
        }
    }

    /// The multiplicative inverse `1 / z`.
    ///
    /// # Panics
    ///
    /// Does not panic; division by zero yields non-finite parts, mirroring
    /// `f64` semantics.
    #[inline]
    pub fn recip(self) -> Self {
        let d = self.norm_sqr();
        Complex64 {
            re: self.re / d,
            im: -self.im / d,
        }
    }

    /// Returns `true` when both parts are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.re.is_finite() && self.im.is_finite()
    }

    /// Fused multiply-add: `self * b + c`, evaluated with ordinary arithmetic.
    ///
    /// Exists to keep hot simulator loops terse rather than for extra
    /// precision.
    #[inline]
    pub fn mul_add(self, b: Complex64, c: Complex64) -> Self {
        self * b + c
    }

    /// Approximate equality within an absolute tolerance on both parts.
    #[inline]
    pub fn approx_eq(self, other: Complex64, tol: f64) -> bool {
        (self.re - other.re).abs() <= tol && (self.im - other.im).abs() <= tol
    }
}

impl From<f64> for Complex64 {
    #[inline]
    fn from(re: f64) -> Self {
        Complex64::from_re(re)
    }
}

impl Add for Complex64 {
    type Output = Complex64;
    #[inline]
    fn add(self, rhs: Complex64) -> Complex64 {
        Complex64::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl Sub for Complex64 {
    type Output = Complex64;
    #[inline]
    fn sub(self, rhs: Complex64) -> Complex64 {
        Complex64::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl Mul for Complex64 {
    type Output = Complex64;
    #[inline]
    fn mul(self, rhs: Complex64) -> Complex64 {
        Complex64::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl Div for Complex64 {
    type Output = Complex64;
    // Complex division *is* multiplication by the reciprocal; clippy's
    // operator-mismatch heuristic does not apply.
    #[allow(clippy::suspicious_arithmetic_impl)]
    #[inline]
    fn div(self, rhs: Complex64) -> Complex64 {
        self * rhs.recip()
    }
}

impl Neg for Complex64 {
    type Output = Complex64;
    #[inline]
    fn neg(self) -> Complex64 {
        Complex64::new(-self.re, -self.im)
    }
}

impl Mul<f64> for Complex64 {
    type Output = Complex64;
    #[inline]
    fn mul(self, rhs: f64) -> Complex64 {
        self.scale(rhs)
    }
}

impl Mul<Complex64> for f64 {
    type Output = Complex64;
    #[inline]
    fn mul(self, rhs: Complex64) -> Complex64 {
        rhs.scale(self)
    }
}

impl Div<f64> for Complex64 {
    type Output = Complex64;
    #[inline]
    fn div(self, rhs: f64) -> Complex64 {
        Complex64::new(self.re / rhs, self.im / rhs)
    }
}

impl AddAssign for Complex64 {
    #[inline]
    fn add_assign(&mut self, rhs: Complex64) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl SubAssign for Complex64 {
    #[inline]
    fn sub_assign(&mut self, rhs: Complex64) {
        self.re -= rhs.re;
        self.im -= rhs.im;
    }
}

impl MulAssign for Complex64 {
    #[inline]
    fn mul_assign(&mut self, rhs: Complex64) {
        *self = *self * rhs;
    }
}

impl DivAssign for Complex64 {
    #[inline]
    fn div_assign(&mut self, rhs: Complex64) {
        *self = *self / rhs;
    }
}

impl Sum for Complex64 {
    fn sum<I: Iterator<Item = Complex64>>(iter: I) -> Self {
        iter.fold(Complex64::ZERO, |acc, z| acc + z)
    }
}

impl fmt::Display for Complex64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{}+{}i", self.re, self.im)
        } else {
            write!(f, "{}{}i", self.re, self.im)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const TOL: f64 = 1e-12;

    #[test]
    fn field_ops_match_hand_computation() {
        let a = Complex64::new(1.0, 2.0);
        let b = Complex64::new(3.0, -1.0);
        assert_eq!(a + b, Complex64::new(4.0, 1.0));
        assert_eq!(a - b, Complex64::new(-2.0, 3.0));
        assert_eq!(a * b, Complex64::new(5.0, 5.0));
        let q = a / b;
        assert!(q.approx_eq(Complex64::new(0.1, 0.7), TOL));
    }

    #[test]
    fn conjugation_and_modulus() {
        let z = Complex64::new(3.0, 4.0);
        assert_eq!(z.conj(), Complex64::new(3.0, -4.0));
        assert_eq!(z.norm_sqr(), 25.0);
        assert_eq!(z.abs(), 5.0);
        assert!((z * z.conj()).approx_eq(Complex64::from_re(25.0), TOL));
    }

    #[test]
    fn polar_roundtrip() {
        let z = Complex64::new(-0.3, 0.8);
        let back = Complex64::from_polar(z.abs(), z.arg());
        assert!(z.approx_eq(back, TOL));
    }

    #[test]
    fn euler_identity() {
        let z = Complex64::new(0.0, std::f64::consts::PI).exp();
        assert!(z.approx_eq(Complex64::from_re(-1.0), TOL));
    }

    #[test]
    fn cis_is_unit_modulus() {
        for k in 0..32 {
            let theta = k as f64 * 0.41;
            assert!((Complex64::cis(theta).abs() - 1.0).abs() < TOL);
        }
    }

    #[test]
    fn recip_inverts() {
        let z = Complex64::new(0.7, -1.9);
        assert!((z * z.recip()).approx_eq(Complex64::ONE, TOL));
    }

    #[test]
    fn sum_folds() {
        let total: Complex64 = (0..4).map(|k| Complex64::new(k as f64, 1.0)).sum();
        assert_eq!(total, Complex64::new(6.0, 4.0));
    }

    #[test]
    fn display_formats_sign() {
        assert_eq!(Complex64::new(1.0, -2.0).to_string(), "1-2i");
        assert_eq!(Complex64::new(1.0, 2.0).to_string(), "1+2i");
    }

    #[test]
    fn scalar_ops() {
        let z = Complex64::new(2.0, -4.0);
        assert_eq!(z * 0.5, Complex64::new(1.0, -2.0));
        assert_eq!(0.5 * z, Complex64::new(1.0, -2.0));
        assert_eq!(z / 2.0, Complex64::new(1.0, -2.0));
    }
}

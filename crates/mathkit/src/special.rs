//! Special functions for the chemistry substrate: the error function and the
//! zeroth Boys function `F0`, which appear in closed-form Gaussian integral
//! formulas for s-orbitals.
//!
//! Accuracy target is ~1e-13 relative, far below chemical accuracy, so the
//! H2 potential-energy surface (Fig. 18) is limited by the basis set rather
//! than by these routines.

use std::f64::consts::PI;

/// Error function `erf(x)`.
///
/// Uses the Maclaurin series for `|x| <= 2` and a Lentz-evaluated continued
/// fraction for `erfc` beyond, giving ~1e-14 absolute accuracy everywhere.
///
/// # Examples
///
/// ```
/// use qismet_mathkit::erf;
/// assert!((erf(0.0)).abs() < 1e-15);
/// assert!((erf(1e9) - 1.0).abs() < 1e-15);
/// ```
pub fn erf(x: f64) -> f64 {
    if x < 0.0 {
        return -erf(-x);
    }
    if x <= 2.0 {
        erf_series(x)
    } else if x >= 6.0 {
        1.0
    } else {
        1.0 - erfc_cf(x)
    }
}

/// Complementary error function `erfc(x) = 1 - erf(x)`.
pub fn erfc(x: f64) -> f64 {
    if x <= 2.0 {
        1.0 - erf(x)
    } else {
        erfc_cf(x)
    }
}

/// Maclaurin series: `erf(x) = 2/sqrt(pi) * sum (-1)^n x^(2n+1) / (n! (2n+1))`.
fn erf_series(x: f64) -> f64 {
    let x2 = x * x;
    let mut term = x;
    let mut sum = x;
    for n in 1..200 {
        term *= -x2 / n as f64;
        let contrib = term / (2 * n + 1) as f64;
        sum += contrib;
        if contrib.abs() < 1e-17 * sum.abs().max(1e-300) {
            break;
        }
    }
    2.0 / PI.sqrt() * sum
}

/// Continued fraction for `erfc`, valid for x >~ 2:
/// `erfc(x) = exp(-x^2)/(x sqrt(pi)) * 1/(1 + 1/(2x^2 + 2/(1 + 3/(2x^2 + ...))))`
/// evaluated by the modified Lentz algorithm for the equivalent CF
/// `erfc(x) sqrt(pi) e^{x^2} = 1/(x + 1/2/(x + 1/(x + 3/2/(x + ...))))`.
fn erfc_cf(x: f64) -> f64 {
    let tiny = 1e-300;
    let mut f = x.max(tiny);
    let mut c = f;
    let mut d = 0.0;
    for k in 1..300 {
        let a = k as f64 / 2.0;
        // CF: b_k = x, a_k = k/2.
        d = x + a * d;
        if d.abs() < tiny {
            d = tiny;
        }
        c = x + a / c;
        if c.abs() < tiny {
            c = tiny;
        }
        d = 1.0 / d;
        let delta = c * d;
        f *= delta;
        if (delta - 1.0).abs() < 1e-16 {
            break;
        }
    }
    (-x * x).exp() / (PI.sqrt() * f)
}

/// Zeroth Boys function
/// `F0(t) = integral_0^1 exp(-t u^2) du = 0.5 sqrt(pi/t) erf(sqrt(t))`.
///
/// Small arguments use the Maclaurin series to avoid the `0/0` form.
///
/// # Examples
///
/// ```
/// use qismet_mathkit::boys_f0;
/// assert!((boys_f0(0.0) - 1.0).abs() < 1e-15);
/// ```
pub fn boys_f0(t: f64) -> f64 {
    assert!(t >= 0.0, "Boys function argument must be non-negative");
    if t < 1e-13 {
        return 1.0 - t / 3.0;
    }
    if t < 0.03 {
        // Series: F0(t) = sum_k (-t)^k / (k! (2k+1)).
        let mut term = 1.0;
        let mut sum = 1.0;
        for k in 1..30 {
            term *= -t / k as f64;
            let contrib = term / (2 * k + 1) as f64;
            sum += contrib;
            if contrib.abs() < 1e-17 {
                break;
            }
        }
        return sum;
    }
    0.5 * (PI / t).sqrt() * erf(t.sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;

    // Reference values from standard tables (15+ digits).
    const ERF_TABLE: &[(f64, f64)] = &[
        (0.1, 0.112462916018285),
        (0.5, 0.520499877813047),
        (1.0, 0.842700792949715),
        (1.5, 0.966105146475311),
        (2.0, 0.995322265018953),
        (2.5, 0.999593047982555),
        (3.0, 0.999977909503001),
        (4.0, 0.999999984582742),
    ];

    #[test]
    fn erf_matches_reference_table() {
        for &(x, want) in ERF_TABLE {
            let got = erf(x);
            assert!((got - want).abs() < 1e-12, "erf({x}) = {got}, want {want}");
        }
    }

    #[test]
    fn erf_is_odd() {
        for &(x, _) in ERF_TABLE {
            assert!((erf(-x) + erf(x)).abs() < 1e-15);
        }
    }

    #[test]
    fn erfc_complements() {
        for x in [0.2, 1.3, 2.4, 3.7, 5.0] {
            assert!((erf(x) + erfc(x) - 1.0).abs() < 1e-12, "x = {x}");
        }
    }

    #[test]
    fn erf_limits() {
        assert_eq!(erf(0.0), 0.0);
        assert!((erf(10.0) - 1.0).abs() < 1e-15);
        assert!((erf(-10.0) + 1.0).abs() < 1e-15);
    }

    #[test]
    fn boys_at_zero_and_small() {
        assert!((boys_f0(0.0) - 1.0).abs() < 1e-15);
        // F0(t) ~ 1 - t/3 + t^2/10 for small t (truncation error ~ t^3/42).
        let t = 1e-4;
        let approx = 1.0 - t / 3.0 + t * t / 10.0;
        assert!((boys_f0(t) - approx).abs() < 1e-13);
    }

    #[test]
    fn boys_reference_values() {
        // Computed with mpmath: F0(t) = 0.5*sqrt(pi/t)*erf(sqrt(t)).
        let cases = [
            (0.1, 0.9676433126355918),
            (0.5, 0.8556243918921488),
            (1.0, 0.746_824_132_812_427),
            (5.0, 0.3957123096105135),
            (20.0, 0.19816636482997366),
        ];
        for (t, want) in cases {
            let got = boys_f0(t);
            assert!((got - want).abs() < 1e-10, "F0({t}) = {got}, want {want}");
        }
    }

    #[test]
    fn boys_is_monotone_decreasing() {
        let mut prev = boys_f0(0.0);
        for k in 1..200 {
            let t = k as f64 * 0.1;
            let cur = boys_f0(t);
            assert!(cur < prev, "F0 not decreasing at t = {t}");
            prev = cur;
        }
    }

    #[test]
    fn boys_series_cf_boundary_is_continuous() {
        // Check continuity across the series/closed-form switch at t = 0.03.
        // F0 slope is ~ -1/3 here, so shrink the straddle to isolate branch
        // disagreement from the function's own variation.
        let eps = 1e-12;
        let below = boys_f0(0.03 - eps);
        let above = boys_f0(0.03 + eps);
        assert!((below - above).abs() < 1e-11);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn boys_rejects_negative() {
        boys_f0(-1.0);
    }
}

//! Dense row-major matrices over `f64` and [`Complex64`].
//!
//! Sized for the QISMET workloads: Hamiltonians up to a few hundred rows,
//! density matrices up to `2^8 x 2^8`, and tiny chemistry matrices. All
//! operations are straightforward `O(n^3)`/`O(n^2)` loops — no BLAS.

// Dense index arithmetic reads clearest with explicit loop indices; the
// iterator rewrites clippy suggests obscure the row/column structure.
#![allow(clippy::needless_range_loop, clippy::assign_op_pattern)]

use crate::complex::Complex64;
use std::fmt;
use std::ops::{Add, Mul, Sub};

/// Error produced by matrix constructors and shape-checked operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MatrixError {
    /// The data length does not match `rows * cols`.
    BadShape {
        /// Requested rows.
        rows: usize,
        /// Requested cols.
        cols: usize,
        /// Provided buffer length.
        len: usize,
    },
    /// Two operands have incompatible dimensions.
    DimMismatch {
        /// Left operand shape.
        left: (usize, usize),
        /// Right operand shape.
        right: (usize, usize),
    },
    /// A square matrix was required.
    NotSquare {
        /// Actual shape.
        shape: (usize, usize),
    },
    /// The matrix is numerically singular.
    Singular,
}

impl fmt::Display for MatrixError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MatrixError::BadShape { rows, cols, len } => write!(
                f,
                "buffer of length {len} cannot form a {rows}x{cols} matrix"
            ),
            MatrixError::DimMismatch { left, right } => write!(
                f,
                "dimension mismatch: {}x{} vs {}x{}",
                left.0, left.1, right.0, right.1
            ),
            MatrixError::NotSquare { shape } => {
                write!(f, "expected square matrix, got {}x{}", shape.0, shape.1)
            }
            MatrixError::Singular => write!(f, "matrix is numerically singular"),
        }
    }
}

impl std::error::Error for MatrixError {}

macro_rules! impl_matrix_common {
    ($name:ident, $elem:ty, $zero:expr, $one:expr) => {
        impl $name {
            /// Creates a matrix filled with zeros.
            pub fn zeros(rows: usize, cols: usize) -> Self {
                $name {
                    rows,
                    cols,
                    data: vec![$zero; rows * cols],
                }
            }

            /// Creates an identity matrix of size `n`.
            pub fn identity(n: usize) -> Self {
                let mut m = Self::zeros(n, n);
                for i in 0..n {
                    m.data[i * n + i] = $one;
                }
                m
            }

            /// Creates a matrix from a row-major buffer.
            ///
            /// # Errors
            ///
            /// Returns [`MatrixError::BadShape`] if `data.len() != rows * cols`.
            pub fn from_vec(
                rows: usize,
                cols: usize,
                data: Vec<$elem>,
            ) -> Result<Self, MatrixError> {
                if data.len() != rows * cols {
                    return Err(MatrixError::BadShape {
                        rows,
                        cols,
                        len: data.len(),
                    });
                }
                Ok($name { rows, cols, data })
            }

            /// Creates a matrix from nested row slices (convenient in tests).
            ///
            /// # Panics
            ///
            /// Panics if the rows are ragged.
            pub fn from_rows(rows: &[&[$elem]]) -> Self {
                let r = rows.len();
                let c = if r == 0 { 0 } else { rows[0].len() };
                let mut data = Vec::with_capacity(r * c);
                for row in rows {
                    assert_eq!(row.len(), c, "ragged rows");
                    data.extend_from_slice(row);
                }
                $name {
                    rows: r,
                    cols: c,
                    data,
                }
            }

            /// Number of rows.
            #[inline]
            pub fn rows(&self) -> usize {
                self.rows
            }

            /// Number of columns.
            #[inline]
            pub fn cols(&self) -> usize {
                self.cols
            }

            /// Shape as `(rows, cols)`.
            #[inline]
            pub fn shape(&self) -> (usize, usize) {
                (self.rows, self.cols)
            }

            /// Returns `true` for a square matrix.
            #[inline]
            pub fn is_square(&self) -> bool {
                self.rows == self.cols
            }

            /// Immutable element access.
            ///
            /// # Panics
            ///
            /// Panics if out of bounds.
            #[inline]
            pub fn at(&self, r: usize, c: usize) -> $elem {
                self.data[r * self.cols + c]
            }

            /// Mutable element access.
            ///
            /// # Panics
            ///
            /// Panics if out of bounds.
            #[inline]
            pub fn at_mut(&mut self, r: usize, c: usize) -> &mut $elem {
                &mut self.data[r * self.cols + c]
            }

            /// Sets one element.
            ///
            /// # Panics
            ///
            /// Panics if out of bounds.
            #[inline]
            pub fn set(&mut self, r: usize, c: usize, v: $elem) {
                self.data[r * self.cols + c] = v;
            }

            /// Row-major backing slice.
            #[inline]
            pub fn as_slice(&self) -> &[$elem] {
                &self.data
            }

            /// Mutable row-major backing slice.
            #[inline]
            pub fn as_mut_slice(&mut self) -> &mut [$elem] {
                &mut self.data
            }

            /// One row as a slice.
            ///
            /// # Panics
            ///
            /// Panics if `r` is out of bounds.
            #[inline]
            pub fn row(&self, r: usize) -> &[$elem] {
                &self.data[r * self.cols..(r + 1) * self.cols]
            }

            fn check_same_shape(&self, other: &Self) -> Result<(), MatrixError> {
                if self.shape() != other.shape() {
                    return Err(MatrixError::DimMismatch {
                        left: self.shape(),
                        right: other.shape(),
                    });
                }
                Ok(())
            }

            /// Shape-checked matrix product.
            ///
            /// # Errors
            ///
            /// Returns [`MatrixError::DimMismatch`] if `self.cols != rhs.rows`.
            pub fn matmul(&self, rhs: &Self) -> Result<Self, MatrixError> {
                if self.cols != rhs.rows {
                    return Err(MatrixError::DimMismatch {
                        left: self.shape(),
                        right: rhs.shape(),
                    });
                }
                let mut out = Self::zeros(self.rows, rhs.cols);
                for i in 0..self.rows {
                    for k in 0..self.cols {
                        let aik = self.at(i, k);
                        let lhs_row = i * rhs.cols;
                        let rhs_row = k * rhs.cols;
                        for j in 0..rhs.cols {
                            out.data[lhs_row + j] =
                                out.data[lhs_row + j] + aik * rhs.data[rhs_row + j];
                        }
                    }
                }
                Ok(out)
            }

            /// Kronecker (tensor) product `self (x) rhs`.
            pub fn kron(&self, rhs: &Self) -> Self {
                let rows = self.rows * rhs.rows;
                let cols = self.cols * rhs.cols;
                let mut out = Self::zeros(rows, cols);
                for i in 0..self.rows {
                    for j in 0..self.cols {
                        let a = self.at(i, j);
                        for k in 0..rhs.rows {
                            for l in 0..rhs.cols {
                                out.set(i * rhs.rows + k, j * rhs.cols + l, a * rhs.at(k, l));
                            }
                        }
                    }
                }
                out
            }

            /// Trace of a square matrix.
            ///
            /// # Panics
            ///
            /// Panics if the matrix is not square.
            pub fn trace(&self) -> $elem {
                assert!(self.is_square(), "trace requires a square matrix");
                let mut t = $zero;
                for i in 0..self.rows {
                    t = t + self.at(i, i);
                }
                t
            }

            /// Scales every element by a real factor.
            pub fn scaled(&self, k: f64) -> Self {
                let mut out = self.clone();
                for v in &mut out.data {
                    *v = *v * k;
                }
                out
            }
        }

        impl Add for &$name {
            type Output = $name;
            fn add(self, rhs: &$name) -> $name {
                self.check_same_shape(rhs).expect("matrix add shape");
                let mut out = self.clone();
                for (o, r) in out.data.iter_mut().zip(rhs.data.iter()) {
                    *o = *o + *r;
                }
                out
            }
        }

        impl Sub for &$name {
            type Output = $name;
            fn sub(self, rhs: &$name) -> $name {
                self.check_same_shape(rhs).expect("matrix sub shape");
                let mut out = self.clone();
                for (o, r) in out.data.iter_mut().zip(rhs.data.iter()) {
                    *o = *o - *r;
                }
                out
            }
        }

        impl Mul for &$name {
            type Output = $name;
            fn mul(self, rhs: &$name) -> $name {
                self.matmul(rhs).expect("matrix mul shape")
            }
        }
    };
}

/// Dense row-major real matrix.
///
/// # Examples
///
/// ```
/// use qismet_mathkit::RMatrix;
/// let a = RMatrix::identity(3);
/// let b = a.scaled(2.0);
/// assert_eq!((&a * &b).trace(), 6.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct RMatrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl_matrix_common!(RMatrix, f64, 0.0, 1.0);

impl RMatrix {
    /// Transpose.
    pub fn transpose(&self) -> RMatrix {
        let mut out = RMatrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out.set(j, i, self.at(i, j));
            }
        }
        out
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// Largest absolute off-diagonal element (convergence metric for Jacobi).
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square.
    pub fn max_offdiag_abs(&self) -> f64 {
        assert!(self.is_square());
        let mut m: f64 = 0.0;
        for i in 0..self.rows {
            for j in 0..self.cols {
                if i != j {
                    m = m.max(self.at(i, j).abs());
                }
            }
        }
        m
    }

    /// Returns `true` if `|a - b| <= tol` element-wise (same shape required).
    pub fn approx_eq(&self, other: &RMatrix, tol: f64) -> bool {
        self.shape() == other.shape()
            && self
                .data
                .iter()
                .zip(other.data.iter())
                .all(|(a, b)| (a - b).abs() <= tol)
    }

    /// Matrix-vector product.
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != self.cols`.
    pub fn matvec(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(v.len(), self.cols, "matvec dimension");
        let mut out = vec![0.0; self.rows];
        for i in 0..self.rows {
            let mut acc = 0.0;
            let base = i * self.cols;
            for j in 0..self.cols {
                acc += self.data[base + j] * v[j];
            }
            out[i] = acc;
        }
        out
    }

    /// Symmetrizes in place: `A <- (A + A^T) / 2`. Useful to clean up
    /// round-off drift before eigensolves.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square.
    pub fn symmetrize(&mut self) {
        assert!(self.is_square());
        for i in 0..self.rows {
            for j in (i + 1)..self.cols {
                let m = 0.5 * (self.at(i, j) + self.at(j, i));
                self.set(i, j, m);
                self.set(j, i, m);
            }
        }
    }
}

/// Dense row-major complex matrix.
///
/// # Examples
///
/// ```
/// use qismet_mathkit::{CMatrix, Complex64};
/// let x = CMatrix::from_rows(&[
///     &[Complex64::ZERO, Complex64::ONE],
///     &[Complex64::ONE, Complex64::ZERO],
/// ]);
/// assert!(x.is_hermitian(1e-12));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CMatrix {
    rows: usize,
    cols: usize,
    data: Vec<Complex64>,
}

impl_matrix_common!(CMatrix, Complex64, Complex64::ZERO, Complex64::ONE);

impl CMatrix {
    /// Conjugate transpose (adjoint).
    pub fn adjoint(&self) -> CMatrix {
        let mut out = CMatrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out.set(j, i, self.at(i, j).conj());
            }
        }
        out
    }

    /// Plain transpose without conjugation.
    pub fn transpose(&self) -> CMatrix {
        let mut out = CMatrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out.set(j, i, self.at(i, j));
            }
        }
        out
    }

    /// Builds a complex matrix from a real one.
    pub fn from_real(m: &RMatrix) -> CMatrix {
        let mut out = CMatrix::zeros(m.rows(), m.cols());
        for i in 0..m.rows() {
            for j in 0..m.cols() {
                out.set(i, j, Complex64::from_re(m.at(i, j)));
            }
        }
        out
    }

    /// Real part as an [`RMatrix`].
    pub fn real_part(&self) -> RMatrix {
        let mut out = RMatrix::zeros(self.rows, self.cols);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out.set(i, j, self.at(i, j).re);
            }
        }
        out
    }

    /// Imaginary part as an [`RMatrix`].
    pub fn imag_part(&self) -> RMatrix {
        let mut out = RMatrix::zeros(self.rows, self.cols);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out.set(i, j, self.at(i, j).im);
            }
        }
        out
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|v| v.norm_sqr()).sum::<f64>().sqrt()
    }

    /// Checks Hermiticity within an absolute tolerance.
    pub fn is_hermitian(&self, tol: f64) -> bool {
        if !self.is_square() {
            return false;
        }
        for i in 0..self.rows {
            if self.at(i, i).im.abs() > tol {
                return false;
            }
            for j in (i + 1)..self.cols {
                if !self.at(i, j).approx_eq(self.at(j, i).conj(), tol) {
                    return false;
                }
            }
        }
        true
    }

    /// Checks unitarity (`U^dagger U = I`) within an absolute tolerance.
    pub fn is_unitary(&self, tol: f64) -> bool {
        if !self.is_square() {
            return false;
        }
        let prod = self.adjoint().matmul(self).expect("square");
        let id = CMatrix::identity(self.rows);
        prod.approx_eq(&id, tol)
    }

    /// Returns `true` if `|a - b| <= tol` element-wise (same shape required).
    pub fn approx_eq(&self, other: &CMatrix, tol: f64) -> bool {
        self.shape() == other.shape()
            && self
                .data
                .iter()
                .zip(other.data.iter())
                .all(|(a, b)| a.approx_eq(*b, tol))
    }

    /// Matrix-vector product.
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != self.cols`.
    pub fn matvec(&self, v: &[Complex64]) -> Vec<Complex64> {
        assert_eq!(v.len(), self.cols, "matvec dimension");
        let mut out = vec![Complex64::ZERO; self.rows];
        for i in 0..self.rows {
            let mut acc = Complex64::ZERO;
            let base = i * self.cols;
            for j in 0..self.cols {
                acc += self.data[base + j] * v[j];
            }
            out[i] = acc;
        }
        out
    }

    /// Scales by a complex factor.
    pub fn scaled_c(&self, k: Complex64) -> CMatrix {
        let mut out = self.clone();
        for v in &mut out.data {
            *v = *v * k;
        }
        out
    }

    /// The expectation value `<v| A |v>`.
    ///
    /// # Panics
    ///
    /// Panics if shapes disagree.
    pub fn expectation(&self, v: &[Complex64]) -> Complex64 {
        let av = self.matvec(v);
        v.iter()
            .zip(av.iter())
            .map(|(vi, avi)| vi.conj() * *avi)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(re: f64, im: f64) -> Complex64 {
        Complex64::new(re, im)
    }

    #[test]
    fn identity_is_multiplicative_unit() {
        let a = RMatrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let i = RMatrix::identity(2);
        assert_eq!(&a * &i, a);
        assert_eq!(&i * &a, a);
    }

    #[test]
    fn matmul_known_product() {
        let a = RMatrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = RMatrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let expect = RMatrix::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]);
        assert_eq!(&a * &b, expect);
    }

    #[test]
    fn matmul_shape_error() {
        let a = RMatrix::zeros(2, 3);
        let b = RMatrix::zeros(2, 3);
        assert!(matches!(a.matmul(&b), Err(MatrixError::DimMismatch { .. })));
    }

    #[test]
    fn from_vec_shape_error() {
        assert!(matches!(
            RMatrix::from_vec(2, 2, vec![1.0; 3]),
            Err(MatrixError::BadShape { .. })
        ));
    }

    #[test]
    fn kron_of_identities() {
        let i2 = RMatrix::identity(2);
        let k = i2.kron(&i2);
        assert_eq!(k, RMatrix::identity(4));
    }

    #[test]
    fn kron_pauli_xz() {
        let x = RMatrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
        let z = RMatrix::from_rows(&[&[1.0, 0.0], &[0.0, -1.0]]);
        let xz = x.kron(&z);
        // X (x) Z has blocks [[0, Z],[Z, 0]].
        assert_eq!(xz.at(0, 2), 1.0);
        assert_eq!(xz.at(1, 3), -1.0);
        assert_eq!(xz.at(2, 0), 1.0);
        assert_eq!(xz.at(3, 1), -1.0);
        assert_eq!(xz.at(0, 0), 0.0);
    }

    #[test]
    fn complex_adjoint_and_hermiticity() {
        let y = CMatrix::from_rows(&[&[c(0.0, 0.0), c(0.0, -1.0)], &[c(0.0, 1.0), c(0.0, 0.0)]]);
        assert!(y.is_hermitian(1e-15));
        assert!(y.is_unitary(1e-15));
        let yh = y.adjoint();
        assert!(y.approx_eq(&yh, 1e-15));
    }

    #[test]
    fn expectation_of_pauli_z() {
        let z = CMatrix::from_rows(&[&[c(1.0, 0.0), c(0.0, 0.0)], &[c(0.0, 0.0), c(-1.0, 0.0)]]);
        let zero = [c(1.0, 0.0), c(0.0, 0.0)];
        let one = [c(0.0, 0.0), c(1.0, 0.0)];
        let plus = [c(std::f64::consts::FRAC_1_SQRT_2, 0.0); 2];
        assert!((z.expectation(&zero).re - 1.0).abs() < 1e-15);
        assert!((z.expectation(&one).re + 1.0).abs() < 1e-15);
        assert!(z.expectation(&plus).re.abs() < 1e-15);
    }

    #[test]
    fn trace_and_scale() {
        let a = RMatrix::from_rows(&[&[1.0, 5.0], &[9.0, 3.0]]);
        assert_eq!(a.trace(), 4.0);
        assert_eq!(a.scaled(2.0).trace(), 8.0);
    }

    #[test]
    fn transpose_involution() {
        let a = RMatrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn symmetrize_cleans_asymmetry() {
        let mut a = RMatrix::from_rows(&[&[1.0, 2.0], &[4.0, 3.0]]);
        a.symmetrize();
        assert_eq!(a.at(0, 1), 3.0);
        assert_eq!(a.at(1, 0), 3.0);
    }

    #[test]
    fn matvec_matches_matmul() {
        let a = RMatrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let v = [5.0, 6.0];
        assert_eq!(a.matvec(&v), vec![17.0, 39.0]);
    }

    #[test]
    fn real_imag_split_roundtrip() {
        let m = CMatrix::from_rows(&[&[c(1.0, 2.0), c(3.0, -4.0)]]);
        let re = m.real_part();
        let im = m.imag_part();
        assert_eq!(re.at(0, 1), 3.0);
        assert_eq!(im.at(0, 1), -4.0);
    }

    #[test]
    fn max_offdiag_finds_extremum() {
        let a = RMatrix::from_rows(&[&[9.0, -7.0], &[0.5, 9.0]]);
        assert_eq!(a.max_offdiag_abs(), 7.0);
    }
}

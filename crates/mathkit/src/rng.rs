//! Deterministic randomness utilities.
//!
//! Everything stochastic in the workspace (shot sampling, transient bursts,
//! SPSA perturbations) is seeded through here so paper artifacts regenerate
//! bit-identically. The only external dependency is `rand`'s `StdRng`;
//! distribution sampling (Gaussian, exponential, geometric) is implemented
//! locally because `rand_distr` is not part of the approved dependency set.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Derives an independent child seed from a parent seed and a stream label.
///
/// Uses SplitMix64 finalization so adjacent labels produce uncorrelated
/// streams. This is how, e.g., each VQA application/machine pair gets its own
/// transient-trace stream from one experiment master seed.
///
/// # Examples
///
/// ```
/// use qismet_mathkit::derive_seed;
/// let a = derive_seed(42, 0);
/// let b = derive_seed(42, 1);
/// assert_ne!(a, b);
/// assert_eq!(a, derive_seed(42, 0));
/// ```
pub fn derive_seed(parent: u64, stream: u64) -> u64 {
    let mut z = parent ^ stream.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Creates a deterministic RNG from a `u64` seed.
pub fn rng_from_seed(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Samples a standard normal deviate via the Marsaglia polar method.
///
/// Stateless (no cached second deviate) so call sites stay simple; the
/// discarded half costs little at our scales.
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    loop {
        let u = rng.gen::<f64>() * 2.0 - 1.0;
        let v = rng.gen::<f64>() * 2.0 - 1.0;
        let s = u * u + v * v;
        if s > 0.0 && s < 1.0 {
            return u * (-2.0 * s.ln() / s).sqrt();
        }
    }
}

/// Samples `N(mu, sigma^2)`.
///
/// # Panics
///
/// Panics if `sigma` is negative.
pub fn normal<R: Rng + ?Sized>(rng: &mut R, mu: f64, sigma: f64) -> f64 {
    assert!(sigma >= 0.0, "sigma must be non-negative");
    mu + sigma * standard_normal(rng)
}

/// Samples an exponential deviate with the given rate (`lambda`).
///
/// # Panics
///
/// Panics if `rate` is not strictly positive.
pub fn exponential<R: Rng + ?Sized>(rng: &mut R, rate: f64) -> f64 {
    assert!(rate > 0.0, "rate must be positive");
    let u: f64 = rng.gen::<f64>();
    // Guard the log against u == 0.
    -(1.0 - u).max(f64::MIN_POSITIVE).ln() / rate
}

/// Samples a geometric number of trials (support `1, 2, 3, ...`) with success
/// probability `p`.
///
/// # Panics
///
/// Panics if `p` is not in `(0, 1]`.
pub fn geometric<R: Rng + ?Sized>(rng: &mut R, p: f64) -> u64 {
    assert!(p > 0.0 && p <= 1.0, "p must be in (0, 1]");
    if p >= 1.0 {
        return 1;
    }
    let u: f64 = rng.gen::<f64>();
    let trials = (1.0 - u).max(f64::MIN_POSITIVE).ln() / (1.0 - p).ln();
    trials.ceil().max(1.0) as u64
}

/// Samples `true` with probability `p` (clamped to `[0, 1]`).
pub fn bernoulli<R: Rng + ?Sized>(rng: &mut R, p: f64) -> bool {
    rng.gen::<f64>() < p.clamp(0.0, 1.0)
}

/// Samples an index from a discrete (unnormalized) non-negative weight
/// vector. Returns the last index if rounding pushes the accumulated mass
/// past the end.
///
/// # Panics
///
/// Panics if `weights` is empty or the total mass is not positive.
pub fn sample_discrete<R: Rng + ?Sized>(rng: &mut R, weights: &[f64]) -> usize {
    assert!(!weights.is_empty(), "weights must be non-empty");
    let total: f64 = weights.iter().sum();
    assert!(total > 0.0, "total weight must be positive");
    let mut target = rng.gen::<f64>() * total;
    for (i, &w) in weights.iter().enumerate() {
        target -= w;
        if target <= 0.0 {
            return i;
        }
    }
    weights.len() - 1
}

/// Samples a heavy-tailed magnitude from a Pareto distribution with minimum
/// `x_min` and tail index `alpha`. Used for transient-burst magnitudes, which
/// the paper characterizes as rare but occasionally extreme.
///
/// # Panics
///
/// Panics if `x_min <= 0` or `alpha <= 0`.
pub fn pareto<R: Rng + ?Sized>(rng: &mut R, x_min: f64, alpha: f64) -> f64 {
    assert!(
        x_min > 0.0 && alpha > 0.0,
        "pareto parameters must be positive"
    );
    let u: f64 = rng.gen::<f64>();
    x_min / (1.0 - u).max(f64::MIN_POSITIVE).powf(1.0 / alpha)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_seeds_are_stable_and_distinct() {
        let s: Vec<u64> = (0..16).map(|k| derive_seed(1234, k)).collect();
        let again: Vec<u64> = (0..16).map(|k| derive_seed(1234, k)).collect();
        assert_eq!(s, again);
        for i in 0..s.len() {
            for j in (i + 1)..s.len() {
                assert_ne!(s[i], s[j], "collision between streams {i} and {j}");
            }
        }
    }

    #[test]
    fn normal_moments() {
        let mut rng = rng_from_seed(7);
        let n = 200_000;
        let xs: Vec<f64> = (0..n).map(|_| normal(&mut rng, 2.0, 3.0)).collect();
        let m = crate::stats::mean(&xs);
        let v = crate::stats::variance(&xs);
        assert!((m - 2.0).abs() < 0.05, "mean {m}");
        assert!((v - 9.0).abs() < 0.2, "variance {v}");
    }

    #[test]
    fn exponential_mean() {
        let mut rng = rng_from_seed(8);
        let n = 200_000;
        let xs: Vec<f64> = (0..n).map(|_| exponential(&mut rng, 2.0)).collect();
        let m = crate::stats::mean(&xs);
        assert!((m - 0.5).abs() < 0.01, "mean {m}");
        assert!(xs.iter().all(|&x| x >= 0.0));
    }

    #[test]
    fn geometric_mean_trials() {
        let mut rng = rng_from_seed(9);
        let n = 100_000;
        let p = 0.25;
        let xs: Vec<f64> = (0..n).map(|_| geometric(&mut rng, p) as f64).collect();
        let m = crate::stats::mean(&xs);
        assert!((m - 4.0).abs() < 0.1, "mean {m}");
        assert!(xs.iter().all(|&x| x >= 1.0));
    }

    #[test]
    fn geometric_p_one_is_always_one() {
        let mut rng = rng_from_seed(10);
        for _ in 0..100 {
            assert_eq!(geometric(&mut rng, 1.0), 1);
        }
    }

    #[test]
    fn bernoulli_frequency() {
        let mut rng = rng_from_seed(11);
        let n = 100_000;
        let hits = (0..n).filter(|_| bernoulli(&mut rng, 0.3)).count();
        let freq = hits as f64 / n as f64;
        assert!((freq - 0.3).abs() < 0.01, "freq {freq}");
    }

    #[test]
    fn discrete_sampling_respects_weights() {
        let mut rng = rng_from_seed(12);
        let weights = [1.0, 0.0, 3.0];
        let n = 100_000;
        let mut counts = [0usize; 3];
        for _ in 0..n {
            counts[sample_discrete(&mut rng, &weights)] += 1;
        }
        assert_eq!(counts[1], 0);
        let f0 = counts[0] as f64 / n as f64;
        assert!((f0 - 0.25).abs() < 0.01, "f0 {f0}");
    }

    #[test]
    fn pareto_respects_minimum() {
        let mut rng = rng_from_seed(13);
        for _ in 0..10_000 {
            assert!(pareto(&mut rng, 0.5, 2.0) >= 0.5);
        }
    }

    #[test]
    fn streams_reproduce() {
        let mut a = rng_from_seed(99);
        let mut b = rng_from_seed(99);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }
}

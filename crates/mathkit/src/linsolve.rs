//! Linear system solving and matrix inversion via partial-pivot LU.
//!
//! Used by the readout-error mitigation to invert calibration matrices and by
//! the chemistry SCF utilities. Matrix sizes are small (at most `2^6 = 64`
//! for full calibration matrices), so a textbook LU is appropriate.

// Dense index arithmetic reads clearest with explicit loop indices; the
// iterator rewrites clippy suggests obscure the row/column structure.
#![allow(clippy::needless_range_loop)]

use crate::matrix::{MatrixError, RMatrix};

/// LU decomposition with partial pivoting: `P A = L U`.
#[derive(Debug, Clone)]
pub struct Lu {
    /// Combined L (unit lower, below diagonal) and U (upper incl. diagonal).
    lu: RMatrix,
    /// Row permutation applied to the input.
    perm: Vec<usize>,
    /// Sign of the permutation (+1 or -1), used by the determinant.
    sign: f64,
}

impl Lu {
    /// Factors a square matrix.
    ///
    /// # Errors
    ///
    /// * [`MatrixError::NotSquare`] for non-square input.
    /// * [`MatrixError::Singular`] if a pivot underflows.
    pub fn factor(a: &RMatrix) -> Result<Lu, MatrixError> {
        if !a.is_square() {
            return Err(MatrixError::NotSquare { shape: a.shape() });
        }
        let n = a.rows();
        let mut lu = a.clone();
        let mut perm: Vec<usize> = (0..n).collect();
        let mut sign = 1.0;
        for col in 0..n {
            // Pivot selection.
            let mut pivot_row = col;
            let mut pivot_val = lu.at(col, col).abs();
            for r in (col + 1)..n {
                let v = lu.at(r, col).abs();
                if v > pivot_val {
                    pivot_val = v;
                    pivot_row = r;
                }
            }
            if pivot_val < 1e-300 {
                return Err(MatrixError::Singular);
            }
            if pivot_row != col {
                for c in 0..n {
                    let tmp = lu.at(col, c);
                    lu.set(col, c, lu.at(pivot_row, c));
                    lu.set(pivot_row, c, tmp);
                }
                perm.swap(col, pivot_row);
                sign = -sign;
            }
            let inv_p = 1.0 / lu.at(col, col);
            for r in (col + 1)..n {
                let factor = lu.at(r, col) * inv_p;
                lu.set(r, col, factor);
                for c in (col + 1)..n {
                    let v = lu.at(r, c) - factor * lu.at(col, c);
                    lu.set(r, c, v);
                }
            }
        }
        Ok(Lu { lu, perm, sign })
    }

    /// Solves `A x = b` using the stored factorization.
    ///
    /// # Panics
    ///
    /// Panics if `b.len()` does not match the factored dimension.
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        let n = self.lu.rows();
        assert_eq!(b.len(), n, "rhs length");
        // Apply permutation, then forward/back substitution.
        let mut x: Vec<f64> = self.perm.iter().map(|&p| b[p]).collect();
        for i in 1..n {
            let mut acc = x[i];
            for j in 0..i {
                acc -= self.lu.at(i, j) * x[j];
            }
            x[i] = acc;
        }
        for i in (0..n).rev() {
            let mut acc = x[i];
            for j in (i + 1)..n {
                acc -= self.lu.at(i, j) * x[j];
            }
            x[i] = acc / self.lu.at(i, i);
        }
        x
    }

    /// Determinant of the factored matrix.
    pub fn det(&self) -> f64 {
        let n = self.lu.rows();
        let mut d = self.sign;
        for i in 0..n {
            d *= self.lu.at(i, i);
        }
        d
    }
}

/// Solves `A x = b` for a single right-hand side.
///
/// # Errors
///
/// Propagates factorization failures ([`MatrixError::Singular`] etc.).
///
/// # Examples
///
/// ```
/// use qismet_mathkit::{solve, RMatrix};
/// let a = RMatrix::from_rows(&[&[2.0, 0.0], &[0.0, 4.0]]);
/// let x = solve(&a, &[2.0, 8.0]).unwrap();
/// assert!((x[0] - 1.0).abs() < 1e-12);
/// assert!((x[1] - 2.0).abs() < 1e-12);
/// ```
pub fn solve(a: &RMatrix, b: &[f64]) -> Result<Vec<f64>, MatrixError> {
    Ok(Lu::factor(a)?.solve(b))
}

/// Inverts a square matrix.
///
/// # Errors
///
/// Propagates factorization failures ([`MatrixError::Singular`] etc.).
pub fn invert(a: &RMatrix) -> Result<RMatrix, MatrixError> {
    let lu = Lu::factor(a)?;
    let n = a.rows();
    let mut out = RMatrix::zeros(n, n);
    let mut e = vec![0.0; n];
    for col in 0..n {
        e[col] = 1.0;
        let x = lu.solve(&e);
        e[col] = 0.0;
        for row in 0..n {
            out.set(row, col, x[row]);
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solve_2x2() {
        let a = RMatrix::from_rows(&[&[3.0, 2.0], &[1.0, 4.0]]);
        let x = solve(&a, &[7.0, 9.0]).unwrap();
        // 3x + 2y = 7; x + 4y = 9 => x = 1, y = 2.
        assert!((x[0] - 1.0).abs() < 1e-12);
        assert!((x[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn solve_requires_pivoting() {
        let a = RMatrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
        let x = solve(&a, &[5.0, 7.0]).unwrap();
        assert!((x[0] - 7.0).abs() < 1e-12);
        assert!((x[1] - 5.0).abs() < 1e-12);
    }

    #[test]
    fn invert_roundtrip() {
        let a = RMatrix::from_rows(&[&[4.0, 2.0, 0.5], &[2.0, 5.0, 1.0], &[0.5, 1.0, 3.0]]);
        let inv = invert(&a).unwrap();
        let prod = &a * &inv;
        assert!(prod.approx_eq(&RMatrix::identity(3), 1e-10));
    }

    #[test]
    fn singular_detected() {
        let a = RMatrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]);
        assert_eq!(invert(&a).unwrap_err(), MatrixError::Singular);
    }

    #[test]
    fn determinant_matches() {
        let a = RMatrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let lu = Lu::factor(&a).unwrap();
        assert!((lu.det() + 2.0).abs() < 1e-12);
    }

    #[test]
    fn determinant_sign_with_pivot_swap() {
        let a = RMatrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
        let lu = Lu::factor(&a).unwrap();
        assert!((lu.det() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn non_square_rejected() {
        let a = RMatrix::zeros(2, 3);
        assert!(matches!(Lu::factor(&a), Err(MatrixError::NotSquare { .. })));
    }

    #[test]
    fn larger_random_system() {
        let n = 16;
        let mut a = RMatrix::zeros(n, n);
        let mut state = 7u64;
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
        };
        for i in 0..n {
            for j in 0..n {
                a.set(i, j, next());
            }
            // Diagonal dominance to guarantee non-singularity.
            let v = a.at(i, i);
            a.set(i, i, v + 4.0);
        }
        let b: Vec<f64> = (0..n).map(|i| i as f64 - 3.0).collect();
        let x = solve(&a, &b).unwrap();
        let ax = a.matvec(&x);
        for i in 0..n {
            assert!((ax[i] - b[i]).abs() < 1e-9);
        }
    }
}

//! Descriptive statistics used by the evaluation harnesses: means, variances,
//! percentiles (the `99p`/`90p`/`75p` thresholds of the paper), and the
//! geometric mean used in Figs. 13 and 17.

/// Arithmetic mean. Returns `0.0` for an empty slice.
///
/// # Examples
///
/// ```
/// assert_eq!(qismet_mathkit::mean(&[1.0, 2.0, 3.0]), 2.0);
/// ```
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Unbiased sample variance (`n - 1` denominator). Returns `0.0` for fewer
/// than two samples.
pub fn variance(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64
}

/// Sample standard deviation.
pub fn stddev(xs: &[f64]) -> f64 {
    variance(xs).sqrt()
}

/// Population variance (`n` denominator). Returns `0.0` for an empty slice.
pub fn variance_population(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64
}

/// Linearly interpolated percentile, `p` in `[0, 100]`.
///
/// Matches the common "linear" (NumPy default) definition. Returns `NaN` for
/// an empty slice.
///
/// # Panics
///
/// Panics if `p` is outside `[0, 100]` or any element is NaN.
///
/// # Examples
///
/// ```
/// use qismet_mathkit::percentile;
/// let xs = [1.0, 2.0, 3.0, 4.0];
/// assert_eq!(percentile(&xs, 50.0), 2.5);
/// assert_eq!(percentile(&xs, 100.0), 4.0);
/// ```
pub fn percentile(xs: &[f64], p: f64) -> f64 {
    assert!((0.0..=100.0).contains(&p), "percentile must be in [0, 100]");
    if xs.is_empty() {
        return f64::NAN;
    }
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in percentile input"));
    let rank = p / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = rank - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// Median (50th percentile).
pub fn median(xs: &[f64]) -> f64 {
    percentile(xs, 50.0)
}

/// Geometric mean of strictly positive values. Returns `NaN` if any value is
/// non-positive or the slice is empty.
///
/// # Examples
///
/// ```
/// use qismet_mathkit::geomean;
/// assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
/// ```
pub fn geomean(xs: &[f64]) -> f64 {
    if xs.is_empty() || xs.iter().any(|&x| x <= 0.0) {
        return f64::NAN;
    }
    (xs.iter().map(|x| x.ln()).sum::<f64>() / xs.len() as f64).exp()
}

/// Minimum of a slice. Returns `NaN` for an empty slice.
pub fn min(xs: &[f64]) -> f64 {
    xs.iter().copied().fold(f64::NAN, f64::min)
}

/// Maximum of a slice. Returns `NaN` for an empty slice.
pub fn max(xs: &[f64]) -> f64 {
    xs.iter().copied().fold(f64::NAN, f64::max)
}

/// Running (cumulative) minimum — useful for "best objective so far" curves.
pub fn running_min(xs: &[f64]) -> Vec<f64> {
    let mut best = f64::INFINITY;
    xs.iter()
        .map(|&x| {
            best = best.min(x);
            best
        })
        .collect()
}

/// Simple trailing moving average with window `w` (window is clipped at the
/// start of the series).
///
/// # Panics
///
/// Panics if `w == 0`.
pub fn moving_average(xs: &[f64], w: usize) -> Vec<f64> {
    assert!(w > 0, "window must be positive");
    let mut out = Vec::with_capacity(xs.len());
    let mut acc = 0.0;
    for i in 0..xs.len() {
        acc += xs[i];
        if i >= w {
            acc -= xs[i - w];
        }
        let n = (i + 1).min(w);
        out.push(acc / n as f64);
    }
    out
}

/// Pearson correlation of two equal-length series. Returns `NaN` when either
/// series is constant or the lengths differ.
pub fn pearson(xs: &[f64], ys: &[f64]) -> f64 {
    if xs.len() != ys.len() || xs.len() < 2 {
        return f64::NAN;
    }
    let mx = mean(xs);
    let my = mean(ys);
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for (x, y) in xs.iter().zip(ys.iter()) {
        sxy += (x - mx) * (y - my);
        sxx += (x - mx) * (x - mx);
        syy += (y - my) * (y - my);
    }
    if sxx == 0.0 || syy == 0.0 {
        return f64::NAN;
    }
    sxy / (sxx * syy).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_variance() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert_eq!(mean(&xs), 5.0);
        assert!((variance_population(&xs) - 4.0).abs() < 1e-12);
        assert!((variance(&xs) - 32.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn empty_inputs_are_safe() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(variance(&[]), 0.0);
        assert!(percentile(&[], 50.0).is_nan());
        assert!(geomean(&[]).is_nan());
        assert!(min(&[]).is_nan());
    }

    #[test]
    fn percentile_interpolates() {
        let xs = [10.0, 20.0, 30.0, 40.0, 50.0];
        assert_eq!(percentile(&xs, 0.0), 10.0);
        assert_eq!(percentile(&xs, 25.0), 20.0);
        assert_eq!(percentile(&xs, 50.0), 30.0);
        assert_eq!(percentile(&xs, 90.0), 46.0);
        assert_eq!(percentile(&xs, 100.0), 50.0);
    }

    #[test]
    fn percentile_unsorted_input() {
        let xs = [50.0, 10.0, 40.0, 20.0, 30.0];
        assert_eq!(percentile(&xs, 50.0), 30.0);
    }

    #[test]
    #[should_panic(expected = "percentile must be in")]
    fn percentile_range_checked() {
        percentile(&[1.0], 101.0);
    }

    #[test]
    fn geomean_matches_paper_style_ratios() {
        // Fig. 13 style: per-machine improvement ratios.
        let ratios = [1.42, 1.50, 1.51, 1.29, 1.35, 1.27];
        let g = geomean(&ratios);
        assert!(g > 1.35 && g < 1.42, "geomean {g} out of expected band");
    }

    #[test]
    fn geomean_rejects_nonpositive() {
        assert!(geomean(&[1.0, -1.0]).is_nan());
        assert!(geomean(&[1.0, 0.0]).is_nan());
    }

    #[test]
    fn running_min_is_monotone() {
        let xs = [3.0, 1.0, 2.0, 0.5, 4.0];
        assert_eq!(running_min(&xs), vec![3.0, 1.0, 1.0, 0.5, 0.5]);
    }

    #[test]
    fn moving_average_window() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(moving_average(&xs, 2), vec![1.0, 1.5, 2.5, 3.5]);
        assert_eq!(moving_average(&xs, 1), xs.to_vec());
    }

    #[test]
    fn pearson_perfect_correlation() {
        let xs = [1.0, 2.0, 3.0];
        let ys = [2.0, 4.0, 6.0];
        assert!((pearson(&xs, &ys) - 1.0).abs() < 1e-12);
        let neg = [6.0, 4.0, 2.0];
        assert!((pearson(&xs, &neg) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_degenerate() {
        assert!(pearson(&[1.0, 1.0], &[2.0, 3.0]).is_nan());
        assert!(pearson(&[1.0], &[2.0]).is_nan());
    }

    #[test]
    fn median_odd_even() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), 2.5);
    }
}

//! Finite-difference gradient descent and Adam.
//!
//! Extensions beyond the paper's comparison set: the paper's tuner is SPSA
//! throughout, but a full VQA framework offers deterministic-gradient
//! optimizers too, and they serve as additional baselines in the workspace's
//! extension benches.

use crate::schedule::GainSchedule;
use crate::traits::{EvalRecord, Proposal, Proposer};

/// Central finite-difference gradient descent (2 * dim evaluations per
/// iteration).
#[derive(Debug, Clone)]
pub struct FiniteDiffGd {
    dim: usize,
    gains: GainSchedule,
    k: usize,
}

impl FiniteDiffGd {
    /// Creates the optimizer.
    ///
    /// # Panics
    ///
    /// Panics if `dim == 0` or the schedule is invalid.
    pub fn new(dim: usize, gains: GainSchedule) -> Self {
        assert!(dim > 0, "dimension must be positive");
        gains.validate().expect("invalid gain schedule");
        FiniteDiffGd { dim, gains, k: 0 }
    }
}

fn central_difference_points(theta: &[f64], eps: f64) -> Vec<Vec<f64>> {
    let mut points = Vec::with_capacity(2 * theta.len());
    for i in 0..theta.len() {
        let mut plus = theta.to_vec();
        plus[i] += eps;
        let mut minus = theta.to_vec();
        minus[i] -= eps;
        points.push(plus);
        points.push(minus);
    }
    points
}

impl Proposer for FiniteDiffGd {
    fn eval_points(&mut self, theta: &[f64]) -> Option<Vec<Vec<f64>>> {
        assert_eq!(theta.len(), self.dim, "parameter dimension");
        Some(central_difference_points(
            theta,
            self.gains.perturbation(self.k),
        ))
    }

    fn propose(&mut self, theta: &[f64], objective: &mut dyn FnMut(&[f64]) -> f64) -> Proposal {
        assert_eq!(theta.len(), self.dim, "parameter dimension");
        let eps = self.gains.perturbation(self.k);
        let mut gradient = Vec::with_capacity(self.dim);
        let mut evals = Vec::with_capacity(2 * self.dim);
        for i in 0..self.dim {
            let mut plus = theta.to_vec();
            plus[i] += eps;
            let mut minus = theta.to_vec();
            minus[i] -= eps;
            let fp = objective(&plus);
            let fm = objective(&minus);
            gradient.push((fp - fm) / (2.0 * eps));
            evals.push(EvalRecord {
                params: plus,
                value: fp,
            });
            evals.push(EvalRecord {
                params: minus,
                value: fm,
            });
        }
        let ak = self.gains.step_size(self.k);
        let candidate = theta
            .iter()
            .zip(&gradient)
            .map(|(t, g)| t - ak * g)
            .collect();
        Proposal {
            candidate,
            gradient,
            evals,
        }
    }

    fn advance(&mut self) {
        self.k += 1;
    }

    fn iteration(&self) -> usize {
        self.k
    }

    fn evals_per_proposal(&self) -> usize {
        2 * self.dim
    }

    fn name(&self) -> &'static str {
        "finite-diff-gd"
    }
}

/// Adam over central finite-difference gradients.
#[derive(Debug, Clone)]
pub struct Adam {
    dim: usize,
    step: f64,
    eps_fd: f64,
    beta1: f64,
    beta2: f64,
    epsilon: f64,
    k: usize,
    m: Vec<f64>,
    v: Vec<f64>,
    pending: Option<(Vec<f64>, Vec<f64>)>,
}

impl Adam {
    /// Creates Adam with the usual defaults (`beta1 = 0.9`, `beta2 = 0.999`).
    ///
    /// # Panics
    ///
    /// Panics if `dim == 0`, or `step`/`eps_fd` are non-positive.
    pub fn new(dim: usize, step: f64, eps_fd: f64) -> Self {
        assert!(dim > 0, "dimension must be positive");
        assert!(step > 0.0 && eps_fd > 0.0, "step sizes must be positive");
        Adam {
            dim,
            step,
            eps_fd,
            beta1: 0.9,
            beta2: 0.999,
            epsilon: 1e-8,
            k: 0,
            m: vec![0.0; dim],
            v: vec![0.0; dim],
            pending: None,
        }
    }
}

impl Proposer for Adam {
    fn eval_points(&mut self, theta: &[f64]) -> Option<Vec<Vec<f64>>> {
        assert_eq!(theta.len(), self.dim, "parameter dimension");
        Some(central_difference_points(theta, self.eps_fd))
    }

    fn propose(&mut self, theta: &[f64], objective: &mut dyn FnMut(&[f64]) -> f64) -> Proposal {
        assert_eq!(theta.len(), self.dim, "parameter dimension");
        let mut gradient = Vec::with_capacity(self.dim);
        let mut evals = Vec::with_capacity(2 * self.dim);
        for i in 0..self.dim {
            let mut plus = theta.to_vec();
            plus[i] += self.eps_fd;
            let mut minus = theta.to_vec();
            minus[i] -= self.eps_fd;
            let fp = objective(&plus);
            let fm = objective(&minus);
            gradient.push((fp - fm) / (2.0 * self.eps_fd));
            evals.push(EvalRecord {
                params: plus,
                value: fp,
            });
            evals.push(EvalRecord {
                params: minus,
                value: fm,
            });
        }
        // Compute the moment updates without committing them (retry safety).
        let t = (self.k + 1) as f64;
        let mut m_new = Vec::with_capacity(self.dim);
        let mut v_new = Vec::with_capacity(self.dim);
        let mut candidate = Vec::with_capacity(self.dim);
        for i in 0..self.dim {
            let m_i = self.beta1 * self.m[i] + (1.0 - self.beta1) * gradient[i];
            let v_i = self.beta2 * self.v[i] + (1.0 - self.beta2) * gradient[i] * gradient[i];
            let m_hat = m_i / (1.0 - self.beta1.powf(t));
            let v_hat = v_i / (1.0 - self.beta2.powf(t));
            candidate.push(theta[i] - self.step * m_hat / (v_hat.sqrt() + self.epsilon));
            m_new.push(m_i);
            v_new.push(v_i);
        }
        self.pending = Some((m_new, v_new));
        Proposal {
            candidate,
            gradient,
            evals,
        }
    }

    fn advance(&mut self) {
        if let Some((m, v)) = self.pending.take() {
            self.m = m;
            self.v = v;
        }
        self.k += 1;
    }

    fn iteration(&self) -> usize {
        self.k
    }

    fn evals_per_proposal(&self) -> usize {
        2 * self.dim
    }

    fn name(&self) -> &'static str {
        "adam"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::run_baseline;

    fn rosenbrock2(x: &[f64]) -> f64 {
        let (a, b) = (1.0, 100.0);
        (a - x[0]).powi(2) + b * (x[1] - x[0] * x[0]).powi(2)
    }

    fn sphere(x: &[f64]) -> f64 {
        x.iter().map(|v| v * v).sum()
    }

    #[test]
    fn gd_descends_sphere() {
        let mut gd = FiniteDiffGd::new(3, GainSchedule::spall_default());
        let mut f = |x: &[f64]| sphere(x);
        let (theta, _) = run_baseline(&mut gd, vec![1.0, -2.0, 0.5], &mut f, 300);
        assert!(sphere(&theta) < 1e-3, "residual {}", sphere(&theta));
    }

    #[test]
    fn gd_eval_count() {
        let mut gd = FiniteDiffGd::new(5, GainSchedule::spall_default());
        assert_eq!(gd.evals_per_proposal(), 10);
        let mut f = |x: &[f64]| sphere(x);
        let p = gd.propose(&[0.0; 5], &mut f);
        assert_eq!(p.n_evals(), 10);
    }

    #[test]
    fn adam_descends_sphere() {
        let mut adam = Adam::new(2, 0.05, 1e-4);
        let mut f = |x: &[f64]| sphere(x);
        let (theta, _) = run_baseline(&mut adam, vec![1.5, -0.5], &mut f, 400);
        assert!(sphere(&theta) < 1e-3, "residual {}", sphere(&theta));
    }

    #[test]
    fn adam_makes_progress_on_rosenbrock() {
        let mut adam = Adam::new(2, 0.02, 1e-4);
        let mut f = |x: &[f64]| rosenbrock2(x);
        let start = rosenbrock2(&[-1.0, 1.0]);
        let (theta, _) = run_baseline(&mut adam, vec![-1.0, 1.0], &mut f, 1500);
        let end = rosenbrock2(&theta);
        assert!(end < start * 0.1, "start {start}, end {end}");
    }

    #[test]
    fn adam_retry_is_pure() {
        let mut adam = Adam::new(2, 0.05, 1e-4);
        let mut f = |x: &[f64]| sphere(x);
        let p1 = adam.propose(&[1.0, 1.0], &mut f);
        let p2 = adam.propose(&[1.0, 1.0], &mut f);
        assert_eq!(p1, p2);
    }

    #[test]
    fn fd_gradient_is_accurate() {
        let mut gd = FiniteDiffGd::new(2, GainSchedule::spall_default());
        let mut f = |x: &[f64]| sphere(x);
        let p = gd.propose(&[1.0, -0.5], &mut f);
        // True gradient is (2, -1).
        assert!((p.gradient[0] - 2.0).abs() < 1e-2);
        assert!((p.gradient[1] + 1.0).abs() < 1e-2);
    }
}

//! # qismet-optim
//!
//! Classical optimizers for the QISMET reproduction (ASPLOS 2023). The
//! paper tunes its VQAs with SPSA and compares against the SPSA variants a
//! practitioner would reach for when fighting noise (Section 6.3):
//!
//! * [`Spsa`] — standard Spall SPSA, the **Baseline** tuner, including the
//!   **Resampling** variant via [`Spsa::with_resampling`].
//! * [`SecondOrderSpsa`] — the **2nd-order** (2-SPSA) scheme with smoothed,
//!   regularized Hessian preconditioning.
//! * [`BlockingPolicy`] — the **Blocking** acceptance rule (fixed or
//!   adaptive tolerance).
//! * [`FiniteDiffGd`] / [`Adam`] — deterministic-gradient extensions used by
//!   the workspace's extra benches.
//!
//! The central design point is the [`Proposer`] trait: optimizers do not own
//! their loops. QISMET's controller needs to veto and retry iterations
//! (paper Fig. 7), so `propose` must be re-callable with frozen algorithm
//! randomness, and internal state commits only on `advance`.
//!
//! # Examples
//!
//! ```
//! use qismet_optim::{run_baseline, GainSchedule, Proposer, Spsa};
//!
//! let mut spsa = Spsa::new(2, GainSchedule::spall_default(), 1);
//! let mut objective = |x: &[f64]| x.iter().map(|v| v * v).sum::<f64>();
//! let (theta, _) = run_baseline(&mut spsa, vec![1.0, -1.0], &mut objective, 200);
//! assert!(objective(&theta) < 0.1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod blocking;
mod gd;
mod schedule;
mod second_order;
mod spsa;
mod traits;

pub use blocking::BlockingPolicy;
pub use gd::{Adam, FiniteDiffGd};
pub use schedule::GainSchedule;
pub use second_order::SecondOrderSpsa;
pub use spsa::Spsa;
pub use traits::{run_baseline, EvalRecord, Proposal, Proposer};

//! The proposer interface shared by all optimizers.
//!
//! QISMET must be able to **veto** and **retry** optimizer steps (Fig. 7 of
//! the paper), so optimizers here do not run their own loops. Instead they
//! expose `propose` — evaluate whatever the algorithm needs and return a
//! candidate parameter vector — and `advance` — commit internal state once
//! the surrounding controller accepts an iteration. Calling `propose` again
//! without `advance` (a QISMET retry) re-evaluates the same logical
//! iteration under fresh noise, holding algorithm randomness (e.g. the SPSA
//! perturbation direction) fixed.

/// One objective evaluation record: the parameters queried and the value
/// returned by the (noisy) objective.
#[derive(Debug, Clone, PartialEq)]
pub struct EvalRecord {
    /// Parameters evaluated.
    pub params: Vec<f64>,
    /// Objective value observed.
    pub value: f64,
}

/// The outcome of one proposed optimizer step.
#[derive(Debug, Clone, PartialEq)]
pub struct Proposal {
    /// The proposed next parameter vector.
    pub candidate: Vec<f64>,
    /// The gradient estimate used (empty for gradient-free proposals).
    pub gradient: Vec<f64>,
    /// Every objective evaluation made while forming the proposal.
    pub evals: Vec<EvalRecord>,
}

impl Proposal {
    /// Number of objective evaluations consumed.
    pub fn n_evals(&self) -> usize {
        self.evals.len()
    }
}

/// A steppable optimizer.
///
/// Implementations must make `propose` *re-callable*: invoking it twice at
/// the same iteration index (without an intervening [`Proposer::advance`])
/// must use the same internal randomness, so that a retry differs only
/// through the objective's noise.
pub trait Proposer {
    /// Evaluates the objective as needed and proposes the next parameters.
    fn propose(&mut self, theta: &[f64], objective: &mut dyn FnMut(&[f64]) -> f64) -> Proposal;

    /// Commits the current iteration (called when the controller accepts).
    fn advance(&mut self);

    /// Current iteration index (number of `advance` calls so far).
    fn iteration(&self) -> usize;

    /// Objective evaluations per proposal (for overhead accounting).
    fn evals_per_proposal(&self) -> usize;

    /// Short algorithm name for reports.
    fn name(&self) -> &'static str;
}

/// Runs a plain optimization loop (no transient mitigation): propose,
/// always accept, `advance`, for `iterations` steps. Returns the parameter
/// trajectory's final point and the per-iteration candidate energies.
///
/// This is the **Baseline** configuration of the paper's Section 6.3 (when
/// driven with a noisy objective) and the "Noise-free" reference (when
/// driven with an exact objective).
pub fn run_baseline(
    proposer: &mut dyn Proposer,
    theta0: Vec<f64>,
    objective: &mut dyn FnMut(&[f64]) -> f64,
    iterations: usize,
) -> (Vec<f64>, Vec<f64>) {
    let mut theta = theta0;
    let mut energies = Vec::with_capacity(iterations);
    for _ in 0..iterations {
        let proposal = proposer.propose(&theta, objective);
        theta = proposal.candidate;
        let e = objective(&theta);
        energies.push(e);
        proposer.advance();
    }
    (theta, energies)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spsa::Spsa;
    use crate::GainSchedule;

    fn quadratic(x: &[f64]) -> f64 {
        x.iter().map(|v| (v - 1.0) * (v - 1.0)).sum()
    }

    #[test]
    fn baseline_loop_descends_quadratic() {
        let mut spsa = Spsa::new(3, GainSchedule::spall_default(), 7);
        let mut f = |x: &[f64]| quadratic(x);
        let theta0 = vec![3.0, -2.0, 0.5];
        let start = quadratic(&theta0);
        let (theta, energies) = run_baseline(&mut spsa, theta0, &mut f, 300);
        let end = quadratic(&theta);
        assert!(end < start * 0.05, "start {start} end {end}");
        assert_eq!(energies.len(), 300);
    }

    #[test]
    fn proposal_records_evals() {
        let mut spsa = Spsa::new(2, GainSchedule::spall_default(), 3);
        let mut f = |x: &[f64]| quadratic(x);
        let p = spsa.propose(&[0.0, 0.0], &mut f);
        assert_eq!(p.n_evals(), 2);
        assert_eq!(p.gradient.len(), 2);
        assert_eq!(p.candidate.len(), 2);
    }
}

//! The proposer interface shared by all optimizers.
//!
//! QISMET must be able to **veto** and **retry** optimizer steps (Fig. 7 of
//! the paper), so optimizers here do not run their own loops. Instead they
//! expose `propose` — evaluate whatever the algorithm needs and return a
//! candidate parameter vector — and `advance` — commit internal state once
//! the surrounding controller accepts an iteration. Calling `propose` again
//! without `advance` (a QISMET retry) re-evaluates the same logical
//! iteration under fresh noise, holding algorithm randomness (e.g. the SPSA
//! perturbation direction) fixed.

/// One objective evaluation record: the parameters queried and the value
/// returned by the (noisy) objective.
#[derive(Debug, Clone, PartialEq)]
pub struct EvalRecord {
    /// Parameters evaluated.
    pub params: Vec<f64>,
    /// Objective value observed.
    pub value: f64,
}

/// The outcome of one proposed optimizer step.
#[derive(Debug, Clone, PartialEq)]
pub struct Proposal {
    /// The proposed next parameter vector.
    pub candidate: Vec<f64>,
    /// The gradient estimate used (empty for gradient-free proposals).
    pub gradient: Vec<f64>,
    /// Every objective evaluation made while forming the proposal.
    pub evals: Vec<EvalRecord>,
}

impl Proposal {
    /// Number of objective evaluations consumed.
    pub fn n_evals(&self) -> usize {
        self.evals.len()
    }
}

/// A steppable optimizer.
///
/// Implementations must make `propose` *re-callable*: invoking it twice at
/// the same iteration index (without an intervening [`Proposer::advance`])
/// must use the same internal randomness, so that a retry differs only
/// through the objective's noise.
pub trait Proposer {
    /// Evaluates the objective as needed and proposes the next parameters.
    fn propose(&mut self, theta: &[f64], objective: &mut dyn FnMut(&[f64]) -> f64) -> Proposal;

    /// The parameter points this iteration's [`Proposer::propose`] would
    /// evaluate, in evaluation order — or `None` when the optimizer's
    /// queries depend on intermediate objective values and cannot be known
    /// up front.
    ///
    /// When `Some`, callers may evaluate the whole list as **one batched
    /// quantum job** and feed the results to [`Proposer::propose_from`];
    /// the pair must produce exactly the proposal `propose` would have. All
    /// optimizers in this crate support this (their query points depend
    /// only on `theta` and frozen per-iteration randomness).
    fn eval_points(&mut self, _theta: &[f64]) -> Option<Vec<Vec<f64>>> {
        None
    }

    /// Builds the proposal from pre-computed objective values for
    /// [`Proposer::eval_points`], in the same order.
    ///
    /// The default implementation replays `propose` with the supplied
    /// values, which guarantees bitwise-identical proposals for any
    /// optimizer whose evaluation order is deterministic.
    ///
    /// # Panics
    ///
    /// Panics if fewer values are supplied than `propose` consumes.
    fn propose_from(&mut self, theta: &[f64], values: &[f64]) -> Proposal {
        let mut next = 0usize;
        let mut replay = |_params: &[f64]| {
            let v = values
                .get(next)
                .copied()
                .expect("propose_from: fewer values than the proposer evaluates");
            next += 1;
            v
        };
        self.propose(theta, &mut replay)
    }

    /// Commits the current iteration (called when the controller accepts).
    fn advance(&mut self);

    /// Current iteration index (number of `advance` calls so far).
    fn iteration(&self) -> usize;

    /// Objective evaluations per proposal (for overhead accounting).
    fn evals_per_proposal(&self) -> usize;

    /// Short algorithm name for reports.
    fn name(&self) -> &'static str;
}

/// Runs a plain optimization loop (no transient mitigation): propose,
/// always accept, `advance`, for `iterations` steps. Returns the parameter
/// trajectory's final point and the per-iteration candidate energies.
///
/// This is the **Baseline** configuration of the paper's Section 6.3 (when
/// driven with a noisy objective) and the "Noise-free" reference (when
/// driven with an exact objective).
pub fn run_baseline(
    proposer: &mut dyn Proposer,
    theta0: Vec<f64>,
    objective: &mut dyn FnMut(&[f64]) -> f64,
    iterations: usize,
) -> (Vec<f64>, Vec<f64>) {
    let mut theta = theta0;
    let mut energies = Vec::with_capacity(iterations);
    for _ in 0..iterations {
        let proposal = proposer.propose(&theta, objective);
        theta = proposal.candidate;
        let e = objective(&theta);
        energies.push(e);
        proposer.advance();
    }
    (theta, energies)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spsa::Spsa;
    use crate::GainSchedule;

    fn quadratic(x: &[f64]) -> f64 {
        x.iter().map(|v| (v - 1.0) * (v - 1.0)).sum()
    }

    #[test]
    fn baseline_loop_descends_quadratic() {
        let mut spsa = Spsa::new(3, GainSchedule::spall_default(), 7);
        let mut f = |x: &[f64]| quadratic(x);
        let theta0 = vec![3.0, -2.0, 0.5];
        let start = quadratic(&theta0);
        let (theta, energies) = run_baseline(&mut spsa, theta0, &mut f, 300);
        let end = quadratic(&theta);
        assert!(end < start * 0.05, "start {start} end {end}");
        assert_eq!(energies.len(), 300);
    }

    #[test]
    fn proposal_records_evals() {
        let mut spsa = Spsa::new(2, GainSchedule::spall_default(), 3);
        let mut f = |x: &[f64]| quadratic(x);
        let p = spsa.propose(&[0.0, 0.0], &mut f);
        assert_eq!(p.n_evals(), 2);
        assert_eq!(p.gradient.len(), 2);
        assert_eq!(p.candidate.len(), 2);
    }

    /// `eval_points` + `propose_from` must reproduce `propose` bitwise for
    /// every optimizer in the crate — that equivalence is what lets the
    /// runners batch a whole iteration into one quantum job.
    #[test]
    fn batched_proposal_path_matches_callback_path() {
        let gains = GainSchedule::spall_default();
        let proposers: Vec<Box<dyn Proposer>> = vec![
            Box::new(Spsa::new(3, gains, 7)),
            Box::new(Spsa::with_resampling(3, gains, 7, 3)),
            Box::new(crate::SecondOrderSpsa::new(3, gains, 7)),
            Box::new(crate::FiniteDiffGd::new(3, gains)),
            Box::new(crate::Adam::new(3, 0.05, 1e-3)),
        ];
        let theta = vec![0.4, -0.9, 0.2];
        for mut proposer in proposers {
            // Run a couple of iterations so k > 0 paths are covered too.
            for _ in 0..3 {
                let mut queried: Vec<Vec<f64>> = Vec::new();
                let direct = {
                    let mut f = |x: &[f64]| {
                        queried.push(x.to_vec());
                        quadratic(x)
                    };
                    proposer.propose(&theta, &mut f)
                };
                let points = proposer
                    .eval_points(&theta)
                    .expect("all in-crate optimizers support batching");
                assert_eq!(points, queried, "{}: points mismatch", proposer.name());
                let values: Vec<f64> = points.iter().map(|p| quadratic(p)).collect();
                let batched = proposer.propose_from(&theta, &values);
                assert_eq!(direct, batched, "{}: proposal mismatch", proposer.name());
                for (a, b) in direct.candidate.iter().zip(&batched.candidate) {
                    assert_eq!(a.to_bits(), b.to_bits(), "{}", proposer.name());
                }
                proposer.advance();
            }
        }
    }

    #[test]
    #[should_panic(expected = "fewer values")]
    fn propose_from_rejects_short_value_lists() {
        let mut spsa = Spsa::new(2, GainSchedule::spall_default(), 1);
        let _ = spsa.propose_from(&[0.0, 0.0], &[1.0]);
    }
}

//! Spall gain schedules for SPSA.
//!
//! `a_k = a / (A + k + 1)^alpha` controls step size and
//! `c_k = c / (k + 1)^gamma` controls the perturbation magnitude, with the
//! asymptotically optimal exponents `alpha = 0.602`, `gamma = 0.101`
//! recommended by Spall and used by Qiskit's SPSA implementation (the
//! paper's classical tuner, Section 2).

/// Gain schedule parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GainSchedule {
    /// Step-size numerator.
    pub a: f64,
    /// Perturbation numerator.
    pub c: f64,
    /// Step-size decay exponent.
    pub alpha: f64,
    /// Perturbation decay exponent.
    pub gamma: f64,
    /// Stability constant added to the step-size denominator.
    pub stability: f64,
}

impl GainSchedule {
    /// Spall's recommended exponents with step/perturbation scales suited to
    /// radian-valued ansatz parameters.
    pub fn spall_default() -> Self {
        GainSchedule {
            a: 0.2,
            c: 0.15,
            alpha: 0.602,
            gamma: 0.101,
            stability: 10.0,
        }
    }

    /// Gains matched to the paper's VQA runs: convergence "generally
    /// beginning at around 1250 iterations" for the 6-qubit TFIM apps
    /// (Section 7.2). Slower than [`Self::spall_default`].
    pub fn vqa_paper() -> Self {
        GainSchedule {
            a: 0.2,
            c: 0.08,
            alpha: 0.602,
            gamma: 0.101,
            stability: 10.0,
        }
    }

    /// Validates parameter ranges.
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending field.
    pub fn validate(&self) -> Result<(), String> {
        if self.a <= 0.0 {
            return Err("a must be positive".into());
        }
        if self.c <= 0.0 {
            return Err("c must be positive".into());
        }
        if !(0.0..=1.0).contains(&self.alpha) {
            return Err("alpha must be in (0, 1]".into());
        }
        if !(0.0..=1.0).contains(&self.gamma) {
            return Err("gamma must be in (0, 1]".into());
        }
        if self.stability < 0.0 {
            return Err("stability must be non-negative".into());
        }
        Ok(())
    }

    /// Step size at iteration `k` (0-based).
    pub fn step_size(&self, k: usize) -> f64 {
        self.a / (self.stability + k as f64 + 1.0).powf(self.alpha)
    }

    /// Perturbation magnitude at iteration `k` (0-based).
    pub fn perturbation(&self, k: usize) -> f64 {
        self.c / (k as f64 + 1.0).powf(self.gamma)
    }
}

impl Default for GainSchedule {
    fn default() -> Self {
        Self::spall_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gains_decay_monotonically() {
        let g = GainSchedule::spall_default();
        for k in 1..1000 {
            assert!(g.step_size(k) < g.step_size(k - 1));
            assert!(g.perturbation(k) < g.perturbation(k - 1));
        }
    }

    #[test]
    fn perturbation_decays_slower_than_step() {
        let g = GainSchedule::spall_default();
        let ratio_a = g.step_size(1000) / g.step_size(10);
        let ratio_c = g.perturbation(1000) / g.perturbation(10);
        assert!(ratio_c > ratio_a, "c must decay slower (gamma < alpha)");
    }

    #[test]
    fn first_step_magnitudes() {
        let g = GainSchedule::spall_default();
        assert!((g.step_size(0) - 0.2 / 11f64.powf(0.602)).abs() < 1e-12);
        assert!((g.perturbation(0) - 0.15).abs() < 1e-12);
    }

    #[test]
    fn validation() {
        assert!(GainSchedule::spall_default().validate().is_ok());
        let mut g = GainSchedule::spall_default();
        g.a = 0.0;
        assert!(g.validate().is_err());
        let mut g = GainSchedule::spall_default();
        g.alpha = 1.5;
        assert!(g.validate().is_err());
    }
}

//! Simultaneous Perturbation Stochastic Approximation (SPSA).
//!
//! The paper's primary classical tuner (Section 2): per iteration the
//! gradient is approximated from just **two** objective evaluations at
//! `theta +/- c_k Delta_k` with a random Rademacher direction `Delta_k`,
//! regardless of dimension.
//!
//! Includes the *Resampling* variant of Section 6.3 (average multiple
//! gradient samples per iteration, 2x evaluations for 2 samples).

use crate::schedule::GainSchedule;
use crate::traits::{EvalRecord, Proposal, Proposer};
use qismet_mathkit::{derive_seed, rng_from_seed};
use rand::Rng;

/// SPSA proposer.
///
/// # Examples
///
/// ```
/// use qismet_optim::{GainSchedule, Proposer, Spsa};
///
/// let mut spsa = Spsa::new(2, GainSchedule::spall_default(), 42);
/// let mut f = |x: &[f64]| x.iter().map(|v| v * v).sum::<f64>();
/// let p = spsa.propose(&[1.0, -1.0], &mut f);
/// assert_eq!(p.evals.len(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct Spsa {
    dim: usize,
    gains: GainSchedule,
    seed: u64,
    k: usize,
    n_gradient_samples: usize,
}

impl Spsa {
    /// Creates a standard SPSA over `dim` parameters.
    ///
    /// # Panics
    ///
    /// Panics if `dim == 0` or the schedule is invalid.
    pub fn new(dim: usize, gains: GainSchedule, seed: u64) -> Self {
        assert!(dim > 0, "dimension must be positive");
        gains.validate().expect("invalid gain schedule");
        Spsa {
            dim,
            gains,
            seed,
            k: 0,
            n_gradient_samples: 1,
        }
    }

    /// Creates the *Resampling* variant: the gradient is sampled
    /// `n_samples` times (with independent directions) and averaged.
    ///
    /// # Panics
    ///
    /// Panics if `n_samples == 0`.
    pub fn with_resampling(dim: usize, gains: GainSchedule, seed: u64, n_samples: usize) -> Self {
        assert!(n_samples > 0, "need at least one gradient sample");
        let mut s = Self::new(dim, gains, seed);
        s.n_gradient_samples = n_samples;
        s
    }

    /// The gain schedule.
    pub fn gains(&self) -> &GainSchedule {
        &self.gains
    }

    /// The Rademacher perturbation direction for (iteration, sample) —
    /// deterministic, so retries reuse it.
    pub fn delta(&self, k: usize, sample: usize) -> Vec<f64> {
        let mut rng = rng_from_seed(derive_seed(self.seed, (k as u64) << 8 | sample as u64));
        (0..self.dim)
            .map(|_| if rng.gen::<bool>() { 1.0 } else { -1.0 })
            .collect()
    }

    /// One gradient estimate at the current iteration.
    fn gradient_sample(
        &self,
        sample: usize,
        theta: &[f64],
        objective: &mut dyn FnMut(&[f64]) -> f64,
        evals: &mut Vec<EvalRecord>,
    ) -> Vec<f64> {
        let ck = self.gains.perturbation(self.k);
        let delta = self.delta(self.k, sample);
        let plus: Vec<f64> = theta.iter().zip(&delta).map(|(t, d)| t + ck * d).collect();
        let minus: Vec<f64> = theta.iter().zip(&delta).map(|(t, d)| t - ck * d).collect();
        let f_plus = objective(&plus);
        let f_minus = objective(&minus);
        evals.push(EvalRecord {
            params: plus,
            value: f_plus,
        });
        evals.push(EvalRecord {
            params: minus,
            value: f_minus,
        });
        let scale = (f_plus - f_minus) / (2.0 * ck);
        // Rademacher entries are +/-1, so 1/delta_i = delta_i.
        delta.iter().map(|d| scale * d).collect()
    }
}

impl Proposer for Spsa {
    fn eval_points(&mut self, theta: &[f64]) -> Option<Vec<Vec<f64>>> {
        assert_eq!(theta.len(), self.dim, "parameter dimension");
        let ck = self.gains.perturbation(self.k);
        let mut points = Vec::with_capacity(2 * self.n_gradient_samples);
        for sample in 0..self.n_gradient_samples {
            let delta = self.delta(self.k, sample);
            points.push(theta.iter().zip(&delta).map(|(t, d)| t + ck * d).collect());
            points.push(theta.iter().zip(&delta).map(|(t, d)| t - ck * d).collect());
        }
        Some(points)
    }

    fn propose(&mut self, theta: &[f64], objective: &mut dyn FnMut(&[f64]) -> f64) -> Proposal {
        assert_eq!(theta.len(), self.dim, "parameter dimension");
        let mut evals = Vec::new();
        let mut gradient = vec![0.0; self.dim];
        for sample in 0..self.n_gradient_samples {
            let g = self.gradient_sample(sample, theta, objective, &mut evals);
            for (acc, gi) in gradient.iter_mut().zip(g) {
                *acc += gi / self.n_gradient_samples as f64;
            }
        }
        let ak = self.gains.step_size(self.k);
        let candidate: Vec<f64> = theta
            .iter()
            .zip(&gradient)
            .map(|(t, g)| t - ak * g)
            .collect();
        Proposal {
            candidate,
            gradient,
            evals,
        }
    }

    fn advance(&mut self) {
        self.k += 1;
    }

    fn iteration(&self) -> usize {
        self.k
    }

    fn evals_per_proposal(&self) -> usize {
        2 * self.n_gradient_samples
    }

    fn name(&self) -> &'static str {
        if self.n_gradient_samples > 1 {
            "spsa-resampling"
        } else {
            "spsa"
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::run_baseline;
    use qismet_mathkit::normal;

    fn sphere(x: &[f64]) -> f64 {
        x.iter().map(|v| v * v).sum()
    }

    #[test]
    fn converges_on_sphere() {
        let mut spsa = Spsa::new(4, GainSchedule::spall_default(), 1);
        let mut f = |x: &[f64]| sphere(x);
        let (theta, _) = run_baseline(&mut spsa, vec![1.0, -0.8, 0.6, 1.2], &mut f, 500);
        assert!(sphere(&theta) < 0.05, "residual {}", sphere(&theta));
    }

    #[test]
    fn converges_under_observation_noise() {
        let mut spsa = Spsa::new(3, GainSchedule::spall_default(), 2);
        let mut rng = qismet_mathkit::rng_from_seed(99);
        let mut f = |x: &[f64]| sphere(x) + normal(&mut rng, 0.0, 0.02);
        let (theta, _) = run_baseline(&mut spsa, vec![1.5, -1.0, 0.7], &mut f, 800);
        assert!(sphere(&theta) < 0.2, "residual {}", sphere(&theta));
    }

    #[test]
    fn delta_is_deterministic_per_iteration() {
        let spsa = Spsa::new(8, GainSchedule::spall_default(), 5);
        assert_eq!(spsa.delta(3, 0), spsa.delta(3, 0));
        assert_ne!(spsa.delta(3, 0), spsa.delta(4, 0));
        assert_ne!(spsa.delta(3, 0), spsa.delta(3, 1));
        assert!(spsa.delta(0, 0).iter().all(|&d| d == 1.0 || d == -1.0));
    }

    #[test]
    fn retry_reuses_direction() {
        // propose twice without advance: identical on a deterministic
        // objective.
        let mut spsa = Spsa::new(5, GainSchedule::spall_default(), 9);
        let mut f = |x: &[f64]| sphere(x);
        let theta = vec![0.4; 5];
        let p1 = spsa.propose(&theta, &mut f);
        let p2 = spsa.propose(&theta, &mut f);
        assert_eq!(p1, p2);
        // After advance the direction changes.
        spsa.advance();
        let p3 = spsa.propose(&theta, &mut f);
        assert_ne!(p1.candidate, p3.candidate);
    }

    #[test]
    fn resampling_doubles_evals() {
        let mut spsa = Spsa::with_resampling(3, GainSchedule::spall_default(), 3, 2);
        assert_eq!(spsa.evals_per_proposal(), 4);
        assert_eq!(spsa.name(), "spsa-resampling");
        let mut f = |x: &[f64]| sphere(x);
        let p = spsa.propose(&[0.1, 0.2, 0.3], &mut f);
        assert_eq!(p.n_evals(), 4);
    }

    #[test]
    fn resampling_reduces_gradient_variance() {
        let dims = 4;
        let theta = vec![0.5; dims];
        let grad_spread = |n_samples: usize| {
            let mut grads = Vec::new();
            for trial in 0..40 {
                let mut spsa =
                    Spsa::with_resampling(dims, GainSchedule::spall_default(), trial, n_samples);
                let mut rng = qismet_mathkit::rng_from_seed(1000 + trial);
                let mut f = |x: &[f64]| sphere(x) + normal(&mut rng, 0.0, 0.05);
                let p = spsa.propose(&theta, &mut f);
                grads.push(p.gradient[0]);
            }
            qismet_mathkit::stddev(&grads)
        };
        let single = grad_spread(1);
        let quad = grad_spread(4);
        assert!(
            quad < single,
            "4-sample spread {quad} should be below 1-sample {single}"
        );
    }

    #[test]
    fn gradient_points_uphill_on_average() {
        // At theta = (1, 1, 1) the sphere gradient is positive in every
        // coordinate; SPSA estimates should correlate.
        let theta = vec![1.0; 3];
        let mut dots = 0.0;
        for seed in 0..50 {
            let mut spsa = Spsa::new(3, GainSchedule::spall_default(), seed);
            let mut f = |x: &[f64]| sphere(x);
            let p = spsa.propose(&theta, &mut f);
            dots += p.gradient.iter().sum::<f64>();
        }
        assert!(dots > 0.0, "mean gradient projection {dots}");
    }

    #[test]
    #[should_panic(expected = "dimension must be positive")]
    fn zero_dim_rejected() {
        let _ = Spsa::new(0, GainSchedule::spall_default(), 0);
    }
}

//! Second-order SPSA (2-SPSA).
//!
//! The paper's "2nd-order" comparison scheme (Section 6.3): in addition to
//! the gradient, each iteration estimates the Hessian from two extra
//! perturbed evaluations, smooths it across iterations, regularizes it to be
//! positive definite, and preconditions the gradient step — mirroring
//! Qiskit's `second_order=True` SPSA. The paper finds this scheme *hurts*
//! under transients (Fig. 14): imperfect curvature estimates amplify
//! transient-skewed gradients, which our implementation reproduces.

use crate::schedule::GainSchedule;
use crate::traits::{EvalRecord, Proposal, Proposer};
use qismet_mathkit::{derive_seed, rng_from_seed, solve, sym_eig, RMatrix};
use rand::Rng;

/// 2-SPSA proposer with exponentially smoothed Hessian preconditioning.
#[derive(Debug, Clone)]
pub struct SecondOrderSpsa {
    dim: usize,
    gains: GainSchedule,
    seed: u64,
    k: usize,
    /// Smoothed Hessian estimate (committed state).
    h_bar: RMatrix,
    /// Hessian sample awaiting `advance` (so retries do not double-count).
    pending_h: Option<RMatrix>,
    /// Tikhonov regularization added to the PSD-ified Hessian.
    regularization: f64,
}

impl SecondOrderSpsa {
    /// Creates a 2-SPSA proposer.
    ///
    /// # Panics
    ///
    /// Panics if `dim == 0` or the schedule is invalid.
    pub fn new(dim: usize, gains: GainSchedule, seed: u64) -> Self {
        assert!(dim > 0, "dimension must be positive");
        gains.validate().expect("invalid gain schedule");
        SecondOrderSpsa {
            dim,
            gains,
            seed,
            k: 0,
            h_bar: RMatrix::identity(dim),
            pending_h: None,
            regularization: 1e-2,
        }
    }

    fn rademacher(&self, k: usize, stream: u64) -> Vec<f64> {
        let mut rng = rng_from_seed(derive_seed(self.seed, (k as u64) << 8 | stream));
        (0..self.dim)
            .map(|_| if rng.gen::<bool>() { 1.0 } else { -1.0 })
            .collect()
    }

    /// Positive-definite version of the smoothed Hessian:
    /// `sqrt(H^T H)` via eigendecomposition (absolute eigenvalues) plus a
    /// ridge.
    fn conditioned_hessian(&self, h: &RMatrix) -> RMatrix {
        let eig = sym_eig(h).expect("symmetric Hessian estimate");
        let n = self.dim;
        let mut out = RMatrix::zeros(n, n);
        for k in 0..n {
            let lam = eig.values[k].abs() + self.regularization;
            for i in 0..n {
                for j in 0..n {
                    let v = out.at(i, j) + lam * eig.vectors.at(i, k) * eig.vectors.at(j, k);
                    out.set(i, j, v);
                }
            }
        }
        out
    }
}

impl Proposer for SecondOrderSpsa {
    fn eval_points(&mut self, theta: &[f64]) -> Option<Vec<Vec<f64>>> {
        assert_eq!(theta.len(), self.dim, "parameter dimension");
        let ck = self.gains.perturbation(self.k);
        let c2 = ck;
        let delta = self.rademacher(self.k, 0);
        let delta2 = self.rademacher(self.k, 1);
        let at = |s1: f64, s2: f64| -> Vec<f64> {
            theta
                .iter()
                .enumerate()
                .map(|(i, t)| t + s1 * delta[i] + s2 * delta2[i])
                .collect()
        };
        // Evaluation order of `propose`: +, -, +tilde, -tilde.
        Some(vec![at(ck, 0.0), at(-ck, 0.0), at(ck, c2), at(-ck, c2)])
    }

    fn propose(&mut self, theta: &[f64], objective: &mut dyn FnMut(&[f64]) -> f64) -> Proposal {
        assert_eq!(theta.len(), self.dim, "parameter dimension");
        let ck = self.gains.perturbation(self.k);
        // Hessian perturbation scale (c-tilde), conventionally ~c_k.
        let c2 = ck;
        let delta = self.rademacher(self.k, 0);
        let delta2 = self.rademacher(self.k, 1);

        let at = |base: &[f64], d1: &[f64], s1: f64, d2: &[f64], s2: f64| -> Vec<f64> {
            base.iter()
                .enumerate()
                .map(|(i, t)| t + s1 * d1[i] + s2 * d2[i])
                .collect()
        };

        let p_plus = at(theta, &delta, ck, &delta2, 0.0);
        let p_minus = at(theta, &delta, -ck, &delta2, 0.0);
        let p_plus_t = at(theta, &delta, ck, &delta2, c2);
        let p_minus_t = at(theta, &delta, -ck, &delta2, c2);

        let f_plus = objective(&p_plus);
        let f_minus = objective(&p_minus);
        let f_plus_t = objective(&p_plus_t);
        let f_minus_t = objective(&p_minus_t);

        let evals = vec![
            EvalRecord {
                params: p_plus,
                value: f_plus,
            },
            EvalRecord {
                params: p_minus,
                value: f_minus,
            },
            EvalRecord {
                params: p_plus_t,
                value: f_plus_t,
            },
            EvalRecord {
                params: p_minus_t,
                value: f_minus_t,
            },
        ];

        let g_scale = (f_plus - f_minus) / (2.0 * ck);
        let gradient: Vec<f64> = delta.iter().map(|d| g_scale * d).collect();

        // Hessian sample: dH = (f(+,+t) - f(+) - f(-,+t) + f(-)) / (c * c2),
        // symmetrized over delta (x) delta2.
        let dh = (f_plus_t - f_plus - f_minus_t + f_minus) / (ck * c2);
        let mut h_sample = RMatrix::zeros(self.dim, self.dim);
        for i in 0..self.dim {
            for j in 0..self.dim {
                let v = 0.5 * dh * (delta[i] * delta2[j] + delta2[i] * delta[j]) * 0.5;
                h_sample.set(i, j, v);
            }
        }

        // Exponential smoothing toward the committed estimate.
        let kf = self.k as f64;
        let smoothed = &self.h_bar.scaled(kf / (kf + 1.0)) + &h_sample.scaled(1.0 / (kf + 1.0));
        let conditioned = self.conditioned_hessian(&smoothed);
        self.pending_h = Some(smoothed);

        // Preconditioned step: solve H d = g.
        let direction = solve(&conditioned, &gradient).unwrap_or_else(|_| gradient.clone());
        let ak = self.gains.step_size(self.k);
        let candidate: Vec<f64> = theta
            .iter()
            .zip(&direction)
            .map(|(t, d)| t - ak * d)
            .collect();
        Proposal {
            candidate,
            gradient,
            evals,
        }
    }

    fn advance(&mut self) {
        if let Some(h) = self.pending_h.take() {
            self.h_bar = h;
        }
        self.k += 1;
    }

    fn iteration(&self) -> usize {
        self.k
    }

    fn evals_per_proposal(&self) -> usize {
        4
    }

    fn name(&self) -> &'static str {
        "spsa-2nd-order"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::run_baseline;

    fn quadratic(x: &[f64]) -> f64 {
        // Anisotropic bowl: curvature 4 in dim 0, 1 elsewhere.
        let mut acc = 4.0 * x[0] * x[0];
        for v in &x[1..] {
            acc += v * v;
        }
        acc
    }

    #[test]
    fn converges_on_anisotropic_quadratic() {
        let mut opt = SecondOrderSpsa::new(3, GainSchedule::spall_default(), 11);
        let mut f = |x: &[f64]| quadratic(x);
        let (theta, _) = run_baseline(&mut opt, vec![1.0, -1.0, 0.8], &mut f, 600);
        assert!(quadratic(&theta) < 0.1, "residual {}", quadratic(&theta));
    }

    #[test]
    fn four_evals_per_proposal() {
        let mut opt = SecondOrderSpsa::new(2, GainSchedule::spall_default(), 1);
        assert_eq!(opt.evals_per_proposal(), 4);
        let mut f = |x: &[f64]| quadratic(x);
        let p = opt.propose(&[0.5, 0.5], &mut f);
        assert_eq!(p.n_evals(), 4);
    }

    #[test]
    fn retry_does_not_double_commit_hessian() {
        let mut opt = SecondOrderSpsa::new(2, GainSchedule::spall_default(), 2);
        let mut f = |x: &[f64]| quadratic(x);
        let theta = [0.3, 0.7];
        let p1 = opt.propose(&theta, &mut f);
        let p2 = opt.propose(&theta, &mut f);
        // Same iteration, deterministic objective: identical proposals even
        // though the Hessian sample is recomputed.
        assert_eq!(p1, p2);
        opt.advance();
        assert_eq!(opt.iteration(), 1);
    }

    #[test]
    fn conditioned_hessian_is_positive_definite() {
        let opt = SecondOrderSpsa::new(2, GainSchedule::spall_default(), 3);
        // An indefinite matrix.
        let h = RMatrix::from_rows(&[&[0.0, 2.0], &[2.0, 0.0]]);
        let c = opt.conditioned_hessian(&h);
        let eig = sym_eig(&c).unwrap();
        assert!(eig.values.iter().all(|&v| v > 0.0), "{:?}", eig.values);
    }

    #[test]
    fn name_reported() {
        let opt = SecondOrderSpsa::new(2, GainSchedule::spall_default(), 4);
        assert_eq!(opt.name(), "spsa-2nd-order");
    }
}

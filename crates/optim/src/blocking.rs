//! The *Blocking* acceptance policy.
//!
//! Section 6.3's "Blocking" comparison: a Qiskit SPSA option that only
//! accepts parameter updates whose measured objective does not worsen the
//! best-so-far value by more than a tolerance (typically tied to observed
//! noise). Blocking gives some robustness to adverse transients — a spiked
//! candidate is rejected — but, as the paper notes (Section 7.2), it also
//! blocks legitimate uphill moves and slows escape from local minima, which
//! is why QISMET outperforms it.

/// Decides whether candidate energies are accepted relative to the current
/// energy.
#[derive(Debug, Clone, PartialEq)]
pub struct BlockingPolicy {
    /// Allowed worsening before a candidate is rejected.
    pub tolerance: f64,
    /// When `true`, the tolerance adapts to an online estimate of the
    /// objective's noise scale (twice the mean absolute step delta), like
    /// Qiskit's `allowed_increase` calibration.
    pub adaptive: bool,
    deltas_seen: Vec<f64>,
}

impl BlockingPolicy {
    /// Fixed-tolerance blocking.
    pub fn fixed(tolerance: f64) -> Self {
        BlockingPolicy {
            tolerance,
            adaptive: false,
            deltas_seen: Vec::new(),
        }
    }

    /// Adaptive-tolerance blocking starting from an initial tolerance.
    pub fn adaptive(initial_tolerance: f64) -> Self {
        BlockingPolicy {
            tolerance: initial_tolerance,
            adaptive: true,
            deltas_seen: Vec::new(),
        }
    }

    /// Current effective tolerance.
    pub fn effective_tolerance(&self) -> f64 {
        if self.adaptive && self.deltas_seen.len() >= 8 {
            2.0 * qismet_mathkit::mean(&self.deltas_seen)
        } else {
            self.tolerance
        }
    }

    /// Decides acceptance and updates the noise estimate.
    pub fn accepts(&mut self, current_energy: f64, candidate_energy: f64) -> bool {
        let delta = candidate_energy - current_energy;
        if self.adaptive {
            self.deltas_seen.push(delta.abs());
            if self.deltas_seen.len() > 64 {
                self.deltas_seen.remove(0);
            }
        }
        delta <= self.effective_tolerance()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_policy_thresholds() {
        let mut p = BlockingPolicy::fixed(0.1);
        assert!(p.accepts(-1.0, -1.05)); // improvement
        assert!(p.accepts(-1.0, -0.95)); // within tolerance
        assert!(!p.accepts(-1.0, -0.8)); // worsens by 0.2 > 0.1
    }

    #[test]
    fn zero_tolerance_blocks_any_increase() {
        let mut p = BlockingPolicy::fixed(0.0);
        assert!(p.accepts(0.5, 0.5));
        assert!(!p.accepts(0.5, 0.5001));
    }

    #[test]
    fn adaptive_policy_learns_noise_scale() {
        let mut p = BlockingPolicy::adaptive(0.01);
        // Feed consistent |delta| ~ 0.2 noise.
        for k in 0..20 {
            let sign = if k % 2 == 0 { 1.0 } else { -1.0 };
            let _ = p.accepts(0.0, sign * 0.2);
        }
        // Tolerance should have grown to ~2 * 0.2.
        let tol = p.effective_tolerance();
        assert!((tol - 0.4).abs() < 0.05, "tolerance {tol}");
        // A 0.3 increase is now acceptable.
        assert!(p.accepts(0.0, 0.3));
    }

    #[test]
    fn adaptive_window_is_bounded() {
        let mut p = BlockingPolicy::adaptive(0.0);
        for _ in 0..1000 {
            let _ = p.accepts(0.0, 0.1);
        }
        assert!(p.deltas_seen.len() <= 64);
    }
}

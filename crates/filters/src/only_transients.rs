//! The "Only-Transients" skipping policy (Section 5.3, Fig. 15).
//!
//! The strawman alternative to QISMET: skip a VQA iteration whenever the
//! estimated transient magnitude `|Tm|` exceeds a threshold, **regardless of
//! gradient direction**. The paper shows every threshold setting of this
//! policy lands *below* the baseline because constructive transients get
//! skipped too, wasting iterations and stalling convergence.

/// Threshold policy over |Tm| with an online percentile calibration.
///
/// The paper names configurations by the percentile that sets the
/// threshold: `99p` skips at most ~1% of iterations, `50p` up to half.
#[derive(Debug, Clone, PartialEq)]
pub struct OnlyTransientsPolicy {
    /// Percentile (0-100) of observed |Tm| history used as the threshold.
    pub percentile: f64,
    history: Vec<f64>,
    /// Minimum history before the threshold activates.
    warmup: usize,
}

impl OnlyTransientsPolicy {
    /// Creates a policy thresholding at the given |Tm| percentile.
    ///
    /// # Panics
    ///
    /// Panics if `percentile` is outside `[0, 100]`.
    pub fn new(percentile: f64) -> Self {
        assert!(
            (0.0..=100.0).contains(&percentile),
            "percentile out of range"
        );
        OnlyTransientsPolicy {
            percentile,
            history: Vec::new(),
            warmup: 16,
        }
    }

    /// The paper's Fig. 15 threshold sweep: 99p, 95p, 90p, 80p, 70p, 50p.
    pub fn fig15_sweep() -> Vec<OnlyTransientsPolicy> {
        [99.0, 95.0, 90.0, 80.0, 70.0, 50.0]
            .into_iter()
            .map(OnlyTransientsPolicy::new)
            .collect()
    }

    /// Label like `"90p"`.
    pub fn label(&self) -> String {
        format!("{}p", self.percentile)
    }

    /// Current threshold (NaN during warmup).
    pub fn threshold(&self) -> f64 {
        if self.history.len() < self.warmup {
            return f64::NAN;
        }
        qismet_mathkit::percentile(&self.history, self.percentile)
    }

    /// Records a transient estimate and decides whether to skip the
    /// iteration. During warmup nothing is skipped.
    pub fn observe_and_decide(&mut self, tm: f64) -> bool {
        let mag = tm.abs();
        let skip = if self.threshold().is_finite() {
            mag > self.threshold()
        } else {
            false
        };
        self.history.push(mag);
        if self.history.len() > 4096 {
            self.history.remove(0);
        }
        skip
    }

    /// Number of observations so far.
    pub fn observations(&self) -> usize {
        self.history.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qismet_mathkit::{normal, rng_from_seed};

    #[test]
    fn warmup_never_skips() {
        let mut p = OnlyTransientsPolicy::new(50.0);
        for _ in 0..10 {
            assert!(!p.observe_and_decide(100.0));
        }
    }

    #[test]
    fn skip_rate_tracks_percentile() {
        let mut p = OnlyTransientsPolicy::new(90.0);
        let mut rng = rng_from_seed(3);
        let mut skips = 0;
        let n = 5000;
        for _ in 0..n {
            let tm = normal(&mut rng, 0.0, 1.0);
            if p.observe_and_decide(tm) {
                skips += 1;
            }
        }
        let rate = skips as f64 / n as f64;
        assert!(
            (rate - 0.10).abs() < 0.03,
            "90p policy should skip ~10%, got {rate}"
        );
    }

    #[test]
    fn aggressive_policy_skips_more() {
        let run = |pct: f64| {
            let mut p = OnlyTransientsPolicy::new(pct);
            let mut rng = rng_from_seed(4);
            let mut skips = 0;
            for _ in 0..3000 {
                if p.observe_and_decide(normal(&mut rng, 0.0, 1.0)) {
                    skips += 1;
                }
            }
            skips
        };
        assert!(run(50.0) > 3 * run(95.0));
    }

    #[test]
    fn fig15_sweep_labels() {
        let sweep = OnlyTransientsPolicy::fig15_sweep();
        assert_eq!(sweep.len(), 6);
        assert_eq!(sweep[0].label(), "99p");
        assert_eq!(sweep[5].label(), "50p");
    }

    #[test]
    fn skips_only_outliers() {
        let mut p = OnlyTransientsPolicy::new(90.0);
        // Feed tiny magnitudes to calibrate.
        for _ in 0..100 {
            p.observe_and_decide(0.01);
        }
        // A huge transient now gets skipped, a small one passes.
        assert!(p.observe_and_decide(10.0));
        assert!(!p.observe_and_decide(0.005));
    }

    #[test]
    #[should_panic(expected = "percentile out of range")]
    fn invalid_percentile() {
        let _ = OnlyTransientsPolicy::new(120.0);
    }
}

//! Trailing moving-average filter (extension baseline).

use crate::traits::SeriesFilter;
use std::collections::VecDeque;

/// Simple trailing moving average over a fixed window.
#[derive(Debug, Clone, PartialEq)]
pub struct MovingAverageFilter {
    window: usize,
    buffer: VecDeque<f64>,
    sum: f64,
}

impl MovingAverageFilter {
    /// Creates a filter with the given window.
    ///
    /// # Panics
    ///
    /// Panics if `window == 0`.
    pub fn new(window: usize) -> Self {
        assert!(window > 0, "window must be positive");
        MovingAverageFilter {
            window,
            buffer: VecDeque::with_capacity(window),
            sum: 0.0,
        }
    }
}

impl SeriesFilter for MovingAverageFilter {
    fn update(&mut self, measurement: f64) -> f64 {
        self.buffer.push_back(measurement);
        self.sum += measurement;
        if self.buffer.len() > self.window {
            self.sum -= self.buffer.pop_front().expect("non-empty");
        }
        self.sum / self.buffer.len() as f64
    }

    fn reset(&mut self) {
        self.buffer.clear();
        self.sum = 0.0;
    }

    fn name(&self) -> String {
        format!("MA({})", self.window)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn averages_trailing_window() {
        let mut f = MovingAverageFilter::new(2);
        assert_eq!(f.update(1.0), 1.0);
        assert_eq!(f.update(3.0), 2.0);
        assert_eq!(f.update(5.0), 4.0);
    }

    #[test]
    fn reset_clears() {
        let mut f = MovingAverageFilter::new(3);
        f.update(10.0);
        f.reset();
        assert_eq!(f.update(2.0), 2.0);
    }

    #[test]
    fn damps_spikes_proportionally() {
        let mut f = MovingAverageFilter::new(10);
        for _ in 0..10 {
            f.update(-1.0);
        }
        let with_spike = f.update(9.0);
        assert!((with_spike - 0.0).abs() < 1e-12, "got {with_spike}");
    }

    #[test]
    fn name_contains_window() {
        assert_eq!(MovingAverageFilter::new(7).name(), "MA(7)");
    }
}

//! Shared interface for streaming series filters.

/// A causal filter over a scalar measurement stream.
pub trait SeriesFilter {
    /// Consumes one measurement and returns the current filtered estimate.
    fn update(&mut self, measurement: f64) -> f64;

    /// Clears all state.
    fn reset(&mut self);

    /// Human-readable instance name (appears in harness legends).
    fn name(&self) -> String;

    /// Filters a whole series, returning the per-step estimates.
    fn filter_series(&mut self, series: &[f64]) -> Vec<f64> {
        series.iter().map(|&z| self.update(z)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Passthrough;

    impl SeriesFilter for Passthrough {
        fn update(&mut self, m: f64) -> f64 {
            m
        }
        fn reset(&mut self) {}
        fn name(&self) -> String {
            "passthrough".into()
        }
    }

    #[test]
    fn filter_series_maps_updates() {
        let mut f = Passthrough;
        assert_eq!(f.filter_series(&[1.0, 2.0]), vec![1.0, 2.0]);
        assert_eq!(f.name(), "passthrough");
    }
}

//! Scalar Kalman filter — the classical-filtering comparison of
//! Sections 5.3 / 7.4.
//!
//! The paper parameterizes the filter by a **Transition Coefficient (T)** —
//! "a linear estimation of the slope of the noise-free curve" — and a
//! **Measurement Variance (MV)**. The state is the (unknown) transient-free
//! objective value; each VQA iteration's measured energy is a noisy
//! observation. As the paper argues, the filter treats all measurement
//! variance identically — it cannot distinguish a harmful gradient-flipping
//! transient from a benign one, which is why it underperforms QISMET.

use crate::traits::SeriesFilter;

/// Scalar Kalman filter with the paper's (T, MV) hyper-parameters.
///
/// # Examples
///
/// ```
/// use qismet_filters::{KalmanFilter, SeriesFilter};
/// let mut k = KalmanFilter::new(1.0, 0.1, 1e-4);
/// let mut est = 0.0;
/// for _ in 0..50 {
///     est = k.update(-1.0); // constant noisy-free signal
/// }
/// assert!((est + 1.0).abs() < 0.05);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct KalmanFilter {
    /// Transition coefficient (paper's `T`).
    pub transition: f64,
    /// Measurement variance (paper's `MV`).
    pub measurement_variance: f64,
    /// Process noise variance `Q`.
    pub process_variance: f64,
    estimate: f64,
    covariance: f64,
    initialized: bool,
}

impl KalmanFilter {
    /// Creates a filter.
    ///
    /// # Panics
    ///
    /// Panics if `measurement_variance` or `process_variance` is not
    /// strictly positive.
    pub fn new(transition: f64, measurement_variance: f64, process_variance: f64) -> Self {
        assert!(
            measurement_variance > 0.0,
            "measurement variance must be positive"
        );
        assert!(process_variance > 0.0, "process variance must be positive");
        KalmanFilter {
            transition,
            measurement_variance,
            process_variance,
            estimate: 0.0,
            covariance: 1.0,
            initialized: false,
        }
    }

    /// The paper's Fig. 16 hyper-parameter grid:
    /// `MV in {0.01, 0.1} x T in {0.9, 0.99, 1.0}`.
    pub fn fig16_grid() -> Vec<KalmanFilter> {
        let mut grid = Vec::new();
        for &mv in &[0.01, 0.1] {
            for &t in &[0.9, 0.99, 1.0] {
                grid.push(KalmanFilter::new(t, mv, 1e-4));
            }
        }
        grid
    }

    /// Label like `"Kal (MV=.01 T=.9)"` matching the paper's legend.
    pub fn label(&self) -> String {
        format!(
            "Kal (MV={} T={})",
            trim(self.measurement_variance),
            trim(self.transition)
        )
    }

    /// Current state estimate.
    pub fn estimate(&self) -> f64 {
        self.estimate
    }

    /// Current error covariance.
    pub fn covariance(&self) -> f64 {
        self.covariance
    }
}

fn trim(v: f64) -> String {
    let s = format!("{v}");
    if let Some(stripped) = s.strip_prefix("0.") {
        format!(".{stripped}")
    } else {
        s
    }
}

impl SeriesFilter for KalmanFilter {
    fn update(&mut self, measurement: f64) -> f64 {
        if !self.initialized {
            self.estimate = measurement;
            self.covariance = self.measurement_variance;
            self.initialized = true;
            return self.estimate;
        }
        // Predict.
        let x_pred = self.transition * self.estimate;
        let p_pred = self.transition * self.transition * self.covariance + self.process_variance;
        // Update.
        let gain = p_pred / (p_pred + self.measurement_variance);
        self.estimate = x_pred + gain * (measurement - x_pred);
        self.covariance = (1.0 - gain) * p_pred;
        self.estimate
    }

    fn reset(&mut self) {
        self.estimate = 0.0;
        self.covariance = 1.0;
        self.initialized = false;
    }

    fn name(&self) -> String {
        self.label()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qismet_mathkit::{normal, rng_from_seed};

    #[test]
    fn converges_to_constant_signal() {
        let mut k = KalmanFilter::new(1.0, 0.5, 1e-5);
        let mut rng = rng_from_seed(1);
        let mut last = 0.0;
        for _ in 0..500 {
            last = k.update(-2.0 + normal(&mut rng, 0.0, 0.3));
        }
        assert!((last + 2.0).abs() < 0.1, "estimate {last}");
    }

    #[test]
    fn smooths_transient_spikes() {
        let mut k = KalmanFilter::new(1.0, 0.5, 1e-4);
        // Settle on -1.
        for _ in 0..100 {
            k.update(-1.0);
        }
        // One huge spike.
        let after_spike = k.update(2.0);
        assert!(
            after_spike < -0.5,
            "filter should absorb the spike, got {after_spike}"
        );
    }

    #[test]
    fn low_mv_trusts_measurements() {
        let mut trusting = KalmanFilter::new(1.0, 0.01, 1e-4);
        let mut skeptical = KalmanFilter::new(1.0, 1.0, 1e-4);
        for _ in 0..50 {
            trusting.update(-1.0);
            skeptical.update(-1.0);
        }
        let t_spike = trusting.update(1.0);
        // Reset to compare fairly.
        let s_spike = skeptical.update(1.0);
        assert!(
            t_spike > s_spike,
            "low MV follows the spike more: {t_spike} vs {s_spike}"
        );
    }

    #[test]
    fn transition_below_one_decays_estimate_toward_zero() {
        let mut k = KalmanFilter::new(0.9, 10.0, 1e-6);
        // Feed a constant -1; huge MV means predictions dominate.
        let mut last = 0.0;
        for _ in 0..3 {
            last = k.update(-1.0);
        }
        let settled = last;
        // With T = 0.9 and weak measurement influence, the estimate cannot
        // hold at -1: it is pulled toward zero each prediction.
        assert!(settled > -1.0, "estimate {settled}");
    }

    #[test]
    fn first_sample_initializes() {
        let mut k = KalmanFilter::new(0.9, 0.1, 1e-4);
        assert_eq!(k.update(-3.0), -3.0);
    }

    #[test]
    fn reset_restores_uninitialized_state() {
        let mut k = KalmanFilter::new(1.0, 0.1, 1e-4);
        k.update(-5.0);
        k.reset();
        assert_eq!(k.update(-1.0), -1.0);
    }

    #[test]
    fn fig16_grid_has_six_instances() {
        let grid = KalmanFilter::fig16_grid();
        assert_eq!(grid.len(), 6);
        let labels: Vec<String> = grid.iter().map(|k| k.label()).collect();
        assert!(labels.contains(&"Kal (MV=.01 T=.9)".to_string()));
        assert!(labels.contains(&"Kal (MV=.1 T=1)".to_string()));
    }

    #[test]
    #[should_panic(expected = "measurement variance")]
    fn zero_mv_rejected() {
        let _ = KalmanFilter::new(1.0, 0.0, 1e-4);
    }
}

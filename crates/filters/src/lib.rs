//! # qismet-filters
//!
//! Classical filtering baselines for the QISMET reproduction (ASPLOS 2023).
//! Sections 5.3 and 7.3-7.4 of the paper compare QISMET against approaches a
//! signal-processing practitioner would try first:
//!
//! * [`KalmanFilter`] — the scalar Kalman filter with the paper's
//!   Transition-Coefficient / Measurement-Variance hyper-parameters (the
//!   Fig. 16 grid).
//! * [`OnlyTransientsPolicy`] — the strawman "skip whenever |Tm| is large"
//!   controller of Fig. 15 with percentile thresholds (99p-50p).
//! * [`CfarDetector`] — Constant False Alarm Rate outlier detection
//!   (Section 8.4), an extension baseline.
//! * [`MovingAverageFilter`] — a simple smoothing reference.
//!
//! The shared [`SeriesFilter`] trait lets the evaluation harnesses treat
//! these interchangeably. The common limitation the paper identifies — these
//! methods treat all variance alike, while only *gradient-direction-flipping*
//! transients actually harm VQA tuning — is what the comparison benches
//! exercise.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cfar;
mod kalman;
mod moving_average;
mod only_transients;
mod traits;

pub use cfar::CfarDetector;
pub use kalman::KalmanFilter;
pub use moving_average::MovingAverageFilter;
pub use only_transients::OnlyTransientsPolicy;
pub use traits::SeriesFilter;

//! Constant False Alarm Rate (CFAR) detection.
//!
//! Section 8.4 mentions CFAR — a radar technique that flags samples standing
//! out against a locally estimated noise floor — as another classical
//! filtering approach with the same limitation as Kalman: it detects
//! *outliers*, not *harmful* outliers. Implemented here as a cell-averaging
//! CFAR over a sliding window with guard cells, used by the extension
//! benches.

use std::collections::VecDeque;

/// Cell-averaging CFAR detector over a trailing window.
#[derive(Debug, Clone, PartialEq)]
pub struct CfarDetector {
    /// Number of training cells used to estimate the noise floor.
    pub training_cells: usize,
    /// Guard cells between the cell under test and the training cells.
    pub guard_cells: usize,
    /// Threshold multiplier over the estimated floor.
    pub scale: f64,
    buffer: VecDeque<f64>,
}

impl CfarDetector {
    /// Creates a detector.
    ///
    /// # Panics
    ///
    /// Panics if `training_cells == 0` or `scale <= 0`.
    pub fn new(training_cells: usize, guard_cells: usize, scale: f64) -> Self {
        assert!(training_cells > 0, "need at least one training cell");
        assert!(scale > 0.0, "scale must be positive");
        CfarDetector {
            training_cells,
            guard_cells,
            scale,
            buffer: VecDeque::new(),
        }
    }

    /// Feeds one |sample| magnitude; returns `true` when the sample exceeds
    /// `scale x` the trailing training-cell average (a detection).
    pub fn detect(&mut self, magnitude: f64) -> bool {
        let m = magnitude.abs();
        // Noise floor from cells older than the guard region.
        let floor = if self.buffer.len() > self.guard_cells {
            let usable = self.buffer.len() - self.guard_cells;
            let take = usable.min(self.training_cells);
            let sum: f64 = self.buffer.iter().take(take).sum();
            Some(sum / take as f64)
        } else {
            None
        };
        // Record (oldest at front, newest at back).
        self.buffer.push_back(m);
        let cap = self.training_cells + self.guard_cells + 1;
        while self.buffer.len() > cap {
            self.buffer.pop_front();
        }
        match floor {
            Some(f) if f > 0.0 => m > self.scale * f,
            _ => false,
        }
    }

    /// Clears all history.
    pub fn reset(&mut self) {
        self.buffer.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qismet_mathkit::rng_from_seed;
    use rand::Rng;

    #[test]
    fn detects_spike_over_flat_floor() {
        let mut cfar = CfarDetector::new(16, 2, 4.0);
        for _ in 0..32 {
            assert!(!cfar.detect(1.0));
        }
        assert!(cfar.detect(10.0));
        // The spike sits in the guard region now; floor still ~1.
        assert!(!cfar.detect(1.2));
    }

    #[test]
    fn false_alarm_rate_is_low_on_uniform_noise() {
        let mut cfar = CfarDetector::new(24, 2, 5.0);
        let mut rng = rng_from_seed(8);
        let mut alarms = 0;
        let n = 20_000;
        for _ in 0..n {
            if cfar.detect(rng.gen::<f64>()) {
                alarms += 1;
            }
        }
        let rate = alarms as f64 / n as f64;
        assert!(rate < 0.01, "false alarm rate {rate}");
    }

    #[test]
    fn adapts_to_floor_level() {
        let mut cfar = CfarDetector::new(16, 2, 3.0);
        // High floor: a value of 10 is not anomalous.
        for _ in 0..32 {
            cfar.detect(8.0);
        }
        assert!(!cfar.detect(10.0));
        cfar.reset();
        // Low floor: 10 is anomalous.
        for _ in 0..32 {
            cfar.detect(0.5);
        }
        assert!(cfar.detect(10.0));
    }

    #[test]
    fn no_detection_before_history() {
        let mut cfar = CfarDetector::new(8, 2, 3.0);
        assert!(!cfar.detect(100.0));
    }

    #[test]
    #[should_panic(expected = "training cell")]
    fn zero_training_rejected() {
        let _ = CfarDetector::new(0, 1, 3.0);
    }
}

//! Property tests for the lane-batched (structure-of-arrays) engine: every
//! batched configuration — random circuit shapes, random lane counts,
//! snapshot rebinding, backend-level greedy chunking — must be **bitwise**
//! identical to the sequential scalar path, amplitude for amplitude and
//! energy for energy. This is the same guarantee the threaded and
//! distributed layers carry, extended to the batched dimension.

use proptest::prelude::*;
use qismet_mathkit::rng_from_seed;
use qismet_qsim::{
    Backend, BatchStateVector, BatchedCircuit, CachedStatevectorBackend, Circuit, CompiledCircuit,
    CompiledObservable, Param, PauliSum, StateVector, StatevectorBackend, MAX_LANES,
};
use rand::Rng;

/// Free-parameter circuit in one of three shapes: a superop-heavy mix of
/// rotations and entanglers, an entangler ladder with free RZZ angles (the
/// per-lane table-phase path), or a pure ry+cx shape that takes the
/// real-amplitude fast path at >= 6 qubits. Returns the parameter count.
fn shaped_circuit(n: usize, shape: usize, draws: &[(usize, usize)]) -> (Circuit, usize) {
    let mut c = Circuit::new(n);
    let mut k = 0usize;
    match shape {
        0 => {
            for &(kind, sel) in draws {
                let q = sel % n;
                let q2 = (q + 1 + kind % (n - 1)) % n;
                match kind % 8 {
                    0 => {
                        c.ry(Param::Free(k), q);
                        k += 1;
                    }
                    1 => {
                        c.rz(Param::Free(k), q);
                        k += 1;
                    }
                    2 => {
                        c.h(q);
                    }
                    3 => {
                        c.rx(Param::Free(k), q);
                        k += 1;
                    }
                    4 => {
                        c.cx(q, q2);
                    }
                    5 => {
                        c.cz(q, q2);
                    }
                    6 => {
                        c.rzz(Param::Free(k), q, q2);
                        k += 1;
                    }
                    _ => {
                        c.swap(q, q2);
                    }
                };
            }
        }
        1 => {
            for (i, &(kind, sel)) in draws.iter().enumerate() {
                let q = sel % n;
                let q2 = (q + 1 + kind % (n - 1)) % n;
                if i % 7 == 6 {
                    c.ry(Param::Free(k), q);
                    k += 1;
                } else {
                    match kind % 4 {
                        0 => {
                            c.cx(q, q2);
                        }
                        1 => {
                            c.cz(q, q2);
                        }
                        2 => {
                            c.swap(q, q2);
                        }
                        _ => {
                            c.rzz(Param::Free(k), q, q2);
                            k += 1;
                        }
                    };
                }
            }
        }
        _ => {
            for _ in 0..3 {
                for q in 0..n {
                    c.ry(Param::Free(k), q);
                    k += 1;
                }
                for q in 0..n - 1 {
                    c.cx(q, q + 1);
                }
            }
        }
    }
    // Guarantee at least one free parameter so every lane is distinct.
    if k == 0 {
        c.ry(Param::Free(0), 0);
        k = 1;
    }
    (c, k)
}

fn tfim(n: usize) -> PauliSum {
    let mut labels: Vec<(f64, String)> = Vec::new();
    for q in 0..n - 1 {
        let mut l = vec!['I'; n];
        l[q] = 'Z';
        l[q + 1] = 'Z';
        labels.push((-1.0, l.into_iter().collect()));
    }
    for q in 0..n {
        let mut l = vec!['I'; n];
        l[q] = 'X';
        labels.push((-0.7, l.into_iter().collect()));
    }
    let refs: Vec<(f64, &str)> = labels.iter().map(|(c, s)| (*c, s.as_str())).collect();
    PauliSum::from_labels(&refs).unwrap()
}

fn random_points(k: usize, count: usize, seed: u64) -> Vec<Vec<f64>> {
    let mut rng = rng_from_seed(seed);
    (0..count)
        .map(|_| (0..k).map(|_| rng.gen::<f64>() * 6.4 - 3.2).collect())
        .collect()
}

fn arb_draws(max: usize) -> impl Strategy<Value = Vec<(usize, usize)>> {
    proptest::collection::vec((0usize..64, 0usize..64), 1..max)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    // The core contract: batched state evolution and expectation are
    // bitwise identical to the scalar path, per lane, at any lane count,
    // across all three kernel-path shapes (superop, table, real-f64).
    #[test]
    fn batched_matches_sequential_bitwise(
        n in 2usize..8,
        lanes in 2usize..MAX_LANES + 1,
        shape in 0usize..3,
        draws in arb_draws(40),
        seed in 0u64..1 << 20,
    ) {
        let (c, k) = shaped_circuit(n, shape, &draws);
        let obs = CompiledObservable::compile(&tfim(n));
        let mut plan = CompiledCircuit::compile(&c);
        let pts = random_points(k, lanes, seed);
        let batched = BatchedCircuit::bind(&mut plan, &pts).unwrap();
        prop_assert_eq!(batched.lanes(), lanes);
        prop_assert_eq!(batched.runs_real(), plan.runs_real());
        let mut bsv = BatchStateVector::new(n, lanes);
        let mut out = vec![0.0f64; lanes];
        batched.run_expectation(&mut bsv, &obs, &mut out);
        for (l, p) in pts.iter().enumerate() {
            plan.rebind(p).unwrap();
            let mut sv = StateVector::new(n);
            let e = plan.run_expectation(&mut sv, &obs).unwrap();
            prop_assert_eq!(e.to_bits(), out[l].to_bits(), "lane {} energy", l);
            let lane = bsv.lane_state(l);
            for (i, (a, b)) in sv.amplitudes().iter().zip(lane.amplitudes()).enumerate() {
                prop_assert_eq!(a.re.to_bits(), b.re.to_bits(), "lane {} amp {} re", l, i);
                prop_assert_eq!(a.im.to_bits(), b.im.to_bits(), "lane {} amp {} im", l, i);
            }
        }
    }

    // Snapshot binding is history-free: binding a plan that was already
    // rebound at arbitrary other points yields the same batched circuit
    // as binding a freshly compiled plan.
    #[test]
    fn rebind_equals_fresh_bind_per_lane(
        n in 2usize..7,
        lanes in 2usize..MAX_LANES + 1,
        shape in 0usize..3,
        draws in arb_draws(32),
        seed in 0u64..1 << 20,
    ) {
        let (c, k) = shaped_circuit(n, shape, &draws);
        let obs = CompiledObservable::compile(&tfim(n));
        let pts = random_points(k, lanes, seed);
        let mut reused_plan = CompiledCircuit::compile(&c);
        reused_plan.rebind(&random_points(k, 1, seed ^ 0x5a5a)[0]).unwrap();
        let reused = BatchedCircuit::bind(&mut reused_plan, &pts).unwrap();
        let mut fresh_plan = CompiledCircuit::compile(&c);
        let fresh = BatchedCircuit::bind(&mut fresh_plan, &pts).unwrap();
        let mut b1 = BatchStateVector::new(n, lanes);
        let mut b2 = BatchStateVector::new(n, lanes);
        let mut o1 = vec![0.0f64; lanes];
        let mut o2 = vec![0.0f64; lanes];
        reused.run_expectation(&mut b1, &obs, &mut o1);
        fresh.run_expectation(&mut b2, &obs, &mut o2);
        for l in 0..lanes {
            prop_assert_eq!(o1[l].to_bits(), o2[l].to_bits(), "lane {}", l);
        }
    }

    // The backend seam: evaluate_plan_batch (greedy 8/4/scalar lane
    // chunking, and the thread fan-out under the parallel feature) agrees
    // bitwise with a loop of evaluate_plan calls at any point count.
    #[test]
    fn backend_plan_batch_matches_singles_bitwise(
        n in 2usize..7,
        count in 1usize..23,
        shape in 0usize..3,
        draws in arb_draws(28),
        seed in 0u64..1 << 20,
    ) {
        let (c, k) = shaped_circuit(n, shape, &draws);
        let obs = CompiledObservable::compile(&tfim(n));
        let pts = random_points(k, count, seed);
        let mut cached = CachedStatevectorBackend::new();
        let mut fresh = StatevectorBackend::new();
        let mut plan = CompiledCircuit::compile(&c);
        let singles: Vec<f64> = pts
            .iter()
            .map(|p| cached.evaluate_plan(&mut plan, p, &obs).unwrap())
            .collect();
        let via_cached = cached.evaluate_plan_batch(&mut plan, &pts, &obs).unwrap();
        let via_fresh = fresh.evaluate_plan_batch(&mut plan, &pts, &obs).unwrap();
        for (i, s) in singles.iter().enumerate() {
            prop_assert_eq!(s.to_bits(), via_cached[i].to_bits(), "cached point {}", i);
            prop_assert_eq!(s.to_bits(), via_fresh[i].to_bits(), "fresh point {}", i);
        }
    }
}

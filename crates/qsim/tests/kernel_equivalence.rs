//! Property tests for the fused statevector kernels: circuit shapes that
//! drive the lowering into its k-qubit superop and permutation-table paths
//! must agree with interpreted gate-by-gate dispatch and with the
//! `statevector::reference` expectation kernels to `<= 1e-12`, and the
//! in-state parallel apply must be **bitwise** identical to the sequential
//! sweep at any thread count.

use proptest::prelude::*;
use qismet_qsim::statevector::reference;
use qismet_qsim::{Circuit, CompiledCircuit, CompiledObservable, PauliSum, StateVector};

const TOL: f64 = 1e-12;

/// Superop-heavy shape: dense one-qubit runs interleaved with entanglers on
/// overlapping pairs, which drives the lowering into k<=3 dense superops.
fn superop_circuit(n: usize, draws: &[(usize, usize, f64)]) -> Circuit {
    let mut c = Circuit::new(n);
    for &(kind, sel, angle) in draws {
        let q = sel % n;
        let q2 = (q + 1 + kind % (n - 1)) % n;
        match kind % 8 {
            0 => c.ry(angle, q),
            1 => c.rz(angle, q),
            2 => c.h(q),
            3 => c.rx(angle, q),
            4 => c.cx(q, q2),
            5 => c.cz(q, q2),
            6 => c.rzz(angle, q, q2),
            _ => c.swap(q, q2),
        };
    }
    c
}

/// Ladder-heavy shape: long pure-entangler runs (the permutation-table
/// path) separated by sparse one-qubit gates.
fn ladder_circuit(n: usize, draws: &[(usize, usize, f64)]) -> Circuit {
    let mut c = Circuit::new(n);
    for (i, &(kind, sel, angle)) in draws.iter().enumerate() {
        let q = sel % n;
        let q2 = (q + 1 + kind % (n - 1)) % n;
        if i % 7 == 6 {
            c.ry(angle, q);
        } else {
            match kind % 4 {
                0 => c.cx(q, q2),
                1 => c.cz(q, q2),
                2 => c.swap(q, q2),
                _ => c.rzz(angle, q, q2),
            };
        }
    }
    c
}

/// A TFIM-style Hamiltonian mixing diagonal (ZZ) and off-diagonal (X) terms.
fn tfim(n: usize) -> PauliSum {
    let mut labels: Vec<(f64, String)> = Vec::new();
    for q in 0..n - 1 {
        let mut l = vec!['I'; n];
        l[q] = 'Z';
        l[q + 1] = 'Z';
        labels.push((-1.0, l.into_iter().collect()));
    }
    for q in 0..n {
        let mut l = vec!['I'; n];
        l[q] = 'X';
        labels.push((-0.7, l.into_iter().collect()));
    }
    let refs: Vec<(f64, &str)> = labels.iter().map(|(c, s)| (*c, s.as_str())).collect();
    PauliSum::from_labels(&refs).unwrap()
}

fn arb_draws(max: usize) -> impl Strategy<Value = Vec<(usize, usize, f64)>> {
    proptest::collection::vec((0usize..64, 0usize..64, -3.2f64..3.2), 1..max)
}

fn assert_state_and_energy(c: &Circuit, h: &PauliSum) {
    let interpreted = StateVector::from_circuit(c).unwrap();
    let plan = CompiledCircuit::compile(c);
    let compiled = plan.state().unwrap();
    for (i, (a, b)) in interpreted
        .amplitudes()
        .iter()
        .zip(compiled.amplitudes())
        .enumerate()
    {
        prop_assert!(a.approx_eq(*b, TOL), "amplitude {i}: {a} vs {b}");
    }
    let want = reference::expectation(&interpreted, h);
    let got = CompiledObservable::compile(h).expectation(&compiled);
    prop_assert!((want - got).abs() < TOL, "reference {want} vs fused {got}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    // Superop-heavy circuits: fused k-qubit matrices must reproduce
    // interpreted dispatch and the reference expectation kernels.
    #[test]
    fn superop_path_matches_reference(
        n in 2usize..7,
        draws in arb_draws(48),
    ) {
        assert_state_and_energy(&superop_circuit(n, &draws), &tfim(n));
    }

    // Ladder-heavy circuits: the permutation+phase tables must reproduce
    // interpreted dispatch and the reference expectation kernels.
    #[test]
    fn table_path_matches_reference(
        n in 2usize..7,
        draws in arb_draws(64),
    ) {
        assert_state_and_energy(&ladder_circuit(n, &draws), &tfim(n));
    }
}

// The real-amplitude fast path: a ry+cx circuit preserves real amplitudes,
// so `run` evolves an f64 scratch and writes it back. Pin that path against
// the interpreted reference, and pin that an rzz (complex) circuit both
// opts out of the mode and still matches.
#[test]
fn real_amplitude_run_matches_reference() {
    let n = 7;
    let mut real = Circuit::new(n);
    for layer in 0..4 {
        for q in 0..n {
            real.ry(0.3 + 0.11 * (layer * n + q) as f64, q);
        }
        for q in 0..n - 1 {
            real.cx(q, q + 1);
        }
    }
    let plan = CompiledCircuit::compile(&real);
    assert!(
        plan.runs_real(),
        "ry+cx circuit should take the real-run path"
    );
    let interpreted = StateVector::from_circuit(&real).unwrap();
    let mut sv = StateVector::new(n);
    plan.run(&mut sv).unwrap();
    for (i, (a, b)) in interpreted
        .amplitudes()
        .iter()
        .zip(sv.amplitudes())
        .enumerate()
    {
        assert!(a.approx_eq(*b, TOL), "amplitude {i}: {a} vs {b}");
        assert_eq!(b.im, 0.0, "amplitude {i} must be exactly real");
    }

    // The fused run+expectation (energy computed on the f64 scratch) must
    // be bitwise identical to the two-call complex sequence.
    let obs = CompiledObservable::compile(&tfim(n));
    let two_call = obs.expectation(&sv);
    let fused = plan.run_expectation(&mut sv, &obs).unwrap();
    assert_eq!(
        two_call.to_bits(),
        fused.to_bits(),
        "fused expectation must match bitwise"
    );

    let mut complex = real.clone();
    complex.rzz(0.4, 0, 1);
    let plan = CompiledCircuit::compile(&complex);
    assert!(
        !plan.runs_real(),
        "rzz circuit must opt out of the real-run path"
    );
    let interpreted = StateVector::from_circuit(&complex).unwrap();
    let mut sv = StateVector::new(n);
    plan.run(&mut sv).unwrap();
    for (i, (a, b)) in interpreted
        .amplitudes()
        .iter()
        .zip(sv.amplitudes())
        .enumerate()
    {
        assert!(a.approx_eq(*b, TOL), "amplitude {i}: {a} vs {b}");
    }
}

// The in-state parallel apply partitions a 16-qubit state (above the
// parallelism threshold) and must reproduce the sequential sweep bit for
// bit at every thread count. Fewer cases: each one sweeps 2^16 amplitudes.
#[cfg(feature = "parallel")]
proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn parallel_apply_bitwise_identical_across_thread_counts(
        draws in arb_draws(24),
        shape in 0usize..2,
    ) {
        let n = 16;
        let c = if shape == 0 {
            ladder_circuit(n, &draws)
        } else {
            superop_circuit(n, &draws)
        };
        let plan = CompiledCircuit::compile(&c);
        let mut seq = StateVector::new(n);
        plan.run(&mut seq).unwrap();
        let obs = CompiledObservable::compile(&tfim(n));
        let e_seq = obs.expectation(&seq);
        for threads in [1usize, 2, 4] {
            let mut par = StateVector::new(n);
            plan.run_threaded(&mut par, threads).unwrap();
            prop_assert_eq!(seq.amplitudes(), par.amplitudes(), "threads={}", threads);
            let e_par = obs.expectation_threaded(&par, threads);
            prop_assert_eq!(e_seq.to_bits(), e_par.to_bits(), "threads={}", threads);
        }
    }
}

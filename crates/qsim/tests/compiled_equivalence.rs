//! Property tests pinning the compiled execution path to the reference
//! kernels: random circuits and random `PauliSum`s must evaluate identically
//! (to <= 1e-12) through every path — interpreted gate dispatch with the
//! legacy per-term expectation sweeps, compiled plans with the fused
//! observable kernel, and the backend plan caches — and in-place rebinding
//! must equal a fresh compile-and-bind.

use proptest::prelude::*;
use qismet_qsim::statevector::reference;
use qismet_qsim::{
    Backend, CachedStatevectorBackend, Circuit, CompiledCircuit, CompiledObservable, Gate, Param,
    PauliString, PauliSum, StateVector, StatevectorBackend,
};

const TOL: f64 = 1e-12;

/// Builds a circuit from raw draws: each gate is (kind, operand selector,
/// second-operand selector, angle). Selectors are reduced modulo the width,
/// with two-qubit operands forced distinct.
fn build_circuit(n: usize, gates: &[(usize, usize, usize, f64)]) -> Circuit {
    let mut c = Circuit::new(n);
    for &(kind, a, b, angle) in gates {
        let q = a % n;
        let q2 = if n > 1 { (q + 1 + b % (n - 1)) % n } else { 0 };
        match kind % 17 {
            0 => c.h(q),
            1 => c.x(q),
            2 => c.y(q),
            3 => c.z(q),
            4 => c.s(q),
            5 => c.sdg(q),
            6 => c.append(Gate::T, &[q]),
            7 => c.append(Gate::Tdg, &[q]),
            8 => c.append(Gate::Sx, &[q]),
            9 => c.rx(angle, q),
            10 => c.ry(angle, q),
            11 => c.rz(angle, q),
            12 => c.append(Gate::Phase(angle.into()), &[q]),
            13 if n > 1 => c.cx(q, q2),
            14 if n > 1 => c.cz(q, q2),
            15 if n > 1 => c.swap(q, q2),
            16 if n > 1 => c.rzz(angle, q, q2),
            _ => c.ry(angle, q),
        };
    }
    c
}

/// Builds a Pauli sum from raw draws: each term is (coefficient, packed
/// per-qubit operator codes, 2 bits per qubit).
fn build_pauli_sum(n: usize, terms: &[(f64, u64)]) -> PauliSum {
    let mut h = PauliSum::zero(n);
    for &(coeff, packed) in terms {
        let label: String = (0..n)
            .rev()
            .map(|q| match (packed >> (2 * q)) & 3 {
                0 => 'I',
                1 => 'X',
                2 => 'Y',
                _ => 'Z',
            })
            .collect();
        h.add_term(coeff, PauliString::from_label(&label).unwrap());
    }
    h
}

fn arb_gates() -> impl Strategy<Value = Vec<(usize, usize, usize, f64)>> {
    proptest::collection::vec((0usize..17, 0usize..64, 0usize..64, -3.2f64..3.2), 1..48)
}

fn arb_terms() -> impl Strategy<Value = Vec<(f64, u64)>> {
    proptest::collection::vec((-2.0f64..2.0, 0u64..16384), 1..10)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    // A compiled plan prepares the same state as interpreted gate-by-gate
    // execution, despite single-qubit fusion reordering the arithmetic.
    #[test]
    fn compiled_state_matches_interpreted(
        n in 1usize..7,
        gates in arb_gates(),
    ) {
        let c = build_circuit(n, &gates);
        let interpreted = StateVector::from_circuit(&c).unwrap();
        let compiled = CompiledCircuit::compile(&c).state().unwrap();
        for (i, (a, b)) in interpreted
            .amplitudes()
            .iter()
            .zip(compiled.amplitudes())
            .enumerate()
        {
            prop_assert!(a.approx_eq(*b, TOL), "amplitude {i}: {a} vs {b}");
        }
    }

    // The fused observable kernel agrees with the legacy one-sweep-per-term
    // kernel on random states and random Hamiltonians.
    #[test]
    fn compiled_observable_matches_reference(
        n in 1usize..7,
        gates in arb_gates(),
        terms in arb_terms(),
    ) {
        let sv = StateVector::from_circuit(&build_circuit(n, &gates)).unwrap();
        let h = build_pauli_sum(n, &terms);
        let want = reference::expectation(&sv, &h);
        let got = CompiledObservable::compile(&h).expectation(&sv);
        prop_assert!((want - got).abs() < TOL, "reference {want} vs compiled {got}");
    }

    // End-to-end through the backend plan caches: both backends agree with
    // the reference kernels and bitwise with each other.
    #[test]
    fn backends_match_reference_and_each_other(
        n in 1usize..6,
        gates in arb_gates(),
        terms in arb_terms(),
    ) {
        let c = build_circuit(n, &gates);
        let h = build_pauli_sum(n, &terms);
        let sv = StateVector::from_circuit(&c).unwrap();
        let want = reference::expectation(&sv, &h);
        let fresh = StatevectorBackend::new().evaluate(&c, &h).unwrap();
        let cached = CachedStatevectorBackend::new().evaluate(&c, &h).unwrap();
        prop_assert!((want - fresh).abs() < TOL, "reference {want} vs backend {fresh}");
        prop_assert_eq!(fresh.to_bits(), cached.to_bits());
    }

    // The single-string fast path (hoisted i^y, no zero-skip) agrees with
    // the retained legacy kernel.
    #[test]
    fn pauli_expectation_matches_legacy(
        n in 1usize..7,
        gates in arb_gates(),
        packed in 0u64..16384,
    ) {
        let sv = StateVector::from_circuit(&build_circuit(n, &gates)).unwrap();
        let h = build_pauli_sum(n, &[(1.0, packed)]);
        let (_, string) = &h.terms()[0];
        let fast = sv.pauli_expectation(string);
        let slow = reference::pauli_expectation(&sv, string);
        prop_assert!((fast - slow).abs() < TOL, "{fast} vs {slow}");
    }

    // Rebinding a plan in place is exactly equivalent to compiling fresh and
    // binding once — bitwise, since the arithmetic is identical.
    #[test]
    fn rebind_equals_fresh_bind(
        n in 1usize..6,
        gates in arb_gates(),
        free_stride in 1usize..4,
        p_seed in 0u64..1_000_000,
    ) {
        // Promote every free_stride-th parameterized gate to a free slot.
        let fixed = build_circuit(n, &gates);
        let mut c = Circuit::new(n);
        let mut next_free = 0usize;
        for (i, op) in fixed.ops().iter().enumerate() {
            let gate = match (op.gate, i % free_stride == 0) {
                (Gate::Rx(_), true) => Gate::Rx(Param::Free(next_free)),
                (Gate::Ry(_), true) => Gate::Ry(Param::Free(next_free)),
                (Gate::Rz(_), true) => Gate::Rz(Param::Free(next_free)),
                (Gate::Phase(_), true) => Gate::Phase(Param::Free(next_free)),
                (Gate::Rzz(_), true) => Gate::Rzz(Param::Free(next_free)),
                (g, _) => g,
            };
            if gate.param() == Some(Param::Free(next_free)) {
                next_free += 1;
            }
            c.append(gate, op.operands());
        }
        let n_params = c.n_params();
        let points: Vec<Vec<f64>> = (0..3)
            .map(|k| {
                let mut rng = qismet_mathkit::rng_from_seed(p_seed + k);
                (0..n_params).map(|_| rand::Rng::gen::<f64>(&mut rng) * 6.0 - 3.0).collect()
            })
            .collect();

        let mut reused = CompiledCircuit::compile(&c);
        for point in &points {
            reused.rebind(point).unwrap();
            let rebound = reused.state().unwrap();
            let mut fresh = CompiledCircuit::compile(&c);
            fresh.rebind(point).unwrap();
            let once = fresh.state().unwrap();
            prop_assert_eq!(rebound.amplitudes(), once.amplitudes());
        }
    }
}

// Deterministic spot checks that do not need random exploration.

#[test]
fn plan_path_agrees_with_interpreted_objective_evaluation() {
    // The exact shape the VQA objective uses: a parameterized ansatz plus a
    // TFIM-style Hamiltonian, evaluated through evaluate_plan vs the full
    // interpreted pipeline.
    let n = 5;
    let mut ansatz = Circuit::new(n);
    let mut k = 0usize;
    for layer in 0..3 {
        for q in 0..n {
            ansatz.ry(Param::Free(k), q);
            k += 1;
        }
        for q in 0..n - 1 {
            if (layer + q) % 2 == 0 {
                ansatz.cx(q, q + 1);
            }
        }
    }
    let h = PauliSum::from_labels(&[
        (-1.0, "IIIZZ"),
        (-1.0, "IIZZI"),
        (-1.0, "IZZII"),
        (-1.0, "ZZIII"),
        (-1.0, "IIIIX"),
        (-1.0, "XIIII"),
    ])
    .unwrap();
    let mut plan = CompiledCircuit::compile(&ansatz);
    let obs = CompiledObservable::compile(&h);
    let mut backend = CachedStatevectorBackend::new();
    for seed in 0..8u64 {
        let mut rng = qismet_mathkit::rng_from_seed(seed);
        let params: Vec<f64> = (0..k)
            .map(|_| rand::Rng::gen::<f64>(&mut rng) * 2.0 - 1.0)
            .collect();
        let fast = backend.evaluate_plan(&mut plan, &params, &obs).unwrap();
        let bound = ansatz.bind(&params).unwrap();
        let sv = StateVector::from_circuit(&bound).unwrap();
        let slow = reference::expectation(&sv, &h);
        assert!((fast - slow).abs() < TOL, "seed {seed}: {fast} vs {slow}");
    }
}

#[test]
fn rebind_then_evaluate_matches_bind_then_evaluate_through_backend() {
    let mut c = Circuit::new(3);
    c.ry(Param::Free(0), 0)
        .rz(Param::Free(1), 0)
        .cx(0, 1)
        .rzz(Param::Free(2), 1, 2)
        .ry(Param::Free(3), 2);
    let h = PauliSum::from_labels(&[(0.8, "ZZI"), (-0.6, "IXX"), (0.3, "YIY")]).unwrap();
    let mut plan = CompiledCircuit::compile(&c);
    let obs = CompiledObservable::compile(&h);
    let mut backend = CachedStatevectorBackend::new();
    for seed in 0..6u64 {
        let mut rng = qismet_mathkit::rng_from_seed(100 + seed);
        let params: Vec<f64> = (0..4)
            .map(|_| rand::Rng::gen::<f64>(&mut rng) * 4.0 - 2.0)
            .collect();
        let via_plan = backend.evaluate_plan(&mut plan, &params, &obs).unwrap();
        let via_bind = backend.evaluate(&c.bind(&params).unwrap(), &h).unwrap();
        // Same compiled kernels underneath: bitwise identical.
        assert_eq!(via_plan.to_bits(), via_bind.to_bits(), "seed {seed}");
    }
}

//! Measurement outcome histograms.

use std::collections::HashMap;
use std::fmt;

/// A histogram of computational-basis measurement outcomes.
///
/// Outcomes are stored as bit strings packed into `u64` (qubit 0 = least
/// significant bit), matching the simulators' basis-index convention.
///
/// # Examples
///
/// ```
/// use qismet_qsim::Counts;
/// let mut counts = Counts::new(2);
/// counts.record(0b00, 60);
/// counts.record(0b11, 40);
/// assert_eq!(counts.shots(), 100);
/// assert!((counts.probability(0b11) - 0.4).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Counts {
    n_qubits: usize,
    map: HashMap<u64, u64>,
    shots: u64,
}

impl Counts {
    /// Creates an empty histogram over `n_qubits` qubits.
    pub fn new(n_qubits: usize) -> Self {
        Counts {
            n_qubits,
            map: HashMap::new(),
            shots: 0,
        }
    }

    /// Builds from `(outcome, count)` pairs.
    pub fn from_pairs(n_qubits: usize, pairs: impl IntoIterator<Item = (u64, u64)>) -> Self {
        let mut c = Counts::new(n_qubits);
        for (o, k) in pairs {
            c.record(o, k);
        }
        c
    }

    /// Number of qubits measured.
    pub fn n_qubits(&self) -> usize {
        self.n_qubits
    }

    /// Total number of shots recorded.
    pub fn shots(&self) -> u64 {
        self.shots
    }

    /// Number of distinct outcomes observed.
    pub fn n_outcomes(&self) -> usize {
        self.map.len()
    }

    /// Records `count` occurrences of `outcome`.
    ///
    /// # Panics
    ///
    /// Panics if the outcome has bits beyond `n_qubits`.
    pub fn record(&mut self, outcome: u64, count: u64) {
        assert!(
            self.n_qubits >= 64 || outcome < (1u64 << self.n_qubits),
            "outcome {outcome:#b} exceeds register width {}",
            self.n_qubits
        );
        *self.map.entry(outcome).or_insert(0) += count;
        self.shots += count;
    }

    /// Count for one outcome (zero if never seen).
    pub fn count(&self, outcome: u64) -> u64 {
        self.map.get(&outcome).copied().unwrap_or(0)
    }

    /// Empirical probability of one outcome.
    pub fn probability(&self, outcome: u64) -> f64 {
        if self.shots == 0 {
            return 0.0;
        }
        self.count(outcome) as f64 / self.shots as f64
    }

    /// Iterates over `(outcome, count)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.map.iter().map(|(&o, &c)| (o, c))
    }

    /// The full empirical distribution as a dense vector of length `2^n`.
    ///
    /// # Panics
    ///
    /// Panics if `n_qubits > 26` (dense form would be enormous).
    pub fn to_distribution(&self) -> Vec<f64> {
        assert!(self.n_qubits <= 26, "dense distribution too large");
        let mut p = vec![0.0; 1 << self.n_qubits];
        if self.shots == 0 {
            return p;
        }
        for (&o, &c) in &self.map {
            p[o as usize] = c as f64 / self.shots as f64;
        }
        p
    }

    /// Expectation of a `{+1, -1}`-valued parity observable: the product of
    /// Z eigenvalues over the qubits selected by `mask`.
    ///
    /// This is how sampled Pauli-term expectations are computed after basis
    /// rotation: `<P> = sum_b (-1)^{popcount(b & mask)} p(b)`.
    pub fn parity_expectation(&self, mask: u64) -> f64 {
        if self.shots == 0 {
            return 0.0;
        }
        let mut acc: i64 = 0;
        for (&o, &c) in &self.map {
            let parity = (o & mask).count_ones() % 2;
            if parity == 0 {
                acc += c as i64;
            } else {
                acc -= c as i64;
            }
        }
        acc as f64 / self.shots as f64
    }

    /// Merges another histogram (same width) into this one.
    ///
    /// # Panics
    ///
    /// Panics on width mismatch.
    pub fn merge(&mut self, other: &Counts) {
        assert_eq!(self.n_qubits, other.n_qubits, "width mismatch");
        for (o, c) in other.iter() {
            self.record(o, c);
        }
    }

    /// Formats an outcome as a bit string (qubit `n-1` leftmost).
    pub fn bitstring(&self, outcome: u64) -> String {
        (0..self.n_qubits)
            .rev()
            .map(|q| if outcome >> q & 1 == 1 { '1' } else { '0' })
            .collect()
    }
}

impl fmt::Display for Counts {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut entries: Vec<(u64, u64)> = self.iter().collect();
        entries.sort_by_key(|&(o, _)| o);
        write!(f, "{{")?;
        for (i, (o, c)) in entries.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}: {}", self.bitstring(*o), c)?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_query() {
        let mut c = Counts::new(3);
        c.record(0b101, 10);
        c.record(0b101, 5);
        c.record(0b000, 85);
        assert_eq!(c.shots(), 100);
        assert_eq!(c.count(0b101), 15);
        assert_eq!(c.count(0b111), 0);
        assert!((c.probability(0b101) - 0.15).abs() < 1e-12);
        assert_eq!(c.n_outcomes(), 2);
    }

    #[test]
    #[should_panic(expected = "exceeds register width")]
    fn outcome_width_checked() {
        let mut c = Counts::new(2);
        c.record(0b100, 1);
    }

    #[test]
    fn distribution_sums_to_one() {
        let c = Counts::from_pairs(2, [(0, 25), (1, 25), (2, 25), (3, 25)]);
        let d = c.to_distribution();
        assert!((d.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(d.iter().all(|&p| (p - 0.25).abs() < 1e-12));
    }

    #[test]
    fn parity_expectation_of_bell_counts() {
        // Perfect Bell state measured in Z basis: only 00 and 11.
        let c = Counts::from_pairs(2, [(0b00, 500), (0b11, 500)]);
        // <ZZ> = +1 (both outcomes have even parity over mask 0b11).
        assert!((c.parity_expectation(0b11) - 1.0).abs() < 1e-12);
        // <ZI> = 0 (outcome 00 gives +, 11 gives -).
        assert!(c.parity_expectation(0b01).abs() < 1e-12);
    }

    #[test]
    fn parity_expectation_empty_is_zero() {
        let c = Counts::new(2);
        assert_eq!(c.parity_expectation(0b11), 0.0);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = Counts::from_pairs(1, [(0, 10)]);
        let b = Counts::from_pairs(1, [(0, 5), (1, 5)]);
        a.merge(&b);
        assert_eq!(a.shots(), 20);
        assert_eq!(a.count(0), 15);
    }

    #[test]
    fn bitstring_msb_first() {
        let c = Counts::new(4);
        assert_eq!(c.bitstring(0b0011), "0011");
        assert_eq!(c.bitstring(0b1000), "1000");
    }

    #[test]
    fn display_sorted() {
        let c = Counts::from_pairs(2, [(3, 1), (0, 2)]);
        assert_eq!(c.to_string(), "{00: 2, 11: 1}");
    }
}

//! Density-matrix simulation with Kraus-channel noise.
//!
//! This is the physically faithful backend used to (a) reproduce circuit
//! fidelity experiments (Fig. 4), and (b) calibrate/validate the cheap
//! contraction-factor objective model used in the long VQA sweeps.

// Dense index arithmetic reads clearest with explicit loop indices; the
// iterator rewrites clippy suggests obscure the row/column structure.
#![allow(clippy::needless_range_loop)]

use crate::circuit::Circuit;
use crate::counts::Counts;
use crate::gate::{Gate, GateError};
use crate::pauli::{PauliString, PauliSum};
use crate::statevector::StateVector;
use qismet_mathkit::{CMatrix, Complex64};
use rand::Rng;

/// A mixed quantum state over `n` qubits, stored as a dense `2^n x 2^n`
/// complex matrix (row-major in a flat vector).
///
/// # Examples
///
/// ```
/// use qismet_qsim::{Circuit, DensityMatrix, KrausChannel};
///
/// let mut c = Circuit::new(1);
/// c.h(0);
/// let mut rho = DensityMatrix::from_circuit(&c).unwrap();
/// rho.apply_channel(&KrausChannel::phase_damping(1.0).unwrap(), &[0]).unwrap();
/// // Full dephasing: off-diagonals vanish, diagonal stays uniform.
/// assert!((rho.probabilities()[0] - 0.5).abs() < 1e-12);
/// assert!(rho.purity() < 0.51);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DensityMatrix {
    n_qubits: usize,
    dim: usize,
    rho: Vec<Complex64>,
}

impl DensityMatrix {
    /// The pure state `|0...0><0...0|`.
    ///
    /// # Panics
    ///
    /// Panics if `n_qubits > 13` (the matrix would exceed memory budgets).
    pub fn new(n_qubits: usize) -> Self {
        assert!(n_qubits <= 13, "density matrix limited to 13 qubits");
        let dim = 1usize << n_qubits;
        let mut rho = vec![Complex64::ZERO; dim * dim];
        rho[0] = Complex64::ONE;
        DensityMatrix { n_qubits, dim, rho }
    }

    /// Builds the pure-state density matrix `|psi><psi|`.
    pub fn from_statevector(sv: &StateVector) -> Self {
        let n_qubits = sv.n_qubits();
        let dim = 1usize << n_qubits;
        let amps = sv.amplitudes();
        let mut rho = vec![Complex64::ZERO; dim * dim];
        for r in 0..dim {
            for c in 0..dim {
                rho[r * dim + c] = amps[r] * amps[c].conj();
            }
        }
        DensityMatrix { n_qubits, dim, rho }
    }

    /// Runs a bound, noise-free circuit from `|0...0>`.
    ///
    /// # Errors
    ///
    /// [`GateError::UnboundParameter`] for unbound circuits.
    pub fn from_circuit(circuit: &Circuit) -> Result<Self, GateError> {
        let mut rho = DensityMatrix::new(circuit.n_qubits());
        rho.apply_circuit(circuit)?;
        Ok(rho)
    }

    /// Number of qubits.
    pub fn n_qubits(&self) -> usize {
        self.n_qubits
    }

    /// Hilbert-space dimension `2^n`.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// One matrix element.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn at(&self, r: usize, c: usize) -> Complex64 {
        self.rho[r * self.dim + c]
    }

    /// Trace (should be 1 up to round-off).
    pub fn trace(&self) -> f64 {
        (0..self.dim).map(|i| self.rho[i * self.dim + i].re).sum()
    }

    /// Purity `tr(rho^2)`; 1 for pure states, `1/2^n` for maximally mixed.
    pub fn purity(&self) -> f64 {
        // tr(rho^2) = sum_{r,c} rho_rc * rho_cr = sum |rho_rc|^2 (Hermitian).
        self.rho.iter().map(|z| z.norm_sqr()).sum()
    }

    /// Diagonal as measurement probabilities.
    pub fn probabilities(&self) -> Vec<f64> {
        (0..self.dim)
            .map(|i| self.rho[i * self.dim + i].re.max(0.0))
            .collect()
    }

    /// Applies every gate of a bound circuit.
    ///
    /// # Errors
    ///
    /// [`GateError::UnboundParameter`] for unbound gates.
    pub fn apply_circuit(&mut self, circuit: &Circuit) -> Result<(), GateError> {
        assert_eq!(circuit.n_qubits(), self.n_qubits, "width mismatch");
        for op in circuit.ops() {
            self.apply_gate(op.gate, op.operands())?;
        }
        Ok(())
    }

    /// Applies a unitary gate: `rho -> U rho U^dag`.
    ///
    /// # Errors
    ///
    /// [`GateError::UnboundParameter`] for unbound gates.
    pub fn apply_gate(&mut self, gate: Gate, qubits: &[usize]) -> Result<(), GateError> {
        let m = gate.matrix()?;
        match gate.arity() {
            1 => {
                let u = [[m.at(0, 0), m.at(0, 1)], [m.at(1, 0), m.at(1, 1)]];
                self.apply_1q_left(&u, qubits[0]);
                self.apply_1q_right(&u, qubits[0]);
            }
            _ => {
                let mut u = [[Complex64::ZERO; 4]; 4];
                for r in 0..4 {
                    for c in 0..4 {
                        u[r][c] = m.at(r, c);
                    }
                }
                self.apply_2q_left(&u, qubits[0], qubits[1]);
                self.apply_2q_right(&u, qubits[0], qubits[1]);
            }
        }
        Ok(())
    }

    /// Left multiplication `rho -> U rho` for a 1-qubit operator (acts on row
    /// indices).
    fn apply_1q_left(&mut self, u: &[[Complex64; 2]; 2], qubit: usize) {
        let stride = 1usize << qubit;
        let dim = self.dim;
        for col in 0..dim {
            let mut base = 0usize;
            while base < dim {
                for r0 in base..base + stride {
                    let i0 = r0 * dim + col;
                    let i1 = (r0 + stride) * dim + col;
                    let a0 = self.rho[i0];
                    let a1 = self.rho[i1];
                    self.rho[i0] = u[0][0] * a0 + u[0][1] * a1;
                    self.rho[i1] = u[1][0] * a0 + u[1][1] * a1;
                }
                base += stride << 1;
            }
        }
    }

    /// Right multiplication `rho -> rho U^dag` for a 1-qubit operator (acts
    /// on column indices with conjugated matrix).
    fn apply_1q_right(&mut self, u: &[[Complex64; 2]; 2], qubit: usize) {
        let stride = 1usize << qubit;
        let dim = self.dim;
        for row in 0..dim {
            let row_base = row * dim;
            let mut base = 0usize;
            while base < dim {
                for c0 in base..base + stride {
                    let i0 = row_base + c0;
                    let i1 = row_base + c0 + stride;
                    let a0 = self.rho[i0];
                    let a1 = self.rho[i1];
                    // (rho U^dag)_{r, c} = sum_k rho_{r, k} conj(U_{c, k})
                    self.rho[i0] = a0 * u[0][0].conj() + a1 * u[0][1].conj();
                    self.rho[i1] = a0 * u[1][0].conj() + a1 * u[1][1].conj();
                }
                base += stride << 1;
            }
        }
    }

    fn gather_indices(qa: usize, qb: usize, dim: usize) -> Vec<[usize; 4]> {
        // All base indices with bits qa and qb clear, expanded to the 4-dim
        // subspace (operand 0 = LSB of the 4-index).
        let abit = 1usize << qa;
        let bbit = 1usize << qb;
        let mut out = Vec::with_capacity(dim / 4);
        for i in 0..dim {
            if i & abit == 0 && i & bbit == 0 {
                out.push([i, i | abit, i | bbit, i | abit | bbit]);
            }
        }
        out
    }

    fn apply_2q_left(&mut self, u: &[[Complex64; 4]; 4], qa: usize, qb: usize) {
        let dim = self.dim;
        let groups = Self::gather_indices(qa, qb, dim);
        for col in 0..dim {
            for g in &groups {
                let idx = [
                    g[0] * dim + col,
                    g[1] * dim + col,
                    g[2] * dim + col,
                    g[3] * dim + col,
                ];
                let a = [
                    self.rho[idx[0]],
                    self.rho[idx[1]],
                    self.rho[idx[2]],
                    self.rho[idx[3]],
                ];
                for r in 0..4 {
                    let mut acc = Complex64::ZERO;
                    for k in 0..4 {
                        acc += u[r][k] * a[k];
                    }
                    self.rho[idx[r]] = acc;
                }
            }
        }
    }

    fn apply_2q_right(&mut self, u: &[[Complex64; 4]; 4], qa: usize, qb: usize) {
        let dim = self.dim;
        let groups = Self::gather_indices(qa, qb, dim);
        for row in 0..dim {
            let row_base = row * dim;
            for g in &groups {
                let idx = [
                    row_base + g[0],
                    row_base + g[1],
                    row_base + g[2],
                    row_base + g[3],
                ];
                let a = [
                    self.rho[idx[0]],
                    self.rho[idx[1]],
                    self.rho[idx[2]],
                    self.rho[idx[3]],
                ];
                for c in 0..4 {
                    let mut acc = Complex64::ZERO;
                    for k in 0..4 {
                        acc += a[k] * u[c][k].conj();
                    }
                    self.rho[idx[c]] = acc;
                }
            }
        }
    }

    /// Applies a Kraus channel on the given qubits:
    /// `rho -> sum_k K rho K^dag`.
    ///
    /// # Errors
    ///
    /// Returns [`GateError::UnboundParameter`] never; the `Result` matches
    /// the gate path for uniform call sites. Operand count must match the
    /// channel's qubit count.
    ///
    /// # Panics
    ///
    /// Panics if operand count does not match the channel arity or indices
    /// are out of range.
    pub fn apply_channel(
        &mut self,
        channel: &crate::kraus::KrausChannel,
        qubits: &[usize],
    ) -> Result<(), GateError> {
        assert_eq!(qubits.len(), channel.n_qubits(), "channel arity");
        let dim = self.dim;
        let mut acc = vec![Complex64::ZERO; dim * dim];
        for k in channel.ops() {
            let mut tmp = self.clone();
            match channel.n_qubits() {
                1 => {
                    let u = [[k.at(0, 0), k.at(0, 1)], [k.at(1, 0), k.at(1, 1)]];
                    tmp.apply_1q_left(&u, qubits[0]);
                    tmp.apply_1q_right(&u, qubits[0]);
                }
                2 => {
                    let mut u = [[Complex64::ZERO; 4]; 4];
                    for r in 0..4 {
                        for c in 0..4 {
                            u[r][c] = k.at(r, c);
                        }
                    }
                    tmp.apply_2q_left(&u, qubits[0], qubits[1]);
                    tmp.apply_2q_right(&u, qubits[0], qubits[1]);
                }
                n => panic!("unsupported channel arity {n}"),
            }
            for (a, t) in acc.iter_mut().zip(tmp.rho.iter()) {
                *a += *t;
            }
        }
        self.rho = acc;
        Ok(())
    }

    /// Samples `shots` computational-basis outcomes from the diagonal.
    pub fn sample_counts<R: Rng + ?Sized>(&self, rng: &mut R, shots: u64) -> Counts {
        let probs = self.probabilities();
        let mut cdf = Vec::with_capacity(probs.len());
        let mut acc = 0.0;
        for p in &probs {
            acc += p;
            cdf.push(acc);
        }
        let total = acc.max(f64::MIN_POSITIVE);
        let mut counts = Counts::new(self.n_qubits);
        for _ in 0..shots {
            let u = rng.gen::<f64>() * total;
            let idx = cdf.partition_point(|&c| c < u).min(probs.len() - 1);
            counts.record(idx as u64, 1);
        }
        counts
    }

    /// Expectation `tr(rho P)` of a Pauli string.
    ///
    /// # Panics
    ///
    /// Panics on width mismatch.
    pub fn pauli_expectation(&self, p: &PauliString) -> f64 {
        assert_eq!(p.n_qubits(), self.n_qubits, "pauli width");
        let x_mask = p.x_mask() as usize;
        let z_mask = p.z_mask() as usize;
        let y_count = p.y_count();
        // tr(rho P) = sum_c rho[c ^ x, c] * lambda_c, where
        // P|c> = lambda_c |c ^ x>.
        let mut acc = Complex64::ZERO;
        let i_pow = match y_count % 4 {
            0 => Complex64::ONE,
            1 => Complex64::I,
            2 => -Complex64::ONE,
            _ => -Complex64::I,
        };
        for c in 0..self.dim {
            let sign = if (c & z_mask).count_ones().is_multiple_of(2) {
                1.0
            } else {
                -1.0
            };
            let lambda = i_pow.scale(sign);
            acc += self.rho[(c ^ x_mask) * self.dim + c] * lambda;
        }
        acc.re
    }

    /// Expectation of a Pauli-sum Hamiltonian.
    pub fn expectation(&self, h: &PauliSum) -> f64 {
        h.terms()
            .iter()
            .map(|(c, s)| c * self.pauli_expectation(s))
            .sum()
    }

    /// Fidelity against a pure reference state: `<psi| rho |psi>`.
    ///
    /// # Panics
    ///
    /// Panics on width mismatch.
    pub fn fidelity_with_pure(&self, psi: &StateVector) -> f64 {
        assert_eq!(psi.n_qubits(), self.n_qubits, "width mismatch");
        let amps = psi.amplitudes();
        let mut acc = Complex64::ZERO;
        for r in 0..self.dim {
            for c in 0..self.dim {
                acc += amps[r].conj() * self.rho[r * self.dim + c] * amps[c];
            }
        }
        acc.re.clamp(0.0, 1.0 + 1e-9)
    }

    /// Dense matrix copy (for diagnostics and tests).
    pub fn to_cmatrix(&self) -> CMatrix {
        CMatrix::from_vec(self.dim, self.dim, self.rho.clone()).expect("consistent dims")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kraus::KrausChannel;
    use qismet_mathkit::rng_from_seed;

    const TOL: f64 = 1e-10;

    fn bell() -> Circuit {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1);
        c
    }

    #[test]
    fn pure_evolution_matches_statevector() {
        let mut c = Circuit::new(3);
        c.h(0)
            .ry(0.7, 1)
            .cx(0, 1)
            .rz(0.3, 2)
            .cx(1, 2)
            .rx(1.1, 0)
            .swap(0, 2)
            .cz(0, 1);
        let sv = StateVector::from_circuit(&c).unwrap();
        let rho = DensityMatrix::from_circuit(&c).unwrap();
        // rho should equal |psi><psi|.
        let expect = DensityMatrix::from_statevector(&sv);
        for (a, b) in rho.rho.iter().zip(expect.rho.iter()) {
            assert!(a.approx_eq(*b, 1e-9));
        }
        assert!((rho.purity() - 1.0).abs() < TOL);
        assert!((rho.trace() - 1.0).abs() < TOL);
    }

    #[test]
    fn expectations_match_statevector() {
        let mut c = Circuit::new(3);
        c.ry(0.4, 0).cx(0, 1).ry(1.3, 2).cx(1, 2).h(0);
        let sv = StateVector::from_circuit(&c).unwrap();
        let rho = DensityMatrix::from_circuit(&c).unwrap();
        for label in ["ZZZ", "XIX", "YXZ", "IZI"] {
            let p = PauliString::from_label(label).unwrap();
            assert!(
                (sv.pauli_expectation(&p) - rho.pauli_expectation(&p)).abs() < 1e-9,
                "{label}"
            );
        }
    }

    #[test]
    fn depolarizing_contracts_expectations() {
        let c = bell();
        let mut rho = DensityMatrix::from_circuit(&c).unwrap();
        let zz = PauliString::from_label("ZZ").unwrap();
        let before = rho.pauli_expectation(&zz);
        rho.apply_channel(&KrausChannel::depolarizing(0.2).unwrap(), &[0])
            .unwrap();
        let after = rho.pauli_expectation(&zz);
        assert!(before > after);
        assert!((rho.trace() - 1.0).abs() < TOL);
        // Depolarizing with p contracts single-qubit Bloch components by
        // (1 - p); ZZ picks up the factor once.
        assert!((after - (1.0 - 0.2) * before).abs() < 1e-9);
    }

    #[test]
    fn amplitude_damping_pumps_toward_ground() {
        let mut c = Circuit::new(1);
        c.x(0);
        let mut rho = DensityMatrix::from_circuit(&c).unwrap();
        rho.apply_channel(&KrausChannel::amplitude_damping(0.3).unwrap(), &[0])
            .unwrap();
        let probs = rho.probabilities();
        assert!((probs[0] - 0.3).abs() < TOL);
        assert!((probs[1] - 0.7).abs() < TOL);
        // Full damping returns to |0>.
        rho.apply_channel(&KrausChannel::amplitude_damping(1.0).unwrap(), &[0])
            .unwrap();
        assert!((rho.probabilities()[0] - 1.0).abs() < TOL);
    }

    #[test]
    fn maximally_mixed_purity() {
        let mut rho = DensityMatrix::new(2);
        // Fully depolarize both qubits several times.
        let dep = KrausChannel::depolarizing(1.0).unwrap();
        for q in 0..2 {
            rho.apply_channel(&dep, &[q]).unwrap();
        }
        assert!((rho.purity() - 0.25).abs() < 1e-9);
        for p in rho.probabilities() {
            assert!((p - 0.25).abs() < 1e-9);
        }
    }

    #[test]
    fn two_qubit_channel_on_bell() {
        let c = bell();
        let mut rho = DensityMatrix::from_circuit(&c).unwrap();
        rho.apply_channel(&KrausChannel::two_qubit_depolarizing(0.1).unwrap(), &[0, 1])
            .unwrap();
        assert!((rho.trace() - 1.0).abs() < TOL);
        let zz = PauliString::from_label("ZZ").unwrap();
        let e = rho.pauli_expectation(&zz);
        // Two-qubit depolarizing contracts all non-identity Paulis by
        // (1 - 16p/15 * 15/16)... i.e. exactly (1 - p) in this normalization.
        assert!((e - (1.0 - 16.0 * 0.1 / 16.0 * 1.0)).abs() < 0.07);
        assert!(e < 1.0);
    }

    #[test]
    fn fidelity_with_pure_tracks_noise() {
        let c = bell();
        let ideal = StateVector::from_circuit(&c).unwrap();
        let mut rho = DensityMatrix::from_circuit(&c).unwrap();
        assert!((rho.fidelity_with_pure(&ideal) - 1.0).abs() < TOL);
        rho.apply_channel(&KrausChannel::depolarizing(0.5).unwrap(), &[0])
            .unwrap();
        let f = rho.fidelity_with_pure(&ideal);
        assert!(f < 1.0 && f > 0.4, "fidelity {f}");
    }

    #[test]
    fn sampling_respects_diagonal() {
        let c = bell();
        let rho = DensityMatrix::from_circuit(&c).unwrap();
        let mut rng = rng_from_seed(17);
        let counts = rho.sample_counts(&mut rng, 20_000);
        assert!((counts.probability(0) - 0.5).abs() < 0.02);
        assert!((counts.probability(3) - 0.5).abs() < 0.02);
    }

    #[test]
    fn thermal_relaxation_reduces_excited_population() {
        let mut c = Circuit::new(1);
        c.x(0);
        let mut rho = DensityMatrix::from_circuit(&c).unwrap();
        // t = T1: population decays by 1/e.
        rho.apply_channel(
            &KrausChannel::thermal_relaxation(50.0, 50.0, 60.0).unwrap(),
            &[0],
        )
        .unwrap();
        let p1 = rho.probabilities()[1];
        assert!((p1 - (-1.0f64).exp()).abs() < 1e-6, "p1 = {p1}");
    }
}

//! # qismet-qsim
//!
//! Quantum circuit simulation substrate for the QISMET reproduction
//! (ASPLOS 2023). The paper evaluates on IBMQ hardware and the Qiskit Aer
//! simulator; this crate provides the equivalent execution backends built
//! from scratch:
//!
//! * [`Circuit`] / [`Gate`] — parameterized circuits over a NISQ-style gate
//!   alphabet (rotations, Clifford staples, `CX`/`CZ`/`SWAP`/`RZZ`).
//! * [`StateVector`] — exact pure-state evolution with analytic expectation
//!   values and finite-shot sampling.
//! * [`CompiledCircuit`] / [`CompiledObservable`] — the compile-once,
//!   rebind-forever execution plans behind the allocation-free objective
//!   hot path (fused single-qubit runs, single-sweep diagonal expectation,
//!   Hermitian pair-skipping for off-diagonal terms).
//! * [`BatchStateVector`] / [`BatchedCircuit`] — lane-batched
//!   structure-of-arrays execution of one plan at B parameter points in
//!   lockstep, bitwise identical to the sequential path per lane.
//! * [`DensityMatrix`] + [`KrausChannel`] — mixed-state evolution under the
//!   standard NISQ error channels (amplitude/phase damping, depolarizing),
//!   used for circuit-fidelity studies (paper Fig. 4) and for validating the
//!   fast objective model.
//! * [`PauliString`] / [`PauliSum`] — Hamiltonians as real-weighted Pauli
//!   sums with dense materialization and exact ground energies.
//! * [`MeasurementPlan`] and the sampling estimators — the basis-rotation
//!   measurement pipeline of a real VQE (paper Fig. 8).
//! * [`hellinger_fidelity`] and friends — the circuit fidelity metrics.
//!
//! # Examples
//!
//! A two-qubit VQE energy evaluation, exactly and with shots:
//!
//! ```
//! use qismet_qsim::{estimate_energy_sampled, exact_energy, Circuit, PauliSum};
//! use qismet_mathkit::rng_from_seed;
//!
//! let h = PauliSum::from_labels(&[(-1.0, "ZZ"), (-0.5, "XI"), (-0.5, "IX")]).unwrap();
//! let mut ansatz = Circuit::new(2);
//! ansatz.ry(0.4, 0).ry(0.4, 1).cx(0, 1);
//! let exact = exact_energy(&ansatz, &h).unwrap();
//! let mut rng = rng_from_seed(1);
//! let (sampled, _) = estimate_energy_sampled(&ansatz, &h, 8192, &mut rng).unwrap();
//! assert!((exact - sampled).abs() < 0.1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod backend;
mod batch;
mod circuit;
mod compile;
mod counts;
mod density;
mod expectation;
mod fidelity;
mod gate;
mod kernels;
mod kraus;
mod pauli;
pub mod statevector;

pub use backend::{
    Backend, BackendPool, CachedStatevectorBackend, SharedBackend, StatevectorBackend,
};
pub use batch::{BatchStateVector, BatchedCircuit, MAX_LANES};
pub use circuit::{Circuit, CircuitError, Op};
pub use compile::{CompiledCircuit, CompiledObservable};
pub use counts::Counts;
pub use density::DensityMatrix;
pub use expectation::{
    basis_change_circuit, estimate_energy_sampled, exact_energy, group_energy_from_counts,
    MeasurementGroup, MeasurementPlan,
};
pub use fidelity::{counts_fidelity, hellinger_fidelity, total_variation_distance};
pub use gate::{Gate, GateError, Param};
pub use kraus::{ChannelError, KrausChannel};
pub use pauli::{Pauli, PauliError, PauliString, PauliSum};
pub use statevector::StateVector;

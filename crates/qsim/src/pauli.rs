//! Pauli strings and real-weighted Pauli sums (Hamiltonians).
//!
//! VQE objective functions are expectation values of a Hamiltonian expressed
//! as `H = sum_j c_j P_j` with real coefficients and tensor products of Pauli
//! operators `P_j`. This module provides the algebra, dense materialization
//! (for exact reference energies), and measurement-basis grouping used by the
//! sampling pipeline.

use qismet_mathkit::{herm_eig, CMatrix, Complex64, EigError};
use std::fmt;

/// A single-qubit Pauli operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Pauli {
    /// Identity.
    I,
    /// Pauli-X.
    X,
    /// Pauli-Y.
    Y,
    /// Pauli-Z.
    Z,
}

impl Pauli {
    /// The 2x2 matrix.
    pub fn matrix(self) -> CMatrix {
        use Complex64 as C;
        let o = C::ZERO;
        let l = C::ONE;
        let i = C::I;
        match self {
            Pauli::I => CMatrix::identity(2),
            Pauli::X => CMatrix::from_rows(&[&[o, l], &[l, o]]),
            Pauli::Y => CMatrix::from_rows(&[&[o, -i], &[i, o]]),
            Pauli::Z => CMatrix::from_rows(&[&[l, o], &[o, -l]]),
        }
    }

    /// Parses from a character.
    pub fn from_char(c: char) -> Option<Pauli> {
        match c.to_ascii_uppercase() {
            'I' => Some(Pauli::I),
            'X' => Some(Pauli::X),
            'Y' => Some(Pauli::Y),
            'Z' => Some(Pauli::Z),
            _ => None,
        }
    }

    /// Single-character label.
    pub fn to_char(self) -> char {
        match self {
            Pauli::I => 'I',
            Pauli::X => 'X',
            Pauli::Y => 'Y',
            Pauli::Z => 'Z',
        }
    }
}

/// Errors when parsing or combining Pauli strings.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PauliError {
    /// Unknown character in a Pauli label.
    BadLabel {
        /// The offending character.
        ch: char,
    },
    /// Operands of different widths combined.
    WidthMismatch {
        /// Left width.
        left: usize,
        /// Right width.
        right: usize,
    },
}

impl fmt::Display for PauliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PauliError::BadLabel { ch } => write!(f, "invalid Pauli character '{ch}'"),
            PauliError::WidthMismatch { left, right } => {
                write!(f, "pauli width mismatch: {left} vs {right}")
            }
        }
    }
}

impl std::error::Error for PauliError {}

/// A tensor product of single-qubit Paulis over `n` qubits.
///
/// Internally index 0 is **qubit 0** (least significant bit of computational
/// basis states). The text label convention follows physics notation where
/// the leftmost character is the highest-index qubit, matching Qiskit.
///
/// # Examples
///
/// ```
/// use qismet_qsim::PauliString;
/// let p = PauliString::from_label("XIZ").unwrap(); // X on qubit 2, Z on qubit 0
/// assert_eq!(p.n_qubits(), 3);
/// assert_eq!(p.weight(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct PauliString {
    paulis: Vec<Pauli>,
}

impl PauliString {
    /// The all-identity string over `n` qubits.
    pub fn identity(n: usize) -> Self {
        PauliString {
            paulis: vec![Pauli::I; n],
        }
    }

    /// Builds from per-qubit operators, index 0 = qubit 0.
    pub fn new(paulis: Vec<Pauli>) -> Self {
        PauliString { paulis }
    }

    /// Builds a string that applies `p` on `qubit` and identity elsewhere.
    ///
    /// # Panics
    ///
    /// Panics if `qubit >= n`.
    pub fn single(n: usize, qubit: usize, p: Pauli) -> Self {
        assert!(qubit < n, "qubit out of range");
        let mut paulis = vec![Pauli::I; n];
        paulis[qubit] = p;
        PauliString { paulis }
    }

    /// Parses a Qiskit-style label: leftmost char is the **highest** qubit.
    ///
    /// # Errors
    ///
    /// [`PauliError::BadLabel`] on characters outside `IXYZ`.
    pub fn from_label(label: &str) -> Result<Self, PauliError> {
        let mut paulis = Vec::with_capacity(label.len());
        for ch in label.chars().rev() {
            paulis.push(Pauli::from_char(ch).ok_or(PauliError::BadLabel { ch })?);
        }
        Ok(PauliString { paulis })
    }

    /// The Qiskit-style label (leftmost char = highest qubit).
    pub fn label(&self) -> String {
        self.paulis.iter().rev().map(|p| p.to_char()).collect()
    }

    /// Number of qubits.
    pub fn n_qubits(&self) -> usize {
        self.paulis.len()
    }

    /// Operator on a specific qubit.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn pauli(&self, qubit: usize) -> Pauli {
        self.paulis[qubit]
    }

    /// Per-qubit operators, index 0 = qubit 0.
    pub fn paulis(&self) -> &[Pauli] {
        &self.paulis
    }

    /// Number of non-identity factors.
    pub fn weight(&self) -> usize {
        self.paulis.iter().filter(|&&p| p != Pauli::I).count()
    }

    /// `true` if every factor is the identity.
    pub fn is_identity(&self) -> bool {
        self.weight() == 0
    }

    /// Bit mask of qubits where the string acts with X or Y (bit-flip part).
    pub fn x_mask(&self) -> u64 {
        let mut m = 0u64;
        for (q, &p) in self.paulis.iter().enumerate() {
            if matches!(p, Pauli::X | Pauli::Y) {
                m |= 1 << q;
            }
        }
        m
    }

    /// Bit mask of qubits where the string acts with Z or Y (phase part).
    pub fn z_mask(&self) -> u64 {
        let mut m = 0u64;
        for (q, &p) in self.paulis.iter().enumerate() {
            if matches!(p, Pauli::Z | Pauli::Y) {
                m |= 1 << q;
            }
        }
        m
    }

    /// Number of Y factors (needed for the `i` phases when splitting Y into
    /// X and Z parts).
    pub fn y_count(&self) -> usize {
        self.paulis.iter().filter(|&&p| p == Pauli::Y).count()
    }

    /// Dense matrix of dimension `2^n`.
    ///
    /// The Kronecker order places qubit `n-1` as the most significant factor
    /// so that matrix row/column indices equal computational basis indices
    /// with qubit 0 in the least significant bit.
    pub fn to_matrix(&self) -> CMatrix {
        let mut m = CMatrix::identity(1);
        for p in self.paulis.iter().rev() {
            m = m.kron(&p.matrix());
        }
        m
    }

    /// Whether two strings are qubit-wise commuting: on every qubit the
    /// factors are equal or one of them is identity. Such groups share a
    /// measurement basis.
    ///
    /// # Errors
    ///
    /// [`PauliError::WidthMismatch`] when widths differ.
    pub fn qubit_wise_commutes(&self, other: &PauliString) -> Result<bool, PauliError> {
        if self.n_qubits() != other.n_qubits() {
            return Err(PauliError::WidthMismatch {
                left: self.n_qubits(),
                right: other.n_qubits(),
            });
        }
        Ok(self
            .paulis
            .iter()
            .zip(other.paulis.iter())
            .all(|(&a, &b)| a == Pauli::I || b == Pauli::I || a == b))
    }
}

impl fmt::Display for PauliString {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.label())
    }
}

/// A real-weighted sum of Pauli strings — the Hamiltonian form used by VQE.
///
/// # Examples
///
/// ```
/// use qismet_qsim::PauliSum;
/// // H = X I X + Z Z I  (the Fig. 8 example Hamiltonian of the paper)
/// let h = PauliSum::from_labels(&[(1.0, "XIX"), (1.0, "ZZI")]).unwrap();
/// assert_eq!(h.n_qubits(), 3);
/// assert_eq!(h.terms().len(), 2);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct PauliSum {
    n_qubits: usize,
    terms: Vec<(f64, PauliString)>,
}

impl PauliSum {
    /// The zero operator over `n` qubits.
    pub fn zero(n_qubits: usize) -> Self {
        PauliSum {
            n_qubits,
            terms: Vec::new(),
        }
    }

    /// Builds from `(coefficient, label)` pairs.
    ///
    /// # Errors
    ///
    /// Propagates label parse failures; widths must agree.
    pub fn from_labels(pairs: &[(f64, &str)]) -> Result<Self, PauliError> {
        let mut terms = Vec::with_capacity(pairs.len());
        let mut n = 0;
        for &(c, label) in pairs {
            let p = PauliString::from_label(label)?;
            if n == 0 {
                n = p.n_qubits();
            } else if p.n_qubits() != n {
                return Err(PauliError::WidthMismatch {
                    left: n,
                    right: p.n_qubits(),
                });
            }
            terms.push((c, p));
        }
        Ok(PauliSum { n_qubits: n, terms })
    }

    /// Number of qubits.
    pub fn n_qubits(&self) -> usize {
        self.n_qubits
    }

    /// The `(coefficient, string)` terms.
    pub fn terms(&self) -> &[(f64, PauliString)] {
        &self.terms
    }

    /// Adds a term, merging with an existing identical string.
    ///
    /// # Panics
    ///
    /// Panics on width mismatch.
    pub fn add_term(&mut self, coeff: f64, string: PauliString) -> &mut Self {
        assert_eq!(
            string.n_qubits(),
            self.n_qubits,
            "pauli width must match sum width"
        );
        if let Some(entry) = self.terms.iter_mut().find(|(_, s)| *s == string) {
            entry.0 += coeff;
        } else {
            self.terms.push((coeff, string));
        }
        self
    }

    /// Removes terms with |coeff| below `tol` and returns the count removed.
    pub fn prune(&mut self, tol: f64) -> usize {
        let before = self.terms.len();
        self.terms.retain(|(c, _)| c.abs() > tol);
        before - self.terms.len()
    }

    /// Coefficient of the all-identity term (energy offset).
    pub fn identity_coefficient(&self) -> f64 {
        self.terms
            .iter()
            .filter(|(_, s)| s.is_identity())
            .map(|(c, _)| *c)
            .sum()
    }

    /// Sum of |coefficients| — an upper bound on |<H>| useful for sanity
    /// checks and normalization.
    pub fn one_norm(&self) -> f64 {
        self.terms.iter().map(|(c, _)| c.abs()).sum()
    }

    /// Dense `2^n x 2^n` Hermitian matrix.
    pub fn to_matrix(&self) -> CMatrix {
        let dim = 1usize << self.n_qubits;
        let mut m = CMatrix::zeros(dim, dim);
        for (c, s) in &self.terms {
            let pm = s.to_matrix().scaled(*c);
            m = &m + &pm;
        }
        m
    }

    /// Exact smallest eigenvalue (the VQE target energy).
    ///
    /// # Errors
    ///
    /// Propagates eigensolver failures.
    pub fn ground_energy(&self) -> Result<f64, EigError> {
        Ok(herm_eig(&self.to_matrix())?.values[0])
    }

    /// Greedily groups terms into qubit-wise commuting sets that can be
    /// measured together. The identity term (if any) is attached to the
    /// first group (its value is constant and needs no measurement).
    ///
    /// Returns indices into [`PauliSum::terms`].
    pub fn measurement_groups(&self) -> Vec<Vec<usize>> {
        let mut groups: Vec<Vec<usize>> = Vec::new();
        for (idx, (_, s)) in self.terms.iter().enumerate() {
            if s.is_identity() {
                continue;
            }
            let mut placed = false;
            for group in groups.iter_mut() {
                if group
                    .iter()
                    .all(|&g| self.terms[g].1.qubit_wise_commutes(s).unwrap_or(false))
                {
                    group.push(idx);
                    placed = true;
                    break;
                }
            }
            if !placed {
                groups.push(vec![idx]);
            }
        }
        groups
    }

    /// The shared measurement basis of a qubit-wise commuting group: for each
    /// qubit the (non-identity) Pauli to measure, defaulting to Z.
    ///
    /// # Panics
    ///
    /// Panics if the group is not qubit-wise commuting (internal misuse).
    pub fn group_basis(&self, group: &[usize]) -> Vec<Pauli> {
        let mut basis = vec![Pauli::Z; self.n_qubits];
        let mut assigned = vec![false; self.n_qubits];
        for &idx in group {
            let s = &self.terms[idx].1;
            for q in 0..self.n_qubits {
                let p = s.pauli(q);
                if p != Pauli::I {
                    if assigned[q] {
                        assert_eq!(basis[q], p, "group is not qubit-wise commuting");
                    } else {
                        basis[q] = p;
                        assigned[q] = true;
                    }
                }
            }
        }
        basis
    }

    /// Scales all coefficients.
    pub fn scaled(&self, k: f64) -> PauliSum {
        PauliSum {
            n_qubits: self.n_qubits,
            terms: self.terms.iter().map(|(c, s)| (c * k, s.clone())).collect(),
        }
    }
}

impl fmt::Display for PauliSum {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.terms.is_empty() {
            return write!(f, "0");
        }
        for (k, (c, s)) in self.terms.iter().enumerate() {
            if k > 0 {
                write!(f, " + ")?;
            }
            write!(f, "{c:+.6}*{s}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn label_roundtrip_respects_qubit_order() {
        let p = PauliString::from_label("XIZ").unwrap();
        // Leftmost char is qubit 2.
        assert_eq!(p.pauli(2), Pauli::X);
        assert_eq!(p.pauli(1), Pauli::I);
        assert_eq!(p.pauli(0), Pauli::Z);
        assert_eq!(p.label(), "XIZ");
    }

    #[test]
    fn bad_label_rejected() {
        assert!(matches!(
            PauliString::from_label("XQZ"),
            Err(PauliError::BadLabel { ch: 'Q' })
        ));
    }

    #[test]
    fn masks_and_weight() {
        let p = PauliString::from_label("YXZI").unwrap();
        // qubit3=Y, qubit2=X, qubit1=Z, qubit0=I
        assert_eq!(p.weight(), 3);
        assert_eq!(p.x_mask(), 0b1100);
        assert_eq!(p.z_mask(), 0b1010);
        assert_eq!(p.y_count(), 1);
    }

    #[test]
    fn single_constructor() {
        let p = PauliString::single(3, 1, Pauli::X);
        assert_eq!(p.label(), "IXI");
    }

    #[test]
    fn pauli_matrices_square_to_identity() {
        for p in [Pauli::X, Pauli::Y, Pauli::Z, Pauli::I] {
            let m = p.matrix();
            assert!((&m * &m).approx_eq(&CMatrix::identity(2), 1e-15));
        }
    }

    #[test]
    fn string_matrix_is_hermitian_and_unitary() {
        let p = PauliString::from_label("XYZ").unwrap();
        let m = p.to_matrix();
        assert!(m.is_hermitian(1e-12));
        assert!(m.is_unitary(1e-12));
        assert_eq!(m.rows(), 8);
    }

    #[test]
    fn matrix_qubit_order_convention() {
        // Z on qubit 0 of a 2-qubit register: diag(1, -1, 1, -1) since basis
        // index bit 0 is qubit 0.
        let p = PauliString::from_label("IZ").unwrap();
        let m = p.to_matrix();
        assert!((m.at(0, 0).re - 1.0).abs() < 1e-15);
        assert!((m.at(1, 1).re + 1.0).abs() < 1e-15);
        assert!((m.at(2, 2).re - 1.0).abs() < 1e-15);
        assert!((m.at(3, 3).re + 1.0).abs() < 1e-15);
    }

    #[test]
    fn qubit_wise_commutation() {
        let a = PauliString::from_label("XIZ").unwrap();
        let b = PauliString::from_label("XZI").unwrap();
        let c = PauliString::from_label("ZIZ").unwrap();
        assert!(a.qubit_wise_commutes(&b).unwrap());
        assert!(!a.qubit_wise_commutes(&c).unwrap());
        let short = PauliString::from_label("XZ").unwrap();
        assert!(a.qubit_wise_commutes(&short).is_err());
    }

    #[test]
    fn sum_ground_energy_of_zz() {
        // H = Z Z has ground energy -1.
        let h = PauliSum::from_labels(&[(1.0, "ZZ")]).unwrap();
        assert!((h.ground_energy().unwrap() + 1.0).abs() < 1e-10);
    }

    #[test]
    fn sum_ground_energy_tfim_2q() {
        // H = -ZZ - 0.5(XI + IX): ground energy -sqrt(1 + ... )
        // For 2-qubit TFIM with J=1, h=0.5 ground energy is -(1 + h^2).sqrt()
        // ... verified numerically against dense eig instead of formula:
        let h = PauliSum::from_labels(&[(-1.0, "ZZ"), (-0.5, "XI"), (-0.5, "IX")]).unwrap();
        let e = h.ground_energy().unwrap();
        // Dense check.
        let m = h.to_matrix();
        let eig = qismet_mathkit::herm_eig(&m).unwrap();
        assert!((e - eig.values[0]).abs() < 1e-12);
        assert!(e < -1.0);
    }

    #[test]
    fn add_term_merges() {
        let mut h = PauliSum::zero(2);
        h.add_term(1.0, PauliString::from_label("ZZ").unwrap());
        h.add_term(0.5, PauliString::from_label("ZZ").unwrap());
        assert_eq!(h.terms().len(), 1);
        assert_eq!(h.terms()[0].0, 1.5);
    }

    #[test]
    fn prune_drops_tiny_terms() {
        let mut h = PauliSum::from_labels(&[(1e-14, "XX"), (1.0, "ZZ")]).unwrap();
        assert_eq!(h.prune(1e-12), 1);
        assert_eq!(h.terms().len(), 1);
    }

    #[test]
    fn identity_coefficient_extracted() {
        let h = PauliSum::from_labels(&[(0.25, "II"), (1.0, "ZZ")]).unwrap();
        assert_eq!(h.identity_coefficient(), 0.25);
        assert_eq!(h.one_norm(), 1.25);
    }

    #[test]
    fn measurement_groups_split_x_and_z() {
        // TFIM-style: ZZ terms group together, X terms group together.
        let h = PauliSum::from_labels(&[
            (1.0, "ZZI"),
            (1.0, "IZZ"),
            (0.5, "XII"),
            (0.5, "IXI"),
            (0.5, "IIX"),
        ])
        .unwrap();
        let groups = h.measurement_groups();
        assert_eq!(groups.len(), 2);
        let sizes: Vec<usize> = groups.iter().map(|g| g.len()).collect();
        assert!(sizes.contains(&2) && sizes.contains(&3));
    }

    #[test]
    fn group_basis_resolves_paulis() {
        let h = PauliSum::from_labels(&[(1.0, "XIX"), (1.0, "ZZI")]).unwrap();
        let groups = h.measurement_groups();
        // XIX and ZZI are qubit-wise commuting? qubit0: X vs I ok; qubit1:
        // I vs Z ok; qubit2: X vs Z -> not commuting. Two groups.
        assert_eq!(groups.len(), 2);
        let basis0 = h.group_basis(&groups[0]);
        assert_eq!(basis0[0], Pauli::X);
        assert_eq!(basis0[2], Pauli::X);
    }

    #[test]
    fn width_mismatch_in_from_labels() {
        assert!(matches!(
            PauliSum::from_labels(&[(1.0, "ZZ"), (1.0, "ZZZ")]),
            Err(PauliError::WidthMismatch { .. })
        ));
    }

    #[test]
    fn display_shows_terms() {
        let h = PauliSum::from_labels(&[(1.0, "XIX"), (-0.5, "ZZI")]).unwrap();
        let s = h.to_string();
        assert!(s.contains("XIX"));
        assert!(s.contains("ZZI"));
    }
}

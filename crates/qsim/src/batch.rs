//! Lane-batched (structure-of-arrays) statevector execution.
//!
//! A VQA workload is thousands of evaluations of the *same* compiled plan
//! at different parameter points — SPSA's θ⁺/θ⁻ pairs, gradient stencils,
//! independent campaign trials. At the paper's 4–12 qubit scale each single
//! evaluation is so small that per-op dispatch and strided butterfly access
//! dominate; this module amortizes the decoded op stream across `B` states
//! at once instead of making one state faster.
//!
//! [`BatchStateVector`] holds `B` independent states interleaved
//! **lane-major**: amplitude `i` of lane `l` lives at `amps[i * B + l]`,
//! so every per-amplitude access of the scalar kernels widens to a
//! contiguous `B`-element lane row and the innermost loops become stride-1
//! — the autovectorizer packs them where the scalar butterflies stride.
//! [`BatchedCircuit::bind`] drives one decoded op stream with `B` parameter
//! sets by *snapshot binding*: for each lane it runs the scalar
//! [`CompiledCircuit::rebind`] (the exact arithmetic of the sequential
//! path) and copies the parameter-dependent values — per-lane 2x2 matrices,
//! superop matrices, RZZ and table phases — into entry-major, lane-minor
//! storage. Structural data (index permutations, support sets, real-mode
//! flags) is angle-independent and shared across lanes.
//!
//! **Determinism contract:** lane `l` of every batched apply and batched
//! expectation is bitwise identical to the scalar path evaluating point
//! `l` on its own, because the per-lane arithmetic (operation order,
//! accumulation grouping, unit/diagonal branch selection, real-mode
//! gating) is the exact scalar expression. The `batched_equivalence`
//! proptest suite pins this for random circuits and lane counts.

use crate::compile::{
    CompiledCircuit, CompiledObservable, OffDiagTerm, PlanOp, REAL_RUN_MIN_QUBITS,
};
use crate::gate::GateError;
use crate::kernels;
use crate::statevector::StateVector;
use qismet_mathkit::Complex64;

/// Maximum lane count of a batched state. Eight f64 pairs fill two AVX-512
/// (or four AVX2) vectors per lane row; wider batches would spill the
/// per-orbit gather buffers out of registers.
pub const MAX_LANES: usize = kernels::MAX_LANES;

/// Widest state the lane-batched path is worth taking: beyond this the
/// batch no longer fits in cache alongside its scratch and the in-state
/// threaded path (which splits one large state across cores) wins instead.
/// Purely a performance gate — batched results are bitwise identical to
/// sequential at every width.
pub(crate) const LANE_BATCH_MAX_QUBITS: usize = 14;

/// `B` independent statevectors in one structure-of-arrays allocation,
/// interleaved lane-major (`amps[i * lanes + l]` is amplitude `i` of lane
/// `l`).
///
/// # Examples
///
/// ```
/// use qismet_qsim::BatchStateVector;
///
/// let b = BatchStateVector::new(3, 4);
/// assert_eq!(b.n_qubits(), 3);
/// assert_eq!(b.lanes(), 4);
/// // Every lane starts in |000>.
/// assert_eq!(b.amplitude(0, 2).re, 1.0);
/// assert_eq!(b.amplitude(5, 2).re, 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct BatchStateVector {
    n_qubits: usize,
    lanes: usize,
    amps: Vec<Complex64>,
}

impl BatchStateVector {
    /// Creates `lanes` states of `n_qubits` qubits, each in `|0...0>`.
    ///
    /// # Panics
    ///
    /// Panics if `lanes` is zero or exceeds [`MAX_LANES`].
    pub fn new(n_qubits: usize, lanes: usize) -> Self {
        assert!(
            (1..=MAX_LANES).contains(&lanes),
            "lane count must be in 1..={MAX_LANES}"
        );
        let mut b = BatchStateVector {
            n_qubits,
            lanes,
            amps: vec![Complex64::ZERO; (1usize << n_qubits) * lanes],
        };
        b.reset();
        b
    }

    /// Resets every lane to `|0...0>` in place.
    pub fn reset(&mut self) {
        self.amps.fill(Complex64::ZERO);
        self.amps[..self.lanes].fill(Complex64::ONE);
    }

    /// State width per lane.
    pub fn n_qubits(&self) -> usize {
        self.n_qubits
    }

    /// Number of lanes.
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// Amplitude `idx` of lane `lane`.
    ///
    /// # Panics
    ///
    /// Panics when `idx` or `lane` is out of range.
    pub fn amplitude(&self, idx: usize, lane: usize) -> Complex64 {
        assert!(lane < self.lanes, "lane out of range");
        self.amps[idx * self.lanes + lane]
    }

    /// Copies one lane out into an owned [`StateVector`].
    ///
    /// # Panics
    ///
    /// Panics when `lane` is out of range.
    pub fn lane_state(&self, lane: usize) -> StateVector {
        assert!(lane < self.lanes, "lane out of range");
        let mut sv = StateVector::new(self.n_qubits);
        sv.fill_from_strided(&self.amps, self.lanes, lane);
        sv
    }

    pub(crate) fn amps(&self) -> &[Complex64] {
        &self.amps
    }

    pub(crate) fn amps_mut(&mut self) -> &mut [Complex64] {
        &mut self.amps
    }
}

/// One lowered op of a batched plan: the structural twin of
/// [`PlanOp`] with every parameter-dependent value widened to per-lane
/// entry-major storage (`data[e * lanes + l]`).
#[derive(Debug, Clone)]
enum BatchOp {
    /// Per-lane fused 2x2 unitaries (`u[e * lanes + l]`, `e` row-major).
    OneQ {
        qubit: usize,
        u: Vec<Complex64>,
    },
    /// Per-lane fused **real** 2x2 unitaries.
    OneQReal {
        qubit: usize,
        m: Vec<f64>,
    },
    /// Structural (lane-independent) two-qubit ops.
    Cx {
        control: usize,
        target: usize,
    },
    Cz {
        a: usize,
        b: usize,
    },
    Swap {
        a: usize,
        b: usize,
    },
    /// Per-lane RZZ diagonal phases.
    Rzz {
        a: usize,
        b: usize,
        plus: Vec<Complex64>,
        minus: Vec<Complex64>,
    },
    /// Per-lane dense superoperator matrices over a shared support. A
    /// complex superop fills `m`; a **real** superop fills `mre` instead
    /// (the exactly-real entries as a bare `f64` plane, so the lane loops
    /// load them stride-1 rather than gathering `.re` out of interleaved
    /// complex pairs).
    Super {
        qubits: Vec<usize>,
        real: bool,
        m: Vec<Complex64>,
        mre: Vec<f64>,
    },
    /// Shared permutation structure with per-lane phases and `unit` flags
    /// (the permutation and `diagonal` flag are angle-independent, so they
    /// are identical across lanes of one compiled structure).
    Table {
        bits: Vec<usize>,
        offs: Vec<usize>,
        src: Vec<u8>,
        contig_shift: Option<usize>,
        diagonal: bool,
        phase: Vec<Complex64>,
        unit: Vec<bool>,
    },
}

thread_local! {
    /// Per-thread real-amplitude batched state for plans on the
    /// real-run fast path (see [`CompiledCircuit::runs_real`]); grown on
    /// demand and reused across runs like the scalar real scratch.
    static BATCH_REAL_STATE: core::cell::RefCell<Vec<f64>> =
        const { core::cell::RefCell::new(Vec::new()) };
}

/// A [`CompiledCircuit`] snapshot-bound at `B` parameter points: one
/// decoded op stream whose parameter-dependent data is widened per lane,
/// executed by the lane-batched kernels.
///
/// # Examples
///
/// ```
/// use qismet_qsim::{
///     BatchStateVector, BatchedCircuit, Circuit, CompiledCircuit,
///     CompiledObservable, Param, PauliSum,
/// };
///
/// let mut c = Circuit::new(2);
/// c.ry(Param::Free(0), 0).cx(0, 1);
/// let mut plan = CompiledCircuit::compile(&c);
/// let obs = CompiledObservable::compile(&PauliSum::from_labels(&[(1.0, "ZZ")]).unwrap());
/// let points = vec![vec![0.3], vec![0.7], vec![1.1], vec![1.5]];
/// let batched = BatchedCircuit::bind(&mut plan, &points).unwrap();
/// let mut bsv = BatchStateVector::new(2, 4);
/// let mut out = [0.0f64; 4];
/// batched.run_expectation(&mut bsv, &obs, &mut out);
/// // Lane 0 is bitwise identical to the scalar path at points[0].
/// let mut sv = qismet_qsim::StateVector::new(2);
/// plan.rebind(&points[0]).unwrap();
/// let scalar = plan.run_expectation(&mut sv, &obs).unwrap();
/// assert_eq!(scalar.to_bits(), out[0].to_bits());
/// ```
#[derive(Debug, Clone)]
pub struct BatchedCircuit {
    n_qubits: usize,
    lanes: usize,
    real_run: bool,
    ops: Vec<BatchOp>,
}

impl BatchedCircuit {
    /// Snapshot-binds `plan` at each of `points` (one lane per point): for
    /// each lane the scalar [`CompiledCircuit::rebind`] runs — the exact
    /// arithmetic of the sequential path, so per-lane op data is bitwise
    /// identical to what a scalar evaluation at that point would use — and
    /// the parameter-dependent values are copied into per-lane storage.
    /// The plan's residual binding afterwards is the last point's.
    ///
    /// # Errors
    ///
    /// [`GateError::UnboundParameter`] if any point is shorter than the
    /// plan's parameter count.
    ///
    /// # Panics
    ///
    /// Panics if `points` is empty or longer than [`MAX_LANES`].
    pub fn bind(plan: &mut CompiledCircuit, points: &[Vec<f64>]) -> Result<Self, GateError> {
        let lanes = points.len();
        assert!(
            (1..=MAX_LANES).contains(&lanes),
            "lane count must be in 1..={MAX_LANES}"
        );
        plan.rebind(&points[0])?;
        let ops = plan
            .ops
            .iter()
            .map(|op| Self::skeleton(plan, op, lanes))
            .collect();
        let mut this = BatchedCircuit {
            n_qubits: plan.n_qubits(),
            lanes,
            real_run: plan.real_run,
            ops,
        };
        this.rebind(plan, points)?;
        Ok(this)
    }

    /// Re-snapshots this binding at a fresh set of points without
    /// allocating — the hot-path twin of [`Self::bind`] for loops that
    /// evaluate one plan at thousands of point batches. Runs the same
    /// per-lane scalar [`CompiledCircuit::rebind`] + snapshot protocol
    /// into the existing per-lane storage, so the result is bitwise
    /// identical to a fresh [`Self::bind`] at the same points.
    ///
    /// # Errors
    ///
    /// [`GateError::UnboundParameter`] if any point is shorter than the
    /// plan's parameter count. The binding is left partially updated on
    /// error and must be successfully rebound before its next use.
    ///
    /// # Panics
    ///
    /// Panics when `points.len()` differs from the bound lane count or
    /// when `plan` does not structurally match the plan this binding was
    /// built from (see [`Self::matches`]).
    pub fn rebind(
        &mut self,
        plan: &mut CompiledCircuit,
        points: &[Vec<f64>],
    ) -> Result<(), GateError> {
        assert_eq!(points.len(), self.lanes, "one point per bound lane");
        assert!(
            self.matches(plan),
            "rebind requires the plan structure this binding was built from"
        );
        for (li, point) in points.iter().enumerate() {
            plan.rebind(point)?;
            for (op, bop) in plan.ops.iter().zip(self.ops.iter_mut()) {
                Self::snapshot_lane(plan, op, bop, self.lanes, li);
            }
        }
        Ok(())
    }

    /// `true` when `plan` has the structure this binding was built from —
    /// same width, real-run mode, op stream, and angle-independent op data
    /// — which is exactly the precondition of [`Self::rebind`]. Callers
    /// caching a binding check this and fall back to a fresh
    /// [`Self::bind`] when the plan changed underneath them.
    pub fn matches(&self, plan: &CompiledCircuit) -> bool {
        if plan.n_qubits() != self.n_qubits
            || plan.real_run != self.real_run
            || plan.ops.len() != self.ops.len()
        {
            return false;
        }
        plan.ops
            .iter()
            .zip(self.ops.iter())
            .all(|(op, bop)| match (op, bop) {
                (PlanOp::OneQ { qubit, .. }, BatchOp::OneQ { qubit: q, .. })
                | (PlanOp::OneQReal { qubit, .. }, BatchOp::OneQReal { qubit: q, .. }) => {
                    qubit == q
                }
                (
                    PlanOp::Cx { control, target },
                    BatchOp::Cx {
                        control: c,
                        target: t,
                    },
                ) => control == c && target == t,
                (PlanOp::Cz { a, b }, BatchOp::Cz { a: x, b: y })
                | (PlanOp::Swap { a, b }, BatchOp::Swap { a: x, b: y })
                | (PlanOp::Rzz { a, b, .. }, BatchOp::Rzz { a: x, b: y, .. }) => a == x && b == y,
                (
                    PlanOp::Super { idx },
                    BatchOp::Super {
                        qubits,
                        real,
                        m,
                        mre,
                    },
                ) => {
                    let sup = &plan.supers[*idx];
                    let d = 1usize << sup.k();
                    let plane = if sup.real { mre.len() } else { m.len() };
                    sup.qubits == *qubits && sup.real == *real && d * d * self.lanes == plane
                }
                (
                    PlanOp::Table { idx },
                    BatchOp::Table {
                        bits,
                        offs,
                        src,
                        contig_shift,
                        diagonal,
                        phase,
                        ..
                    },
                ) => {
                    let t = &plan.tables[*idx];
                    t.contig_shift == *contig_shift
                        && t.diagonal == *diagonal
                        && t.phase.len() * self.lanes == phase.len()
                        && t.bits == *bits
                        && t.offs == *offs
                        && t.src == *src
                }
                _ => false,
            })
    }

    /// Allocates one batched op's storage with its structural data filled
    /// in (per-lane slots zeroed; [`Self::snapshot_lane`] fills them).
    fn skeleton(plan: &CompiledCircuit, op: &PlanOp, lanes: usize) -> BatchOp {
        match *op {
            PlanOp::OneQ { qubit, .. } => BatchOp::OneQ {
                qubit,
                u: vec![Complex64::ZERO; 4 * lanes],
            },
            PlanOp::OneQReal { qubit, .. } => BatchOp::OneQReal {
                qubit,
                m: vec![0.0; 4 * lanes],
            },
            PlanOp::Cx { control, target } => BatchOp::Cx { control, target },
            PlanOp::Cz { a, b } => BatchOp::Cz { a, b },
            PlanOp::Swap { a, b } => BatchOp::Swap { a, b },
            PlanOp::Rzz { a, b, .. } => BatchOp::Rzz {
                a,
                b,
                plus: vec![Complex64::ZERO; lanes],
                minus: vec![Complex64::ZERO; lanes],
            },
            PlanOp::Super { idx } => {
                let sup = &plan.supers[idx];
                let d = 1usize << sup.k();
                BatchOp::Super {
                    qubits: sup.qubits.clone(),
                    real: sup.real,
                    m: if sup.real {
                        Vec::new()
                    } else {
                        vec![Complex64::ZERO; d * d * lanes]
                    },
                    mre: if sup.real {
                        vec![0.0; d * d * lanes]
                    } else {
                        Vec::new()
                    },
                }
            }
            PlanOp::Table { idx } => {
                let t = &plan.tables[idx];
                BatchOp::Table {
                    bits: t.bits.clone(),
                    offs: t.offs.clone(),
                    src: t.src.clone(),
                    contig_shift: t.contig_shift,
                    diagonal: t.diagonal,
                    phase: vec![Complex64::ZERO; t.phase.len() * lanes],
                    unit: vec![false; lanes],
                }
            }
        }
    }

    /// Copies lane `li`'s parameter-dependent values out of the freshly
    /// rebound `plan` into the batched op storage.
    fn snapshot_lane(
        plan: &CompiledCircuit,
        op: &PlanOp,
        bop: &mut BatchOp,
        lanes: usize,
        li: usize,
    ) {
        match (op, bop) {
            (PlanOp::OneQ { u, .. }, BatchOp::OneQ { u: store, .. }) => {
                let es = [u[0][0], u[0][1], u[1][0], u[1][1]];
                for (chunk, v) in store.chunks_exact_mut(lanes).zip(es) {
                    chunk[li] = v;
                }
            }
            (PlanOp::OneQReal { m, .. }, BatchOp::OneQReal { m: store, .. }) => {
                let es = [m[0][0], m[0][1], m[1][0], m[1][1]];
                for (chunk, v) in store.chunks_exact_mut(lanes).zip(es) {
                    chunk[li] = v;
                }
            }
            (
                PlanOp::Rzz { plus, minus, .. },
                BatchOp::Rzz {
                    plus: p, minus: mn, ..
                },
            ) => {
                p[li] = *plus;
                mn[li] = *minus;
            }
            (
                PlanOp::Super { idx },
                BatchOp::Super {
                    real,
                    m: store,
                    mre: store_re,
                    ..
                },
            ) => {
                let sup = &plan.supers[*idx];
                if *real {
                    // Real superop entries are exactly real by construction;
                    // `.re` preserves their bits in the f64 plane.
                    for (chunk, v) in store_re.chunks_exact_mut(lanes).zip(sup.m.iter()) {
                        chunk[li] = v.re;
                    }
                } else {
                    for (chunk, &v) in store.chunks_exact_mut(lanes).zip(sup.m.iter()) {
                        chunk[li] = v;
                    }
                }
            }
            (
                PlanOp::Table { idx },
                BatchOp::Table {
                    src,
                    diagonal,
                    phase,
                    unit,
                    ..
                },
            ) => {
                let t = &plan.tables[*idx];
                debug_assert_eq!(
                    src, &t.src,
                    "table permutation is angle-independent across lanes"
                );
                debug_assert_eq!(*diagonal, t.diagonal);
                unit[li] = t.unit;
                // A unit lane's phases are never read by the permutation
                // kernels (its branch selects the bare source amplitude),
                // so skip the scatter copy — at 8 lanes a fused CX-ladder
                // table would otherwise pay `phase.len()` strided writes
                // per rebind for values that are all 1. Diagonal tables
                // are the exception: their kernel branch multiplies every
                // lane by its phase (exactly as the scalar path does), so
                // they always need the snapshot.
                if !t.unit || t.diagonal {
                    for (chunk, &ph) in phase.chunks_exact_mut(lanes).zip(t.phase.iter()) {
                        chunk[li] = ph;
                    }
                }
            }
            (PlanOp::Cx { .. }, BatchOp::Cx { .. })
            | (PlanOp::Cz { .. }, BatchOp::Cz { .. })
            | (PlanOp::Swap { .. }, BatchOp::Swap { .. }) => {}
            _ => unreachable!("skeleton and plan op streams are aligned"),
        }
    }

    /// State width per lane.
    pub fn n_qubits(&self) -> usize {
        self.n_qubits
    }

    /// Number of bound lanes.
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// `true` when every lane takes the real-amplitude fast path (the
    /// real-run property is structural, so all lanes agree).
    pub fn runs_real(&self) -> bool {
        self.real_run
    }

    /// Applies one batched op to a lane-major complex amplitude slice.
    fn apply_op(&self, op: &BatchOp, amps: &mut [Complex64]) {
        let lanes = self.lanes;
        match op {
            BatchOp::OneQ { qubit, u } => kernels::apply_1q_batch(amps, u, lanes, 1usize << qubit),
            BatchOp::OneQReal { qubit, m } => {
                kernels::apply_1q_real_batch(amps, m, lanes, 1usize << qubit)
            }
            BatchOp::Cx { control, target } => {
                kernels::apply_cx_batch(amps, lanes, 1usize << control, 1usize << target)
            }
            BatchOp::Cz { a, b } => kernels::apply_cz_batch(amps, lanes, 1usize << a, 1usize << b),
            BatchOp::Swap { a, b } => {
                kernels::apply_swap_batch(amps, lanes, 1usize << a, 1usize << b)
            }
            BatchOp::Rzz { a, b, plus, minus } => {
                kernels::apply_rzz_batch(amps, lanes, minus, plus, 1usize << a, 1usize << b)
            }
            BatchOp::Super {
                qubits,
                real,
                m,
                mre,
            } => {
                if qubits.len() == 2 {
                    kernels::apply_super2_batch(
                        amps,
                        lanes,
                        m,
                        mre,
                        1usize << qubits[0],
                        1usize << qubits[1],
                        *real,
                    );
                } else {
                    kernels::apply_super3_batch(
                        amps,
                        lanes,
                        m,
                        mre,
                        1usize << qubits[0],
                        1usize << qubits[1],
                        1usize << qubits[2],
                        *real,
                    );
                }
            }
            BatchOp::Table {
                bits,
                offs,
                src,
                contig_shift,
                diagonal,
                phase,
                unit,
            } => {
                if let Some(shift) = contig_shift {
                    kernels::apply_table_contig_batch(
                        amps, lanes, *shift, src, phase, *diagonal, unit,
                    );
                } else {
                    kernels::apply_table_batch(
                        amps, lanes, bits, offs, src, phase, *diagonal, unit,
                    );
                }
            }
        }
    }

    /// Real twin of [`Self::apply_op`] on a lane-major `f64` slice; only
    /// called when [`Self::runs_real`] holds, which excludes the complex op
    /// kinds by construction.
    fn apply_op_real(&self, op: &BatchOp, amps: &mut Vec<f64>) {
        let lanes = self.lanes;
        match op {
            BatchOp::OneQReal { qubit, m } => {
                kernels::apply_1q_real_f64_batch(amps, m, lanes, 1usize << qubit)
            }
            BatchOp::Cx { control, target } => {
                kernels::apply_cx_batch(amps, lanes, 1usize << control, 1usize << target)
            }
            BatchOp::Cz { a, b } => kernels::apply_cz_batch(amps, lanes, 1usize << a, 1usize << b),
            BatchOp::Swap { a, b } => {
                kernels::apply_swap_batch(amps, lanes, 1usize << a, 1usize << b)
            }
            BatchOp::Super { qubits, mre, .. } => {
                if qubits.len() == 2 {
                    kernels::apply_super2_f64_batch(
                        amps,
                        lanes,
                        mre,
                        1usize << qubits[0],
                        1usize << qubits[1],
                    );
                } else {
                    kernels::apply_super3_f64_batch(
                        amps,
                        lanes,
                        mre,
                        1usize << qubits[0],
                        1usize << qubits[1],
                        1usize << qubits[2],
                    );
                }
            }
            BatchOp::Table {
                bits,
                offs,
                src,
                contig_shift,
                diagonal,
                phase,
                unit,
            } => {
                if let Some(shift) = contig_shift {
                    kernels::apply_table_contig_f64_batch(
                        amps, lanes, *shift, src, phase, *diagonal, unit,
                    );
                } else {
                    kernels::apply_table_f64_batch(
                        amps, lanes, bits, offs, src, phase, *diagonal, unit,
                    );
                }
            }
            BatchOp::OneQ { .. } | BatchOp::Rzz { .. } => {
                unreachable!("complex op in a real-run batched plan")
            }
        }
    }

    /// Resets every lane to `|0...0>` and applies the batched plan — the
    /// lane-batched twin of [`CompiledCircuit::run`], including the
    /// real-amplitude fast path under the same width gate.
    ///
    /// # Panics
    ///
    /// Panics on width or lane-count mismatch.
    pub fn run(&self, bsv: &mut BatchStateVector) {
        self.check_state(bsv);
        if self.real_run && self.n_qubits >= REAL_RUN_MIN_QUBITS {
            self.run_real_with(bsv, |_, _| ());
            return;
        }
        bsv.reset();
        for op in &self.ops {
            self.apply_op(op, bsv.amps_mut());
        }
    }

    /// [`Self::run`] fused with the batched expectation, writing one energy
    /// per lane into `out` — the lane-batched twin of
    /// [`CompiledCircuit::run_expectation`]: real-run plans compute every
    /// lane's energy on the `f64` state before the complex write-back.
    ///
    /// # Panics
    ///
    /// Panics on width, lane-count, or observable mismatch, or when `out`
    /// is shorter than the lane count.
    pub fn run_expectation(
        &self,
        bsv: &mut BatchStateVector,
        obs: &CompiledObservable,
        out: &mut [f64],
    ) {
        self.check_state(bsv);
        assert_eq!(obs.n_qubits(), self.n_qubits, "observable width");
        assert!(out.len() >= self.lanes, "one output slot per lane");
        if self.real_run && self.n_qubits >= REAL_RUN_MIN_QUBITS {
            self.run_real_with(bsv, |r, lanes| expectation_real_batch(obs, r, lanes, out));
            return;
        }
        bsv.reset();
        for op in &self.ops {
            self.apply_op(op, bsv.amps_mut());
        }
        expectation_batch(obs, bsv.amps(), self.lanes, out);
    }

    /// [`Self::run_expectation`] minus the complex write-back: real-run
    /// plans leave `bsv` untouched (stale), so callers that only consume
    /// the per-lane energies skip materializing `lanes * 2^n` complex
    /// amplitudes per evaluation. Non-real plans still evolve `bsv` in
    /// place. Backend-internal — the public API keeps the "state reflects
    /// the run" contract.
    ///
    /// # Panics
    ///
    /// Panics on width, lane-count, or observable mismatch, or when `out`
    /// is shorter than the lane count.
    pub(crate) fn run_expectation_only(
        &self,
        bsv: &mut BatchStateVector,
        obs: &CompiledObservable,
        out: &mut [f64],
    ) {
        self.check_state(bsv);
        assert_eq!(obs.n_qubits(), self.n_qubits, "observable width");
        assert!(out.len() >= self.lanes, "one output slot per lane");
        if self.real_run && self.n_qubits >= REAL_RUN_MIN_QUBITS {
            self.run_real_scratch(|r, lanes| expectation_real_batch(obs, r, lanes, out));
            return;
        }
        bsv.reset();
        for op in &self.ops {
            self.apply_op(op, bsv.amps_mut());
        }
        expectation_batch(obs, bsv.amps(), self.lanes, out);
    }

    /// Evolves the thread-local `f64` batched scratch from all-lanes
    /// `|0...0>` and runs `f` on the final state — the batched twin of the
    /// scalar real-run scratch protocol, without the complex write-back.
    fn run_real_scratch(&self, f: impl FnOnce(&[f64], usize)) {
        BATCH_REAL_STATE.with(|cell| {
            let mut r = cell.borrow_mut();
            let n = (1usize << self.n_qubits) * self.lanes;
            r.clear();
            r.resize(n, 0.0);
            r[..self.lanes].fill(1.0);
            for op in &self.ops {
                self.apply_op_real(op, &mut r);
            }
            f(&r, self.lanes);
        });
    }

    /// [`Self::run_real_scratch`] followed by writing the (exactly real)
    /// amplitudes back into `bsv`.
    fn run_real_with(&self, bsv: &mut BatchStateVector, f: impl FnOnce(&[f64], usize)) {
        self.run_real_scratch(|r, lanes| {
            f(r, lanes);
            for (a, &x) in bsv.amps_mut().iter_mut().zip(r.iter()) {
                *a = Complex64::new(x, 0.0);
            }
        });
    }

    fn check_state(&self, bsv: &BatchStateVector) {
        assert_eq!(
            bsv.n_qubits(),
            self.n_qubits,
            "plan width must match state width"
        );
        assert_eq!(bsv.lanes(), self.lanes, "plan and state lane counts");
    }
}

// ---------------------------------------------------------------------------
// Lane-batched expectation twins.
//
// These replicate CompiledObservable's block sweeps branch for branch —
// the four-accumulator grouping of the diagonal sweep, the run-packed
// pure-X pair walk, the per-term `total += prefactor * acc` combination,
// the BLOCK chunking — with every per-amplitude access widened to a lane
// row, so lane `l` of the batched result is bitwise identical to the
// scalar expectation of lane `l`'s state.
// ---------------------------------------------------------------------------

use kernels::{lane_dispatch, lane_row};

/// Per-lane diagonal contribution of the amplitude-index block
/// `[start, start + rows)`; `block` is its lane-major slice. Monomorphized
/// on the lane count `L` (see [`kernels::lane_dispatch`]) so the lane
/// loops have compile-time trip counts.
fn diag_block_batch<const L: usize>(
    obs: &CompiledObservable,
    block: &[Complex64],
    start: usize,
    out: &mut [f64; L],
) {
    let rows = block.len() / L;
    if let Some(w) = &obs.diag_table {
        let ws = &w[start..start + rows];
        let mut fp = [[0.0f64; L]; 4];
        let mut i = 0usize;
        while i + 4 <= rows {
            for k in 0..4 {
                let row = lane_row::<L, _>(block, (i + k) * L);
                let wv = ws[i + k];
                let lane_acc = &mut fp[k];
                for la in 0..L {
                    lane_acc[la] += row[la].norm_sqr() * wv;
                }
            }
            i += 4;
        }
        while i < rows {
            let row = lane_row::<L, _>(block, i * L);
            let wv = ws[i];
            for la in 0..L {
                fp[0][la] += row[la].norm_sqr() * wv;
            }
            i += 1;
        }
        for la in 0..L {
            out[la] = (fp[0][la] + fp[1][la]) + (fp[2][la] + fp[3][la]);
        }
    } else {
        let mut acc = [0.0f64; L];
        for i in 0..rows {
            let c = start + i;
            let row = lane_row::<L, _>(block, i * L);
            for &(coeff, z) in &obs.diag {
                let signed = if (c & z).count_ones().is_multiple_of(2) {
                    coeff
                } else {
                    -coeff
                };
                for la in 0..L {
                    acc[la] += signed * row[la].norm_sqr();
                }
            }
        }
        *out = acc;
    }
}

/// Per-lane contribution of one off-diagonal term over the pair-index
/// block `[p0, p1)` on a lane-major complex state.
fn offdiag_block_batch<const L: usize>(
    t: &OffDiagTerm,
    amps: &[Complex64],
    p0: usize,
    p1: usize,
    out: &mut [f64; L],
) {
    let low = t.pair_bit - 1;
    let mut fp = [[0.0f64; L]; 4];
    if t.z_mask == 0 && !t.use_im {
        if t.pair_bit >= 8 {
            let mut p = p0;
            while p < p1 {
                let c0 = (p & low) | ((p & !low) << 1);
                let run = (t.pair_bit - (p & low)).min(p1 - p);
                let d0 = c0 ^ t.x_mask;
                let mut i = 0usize;
                while i + 4 <= run {
                    for (k, lane_acc) in fp.iter_mut().enumerate() {
                        let a = lane_row::<L, _>(amps, (c0 + i + k) * L);
                        let d = lane_row::<L, _>(amps, (d0 + i + k) * L);
                        for la in 0..L {
                            lane_acc[la] += d[la].re * a[la].re + d[la].im * a[la].im;
                        }
                    }
                    i += 4;
                }
                while i < run {
                    let a = lane_row::<L, _>(amps, (c0 + i) * L);
                    let d = lane_row::<L, _>(amps, (d0 + i) * L);
                    for la in 0..L {
                        fp[0][la] += d[la].re * a[la].re + d[la].im * a[la].im;
                    }
                    i += 1;
                }
                p += run;
            }
        } else {
            let mut p = p0;
            while p + 4 <= p1 {
                for (k, lane_acc) in fp.iter_mut().enumerate() {
                    let c = ((p + k) & low) | (((p + k) & !low) << 1);
                    let a = lane_row::<L, _>(amps, c * L);
                    let d = lane_row::<L, _>(amps, (c ^ t.x_mask) * L);
                    for la in 0..L {
                        lane_acc[la] += d[la].re * a[la].re + d[la].im * a[la].im;
                    }
                }
                p += 4;
            }
            while p < p1 {
                let c = (p & low) | ((p & !low) << 1);
                let a = lane_row::<L, _>(amps, c * L);
                let d = lane_row::<L, _>(amps, (c ^ t.x_mask) * L);
                for la in 0..L {
                    fp[0][la] += d[la].re * a[la].re + d[la].im * a[la].im;
                }
                p += 1;
            }
        }
    } else {
        let lane_term = |p: usize, k: usize, fp: &mut [[f64; L]; 4]| {
            let c = (p & low) | ((p & !low) << 1);
            let a = lane_row::<L, _>(amps, c * L);
            let d = lane_row::<L, _>(amps, (c ^ t.x_mask) * L);
            let neg = !(c & t.z_mask).count_ones().is_multiple_of(2);
            let lane_acc = &mut fp[k];
            for la in 0..L {
                let v = d[la].conj() * a[la];
                let m = if t.use_im { v.im } else { v.re };
                lane_acc[la] += if neg { -m } else { m };
            }
        };
        let mut p = p0;
        while p + 4 <= p1 {
            for k in 0..4 {
                lane_term(p + k, k, &mut fp);
            }
            p += 4;
        }
        while p < p1 {
            lane_term(p, 0, &mut fp);
            p += 1;
        }
    }
    for la in 0..L {
        out[la] = (fp[0][la] + fp[1][la]) + (fp[2][la] + fp[3][la]);
    }
}

/// Real twin of [`diag_block_batch`] on a lane-major `f64` state.
fn diag_block_real_batch<const L: usize>(
    obs: &CompiledObservable,
    block: &[f64],
    start: usize,
    out: &mut [f64; L],
) {
    let rows = block.len() / L;
    if let Some(w) = &obs.diag_table {
        let ws = &w[start..start + rows];
        let mut fp = [[0.0f64; L]; 4];
        let mut i = 0usize;
        while i + 4 <= rows {
            for k in 0..4 {
                let row = lane_row::<L, _>(block, (i + k) * L);
                let wv = ws[i + k];
                let lane_acc = &mut fp[k];
                for la in 0..L {
                    lane_acc[la] += (row[la] * row[la]) * wv;
                }
            }
            i += 4;
        }
        while i < rows {
            let row = lane_row::<L, _>(block, i * L);
            let wv = ws[i];
            for la in 0..L {
                fp[0][la] += (row[la] * row[la]) * wv;
            }
            i += 1;
        }
        for la in 0..L {
            out[la] = (fp[0][la] + fp[1][la]) + (fp[2][la] + fp[3][la]);
        }
    } else {
        let mut acc = [0.0f64; L];
        for i in 0..rows {
            let c = start + i;
            let row = lane_row::<L, _>(block, i * L);
            for &(coeff, z) in &obs.diag {
                let signed = if (c & z).count_ones().is_multiple_of(2) {
                    coeff
                } else {
                    -coeff
                };
                for la in 0..L {
                    acc[la] += signed * (row[la] * row[la]);
                }
            }
        }
        *out = acc;
    }
}

/// Real twin of [`offdiag_block_batch`]: odd-Y terms contribute exactly
/// zero on a real state, matching the scalar real kernel.
fn offdiag_block_real_batch<const L: usize>(
    t: &OffDiagTerm,
    amps: &[f64],
    p0: usize,
    p1: usize,
    out: &mut [f64; L],
) {
    if t.use_im {
        out.fill(0.0);
        return;
    }
    let low = t.pair_bit - 1;
    let mut fp = [[0.0f64; L]; 4];
    if t.z_mask == 0 {
        if t.pair_bit >= 8 {
            let mut p = p0;
            while p < p1 {
                let c0 = (p & low) | ((p & !low) << 1);
                let run = (t.pair_bit - (p & low)).min(p1 - p);
                let d0 = c0 ^ t.x_mask;
                let mut i = 0usize;
                while i + 4 <= run {
                    for (k, lane_acc) in fp.iter_mut().enumerate() {
                        let a = lane_row::<L, _>(amps, (c0 + i + k) * L);
                        let d = lane_row::<L, _>(amps, (d0 + i + k) * L);
                        for la in 0..L {
                            lane_acc[la] += d[la] * a[la];
                        }
                    }
                    i += 4;
                }
                while i < run {
                    let a = lane_row::<L, _>(amps, (c0 + i) * L);
                    let d = lane_row::<L, _>(amps, (d0 + i) * L);
                    for la in 0..L {
                        fp[0][la] += d[la] * a[la];
                    }
                    i += 1;
                }
                p += run;
            }
        } else {
            let mut p = p0;
            while p + 4 <= p1 {
                for (k, lane_acc) in fp.iter_mut().enumerate() {
                    let c = ((p + k) & low) | (((p + k) & !low) << 1);
                    let a = lane_row::<L, _>(amps, c * L);
                    let d = lane_row::<L, _>(amps, (c ^ t.x_mask) * L);
                    for la in 0..L {
                        lane_acc[la] += d[la] * a[la];
                    }
                }
                p += 4;
            }
            while p < p1 {
                let c = (p & low) | ((p & !low) << 1);
                let a = lane_row::<L, _>(amps, c * L);
                let d = lane_row::<L, _>(amps, (c ^ t.x_mask) * L);
                for la in 0..L {
                    fp[0][la] += d[la] * a[la];
                }
                p += 1;
            }
        }
    } else {
        let lane_term = |p: usize, k: usize, fp: &mut [[f64; L]; 4]| {
            let c = (p & low) | ((p & !low) << 1);
            let a = lane_row::<L, _>(amps, c * L);
            let d = lane_row::<L, _>(amps, (c ^ t.x_mask) * L);
            let neg = !(c & t.z_mask).count_ones().is_multiple_of(2);
            let lane_acc = &mut fp[k];
            for la in 0..L {
                let m = d[la] * a[la];
                lane_acc[la] += if neg { -m } else { m };
            }
        };
        let mut p = p0;
        while p + 4 <= p1 {
            for k in 0..4 {
                lane_term(p + k, k, &mut fp);
            }
            p += 4;
        }
        while p < p1 {
            lane_term(p, 0, &mut fp);
            p += 1;
        }
    }
    for la in 0..L {
        out[la] = (fp[0][la] + fp[1][la]) + (fp[2][la] + fp[3][la]);
    }
}

/// The lane-batched fused expectation: one energy per lane, each bitwise
/// identical to [`CompiledObservable::expectation`] on that lane's state
/// (same BLOCK chunking, same block-order partial combination, same
/// per-term prefactor application).
pub(crate) fn expectation_batch(
    obs: &CompiledObservable,
    amps: &[Complex64],
    lanes: usize,
    out: &mut [f64],
) {
    lane_dispatch!(lanes, expectation_batch_mono(obs, amps, out));
}

fn expectation_batch_mono<const L: usize>(
    obs: &CompiledObservable,
    amps: &[Complex64],
    out: &mut [f64],
) {
    let dim = amps.len() / L;
    let mut total = [0.0f64; L];
    let mut blk = [0.0f64; L];
    if !obs.diag.is_empty() {
        let mut acc = [0.0f64; L];
        let mut start = 0usize;
        while start < dim {
            let end = (start + kernels::BLOCK).min(dim);
            diag_block_batch(obs, &amps[start * L..end * L], start, &mut blk);
            for la in 0..L {
                acc[la] += blk[la];
            }
            start = end;
        }
        for la in 0..L {
            total[la] += acc[la];
        }
    }
    let n_pairs = dim >> 1;
    for t in &obs.offdiag {
        let mut acc = [0.0f64; L];
        let mut p0 = 0usize;
        while p0 < n_pairs {
            let p1 = (p0 + kernels::BLOCK).min(n_pairs);
            offdiag_block_batch(t, amps, p0, p1, &mut blk);
            for la in 0..L {
                acc[la] += blk[la];
            }
            p0 = p1;
        }
        for la in 0..L {
            total[la] += t.prefactor * acc[la];
        }
    }
    out[..L].copy_from_slice(&total);
}

/// Real twin of [`expectation_batch`] on the lane-major `f64` real-run
/// state.
pub(crate) fn expectation_real_batch(
    obs: &CompiledObservable,
    amps: &[f64],
    lanes: usize,
    out: &mut [f64],
) {
    lane_dispatch!(lanes, expectation_real_batch_mono(obs, amps, out));
}

fn expectation_real_batch_mono<const L: usize>(
    obs: &CompiledObservable,
    amps: &[f64],
    out: &mut [f64],
) {
    let dim = amps.len() / L;
    let mut total = [0.0f64; L];
    let mut blk = [0.0f64; L];
    if !obs.diag.is_empty() {
        let mut acc = [0.0f64; L];
        let mut start = 0usize;
        while start < dim {
            let end = (start + kernels::BLOCK).min(dim);
            diag_block_real_batch(obs, &amps[start * L..end * L], start, &mut blk);
            for la in 0..L {
                acc[la] += blk[la];
            }
            start = end;
        }
        for la in 0..L {
            total[la] += acc[la];
        }
    }
    let n_pairs = dim >> 1;
    for t in &obs.offdiag {
        let mut acc = [0.0f64; L];
        let mut p0 = 0usize;
        while p0 < n_pairs {
            let p1 = (p0 + kernels::BLOCK).min(n_pairs);
            offdiag_block_real_batch(t, amps, p0, p1, &mut blk);
            for la in 0..L {
                acc[la] += blk[la];
            }
            p0 = p1;
        }
        for la in 0..L {
            total[la] += t.prefactor * acc[la];
        }
    }
    out[..L].copy_from_slice(&total);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::Circuit;
    use crate::gate::Param;
    use crate::pauli::PauliSum;
    use qismet_mathkit::rng_from_seed;
    use rand::Rng;

    const ML: usize = MAX_LANES;

    fn ansatz(n: usize) -> (Circuit, usize) {
        let mut c = Circuit::new(n);
        let mut k = 0usize;
        for _ in 0..3 {
            for q in 0..n {
                c.ry(Param::Free(k), q);
                k += 1;
            }
            for q in 0..n - 1 {
                c.cx(q, q + 1);
            }
        }
        (c, k)
    }

    fn mixed_ansatz(n: usize) -> (Circuit, usize) {
        let mut c = Circuit::new(n);
        let mut k = 0usize;
        for layer in 0..3 {
            for q in 0..n {
                c.ry(Param::Free(k), q);
                k += 1;
                c.rz(Param::Free(k), q);
                k += 1;
            }
            for q in 0..n - 1 {
                if (layer + q) % 2 == 0 {
                    c.rzz(Param::Free(k), q, q + 1);
                    k += 1;
                } else {
                    c.cz(q, q + 1);
                }
            }
        }
        (c, k)
    }

    fn tfim(n: usize) -> PauliSum {
        let mut labels: Vec<(f64, String)> = Vec::new();
        for q in 0..n - 1 {
            let mut l = vec!['I'; n];
            l[q] = 'Z';
            l[q + 1] = 'Z';
            labels.push((-1.0, l.into_iter().collect()));
        }
        for q in 0..n {
            let mut l = vec!['I'; n];
            l[q] = 'X';
            labels.push((-0.7, l.into_iter().collect()));
        }
        let refs: Vec<(f64, &str)> = labels.iter().map(|(c, s)| (*c, s.as_str())).collect();
        PauliSum::from_labels(&refs).unwrap()
    }

    fn points(k: usize, lanes: usize, seed: u64) -> Vec<Vec<f64>> {
        let mut rng = rng_from_seed(seed);
        (0..lanes)
            .map(|_| (0..k).map(|_| rng.gen::<f64>() * 4.0 - 2.0).collect())
            .collect()
    }

    #[test]
    fn batched_state_and_energy_match_scalar_bitwise() {
        for (n, lanes) in [(3usize, 2usize), (4, 4), (5, 8), (7, 4), (8, 8)] {
            let (c, k) = ansatz(n);
            let obs = CompiledObservable::compile(&tfim(n));
            let mut plan = CompiledCircuit::compile(&c);
            let pts = points(k, lanes, 41 + n as u64);
            let batched = BatchedCircuit::bind(&mut plan, &pts).unwrap();
            let mut bsv = BatchStateVector::new(n, lanes);
            let mut out = [0.0f64; ML];
            batched.run_expectation(&mut bsv, &obs, &mut out);
            for (l, p) in pts.iter().enumerate() {
                plan.rebind(p).unwrap();
                let mut sv = StateVector::new(n);
                let e = plan.run_expectation(&mut sv, &obs).unwrap();
                assert_eq!(e.to_bits(), out[l].to_bits(), "{n}q lane {l} energy");
                let lane = bsv.lane_state(l);
                for (i, (a, b)) in sv.amplitudes().iter().zip(lane.amplitudes()).enumerate() {
                    assert_eq!(a.re.to_bits(), b.re.to_bits(), "{n}q lane {l} amp {i} re");
                    assert_eq!(a.im.to_bits(), b.im.to_bits(), "{n}q lane {l} amp {i} im");
                }
            }
        }
    }

    #[test]
    fn batched_mixed_ops_match_scalar_bitwise() {
        // rz/rzz content opts out of the real-run mode and exercises the
        // complex batched kernels, including per-lane table phases.
        for (n, lanes) in [(4usize, 4usize), (6, 8), (7, 3)] {
            let (c, k) = mixed_ansatz(n);
            let obs = CompiledObservable::compile(&tfim(n));
            let mut plan = CompiledCircuit::compile(&c);
            assert!(!plan.runs_real());
            let pts = points(k, lanes, 97 + n as u64);
            let batched = BatchedCircuit::bind(&mut plan, &pts).unwrap();
            let mut bsv = BatchStateVector::new(n, lanes);
            let mut out = [0.0f64; ML];
            batched.run_expectation(&mut bsv, &obs, &mut out);
            for (l, p) in pts.iter().enumerate() {
                plan.rebind(p).unwrap();
                let mut sv = StateVector::new(n);
                let e = plan.run_expectation(&mut sv, &obs).unwrap();
                assert_eq!(e.to_bits(), out[l].to_bits(), "{n}q lane {l}");
            }
        }
    }

    #[test]
    fn mixed_unit_lanes_stay_bitwise_identical() {
        // A free RZZ ladder whose angle is 0.0 in one lane makes that
        // lane's table `unit` while the others are not — the per-lane
        // branch blend must still match the scalar path exactly.
        let n = 5;
        let mut c = Circuit::new(n);
        for q in 0..n {
            c.h(q);
        }
        c.rzz(Param::Free(0), 0, 1).rzz(Param::Free(1), 1, 2);
        c.rzz(Param::Free(2), 2, 3).rzz(Param::Free(3), 3, 4);
        let obs = CompiledObservable::compile(&tfim(n));
        let mut plan = CompiledCircuit::compile(&c);
        let pts = vec![
            vec![0.0, 0.0, 0.0, 0.0],
            vec![0.4, -0.9, 1.3, 0.2],
            vec![0.0, 0.1, 0.0, -0.5],
            vec![2.2, 0.0, -1.1, 0.0],
        ];
        let batched = BatchedCircuit::bind(&mut plan, &pts).unwrap();
        let mut bsv = BatchStateVector::new(n, 4);
        let mut out = [0.0f64; ML];
        batched.run_expectation(&mut bsv, &obs, &mut out);
        for (l, p) in pts.iter().enumerate() {
            plan.rebind(p).unwrap();
            let mut sv = StateVector::new(n);
            let e = plan.run_expectation(&mut sv, &obs).unwrap();
            assert_eq!(e.to_bits(), out[l].to_bits(), "lane {l}");
        }
    }

    #[test]
    fn rebind_equals_fresh_bind_per_lane() {
        let (c, k) = ansatz(6);
        let mut plan = CompiledCircuit::compile(&c);
        let pts = points(k, 4, 7);
        // Bind after the plan has already been rebound at other points:
        // snapshot binding must leave no stale state behind.
        plan.rebind(&points(k, 1, 99)[0]).unwrap();
        let reused = BatchedCircuit::bind(&mut plan, &pts).unwrap();
        let mut fresh_plan = CompiledCircuit::compile(&c);
        let fresh = BatchedCircuit::bind(&mut fresh_plan, &pts).unwrap();
        let obs = CompiledObservable::compile(&tfim(6));
        let (mut b1, mut b2) = (BatchStateVector::new(6, 4), BatchStateVector::new(6, 4));
        let (mut o1, mut o2) = ([0.0f64; ML], [0.0f64; ML]);
        reused.run_expectation(&mut b1, &obs, &mut o1);
        fresh.run_expectation(&mut b2, &obs, &mut o2);
        for l in 0..4 {
            assert_eq!(o1[l].to_bits(), o2[l].to_bits(), "lane {l}");
        }
    }

    #[test]
    fn batch_state_accessors_work() {
        let mut b = BatchStateVector::new(2, 4);
        assert_eq!(b.amplitude(0, 3), Complex64::ONE);
        assert_eq!(b.amplitude(3, 0), Complex64::ZERO);
        b.amps_mut()[4 + 2] = Complex64::new(0.5, -0.5); // amp 1, lane 2
        let lane = b.lane_state(2);
        assert_eq!(lane.amplitudes()[1], Complex64::new(0.5, -0.5));
        b.reset();
        assert_eq!(b.amplitude(1, 2), Complex64::ZERO);
    }

    #[test]
    #[should_panic(expected = "lane count")]
    fn oversized_lane_count_panics() {
        BatchStateVector::new(2, MAX_LANES + 1);
    }

    #[test]
    fn short_point_errors() {
        let (c, _) = ansatz(3);
        let mut plan = CompiledCircuit::compile(&c);
        assert!(BatchedCircuit::bind(&mut plan, &[vec![0.1]]).is_err());
    }
}

//! Kraus operators for the standard NISQ error channels.
//!
//! These channels are the physical vocabulary of the static noise model
//! (Section 6.2 of the paper uses Qiskit's equivalents): amplitude damping
//! from T1 decay, phase damping from T2 dephasing, depolarizing noise for
//! gate infidelity, and bit flips for readout error modeling at the state
//! level.

use qismet_mathkit::{CMatrix, Complex64};

/// A completely-positive trace-preserving map given by its Kraus operators.
///
/// # Examples
///
/// ```
/// use qismet_qsim::KrausChannel;
/// let ch = KrausChannel::amplitude_damping(0.1).unwrap();
/// assert!(ch.is_trace_preserving(1e-12));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct KrausChannel {
    ops: Vec<CMatrix>,
    dim: usize,
}

/// Errors when building channels.
#[derive(Debug, Clone, PartialEq)]
pub enum ChannelError {
    /// A probability/strength parameter is outside `[0, 1]`.
    BadParameter {
        /// Parameter name.
        name: &'static str,
        /// Offending value.
        value: f64,
    },
    /// The Kraus set does not satisfy `sum K^dag K = I`.
    NotTracePreserving,
    /// Kraus operators have inconsistent dimensions.
    DimMismatch,
}

impl std::fmt::Display for ChannelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ChannelError::BadParameter { name, value } => {
                write!(f, "channel parameter {name} = {value} outside [0, 1]")
            }
            ChannelError::NotTracePreserving => {
                write!(f, "kraus operators do not sum to identity")
            }
            ChannelError::DimMismatch => write!(f, "kraus operators have mixed dimensions"),
        }
    }
}

impl std::error::Error for ChannelError {}

fn check_unit(name: &'static str, v: f64) -> Result<(), ChannelError> {
    if !(0.0..=1.0).contains(&v) || !v.is_finite() {
        return Err(ChannelError::BadParameter { name, value: v });
    }
    Ok(())
}

impl KrausChannel {
    /// Builds a channel from explicit Kraus operators.
    ///
    /// # Errors
    ///
    /// * [`ChannelError::DimMismatch`] for ragged operator sizes.
    /// * [`ChannelError::NotTracePreserving`] if `sum K^dag K != I`.
    pub fn new(ops: Vec<CMatrix>) -> Result<Self, ChannelError> {
        let dim = ops.first().map(|m| m.rows()).unwrap_or(0);
        if dim == 0 {
            return Err(ChannelError::DimMismatch);
        }
        for op in &ops {
            if op.rows() != dim || op.cols() != dim {
                return Err(ChannelError::DimMismatch);
            }
        }
        let ch = KrausChannel { ops, dim };
        if !ch.is_trace_preserving(1e-9) {
            return Err(ChannelError::NotTracePreserving);
        }
        Ok(ch)
    }

    /// The Kraus operators.
    pub fn ops(&self) -> &[CMatrix] {
        &self.ops
    }

    /// Hilbert-space dimension the channel acts on (2 for 1-qubit channels).
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of qubits (`log2(dim)`).
    pub fn n_qubits(&self) -> usize {
        self.dim.trailing_zeros() as usize
    }

    /// Verifies `sum K^dag K = I` within `tol`.
    pub fn is_trace_preserving(&self, tol: f64) -> bool {
        let mut acc = CMatrix::zeros(self.dim, self.dim);
        for k in &self.ops {
            let kk = k.adjoint().matmul(k).expect("square kraus op");
            acc = &acc + &kk;
        }
        acc.approx_eq(&CMatrix::identity(self.dim), tol)
    }

    /// The identity channel on one qubit.
    pub fn identity() -> Self {
        KrausChannel {
            ops: vec![CMatrix::identity(2)],
            dim: 2,
        }
    }

    /// Amplitude damping with decay probability `gamma` (T1 relaxation over
    /// one gate duration: `gamma = 1 - exp(-t_gate / T1)`).
    ///
    /// # Errors
    ///
    /// [`ChannelError::BadParameter`] if `gamma` is outside `[0, 1]`.
    pub fn amplitude_damping(gamma: f64) -> Result<Self, ChannelError> {
        check_unit("gamma", gamma)?;
        let o = Complex64::ZERO;
        let k0 = CMatrix::from_rows(&[
            &[Complex64::ONE, o],
            &[o, Complex64::from_re((1.0 - gamma).sqrt())],
        ]);
        let k1 = CMatrix::from_rows(&[&[o, Complex64::from_re(gamma.sqrt())], &[o, o]]);
        Ok(KrausChannel {
            ops: vec![k0, k1],
            dim: 2,
        })
    }

    /// Pure phase damping with dephasing probability `lambda`
    /// (`lambda = 1 - exp(-t_gate / T_phi)` with `1/T_phi = 1/T2 - 1/(2 T1)`).
    ///
    /// # Errors
    ///
    /// [`ChannelError::BadParameter`] if `lambda` is outside `[0, 1]`.
    pub fn phase_damping(lambda: f64) -> Result<Self, ChannelError> {
        check_unit("lambda", lambda)?;
        let o = Complex64::ZERO;
        let k0 = CMatrix::from_rows(&[
            &[Complex64::ONE, o],
            &[o, Complex64::from_re((1.0 - lambda).sqrt())],
        ]);
        let k1 = CMatrix::from_rows(&[&[o, o], &[o, Complex64::from_re(lambda.sqrt())]]);
        Ok(KrausChannel {
            ops: vec![k0, k1],
            dim: 2,
        })
    }

    /// Single-qubit depolarizing channel with error probability `p`:
    /// with probability `p` the state is replaced by the maximally mixed
    /// state (implemented via uniform X/Y/Z errors at `p/4` each... precisely
    /// the standard parameterization `rho -> (1 - 3p/4) rho + p/4 (XrhoX +
    /// YrhoY + ZrhoZ)`).
    ///
    /// # Errors
    ///
    /// [`ChannelError::BadParameter`] if `p` is outside `[0, 1]`.
    pub fn depolarizing(p: f64) -> Result<Self, ChannelError> {
        check_unit("p", p)?;
        let paulis = [
            crate::pauli::Pauli::I.matrix(),
            crate::pauli::Pauli::X.matrix(),
            crate::pauli::Pauli::Y.matrix(),
            crate::pauli::Pauli::Z.matrix(),
        ];
        let mut ops = Vec::with_capacity(4);
        let w_id = (1.0 - 3.0 * p / 4.0).max(0.0).sqrt();
        let w_err = (p / 4.0).sqrt();
        ops.push(paulis[0].scaled(w_id));
        for m in &paulis[1..] {
            ops.push(m.scaled(w_err));
        }
        Ok(KrausChannel { ops, dim: 2 })
    }

    /// Two-qubit depolarizing channel with error probability `p`, spanning
    /// the 15 non-identity two-qubit Paulis at equal weight.
    ///
    /// # Errors
    ///
    /// [`ChannelError::BadParameter`] if `p` is outside `[0, 1]`.
    pub fn two_qubit_depolarizing(p: f64) -> Result<Self, ChannelError> {
        check_unit("p", p)?;
        let singles = [
            crate::pauli::Pauli::I.matrix(),
            crate::pauli::Pauli::X.matrix(),
            crate::pauli::Pauli::Y.matrix(),
            crate::pauli::Pauli::Z.matrix(),
        ];
        let mut ops = Vec::with_capacity(16);
        let w_id = (1.0 - 15.0 * p / 16.0).max(0.0).sqrt();
        let w_err = (p / 16.0).sqrt();
        for (i, a) in singles.iter().enumerate() {
            for (j, b) in singles.iter().enumerate() {
                let m = b.kron(a); // operand 0 = LSB
                let w = if i == 0 && j == 0 { w_id } else { w_err };
                ops.push(m.scaled(w));
            }
        }
        Ok(KrausChannel { ops, dim: 4 })
    }

    /// Bit-flip channel (X error with probability `p`).
    ///
    /// # Errors
    ///
    /// [`ChannelError::BadParameter`] if `p` is outside `[0, 1]`.
    pub fn bit_flip(p: f64) -> Result<Self, ChannelError> {
        check_unit("p", p)?;
        let x = crate::pauli::Pauli::X.matrix();
        Ok(KrausChannel {
            ops: vec![
                CMatrix::identity(2).scaled((1.0 - p).sqrt()),
                x.scaled(p.sqrt()),
            ],
            dim: 2,
        })
    }

    /// Phase-flip channel (Z error with probability `p`).
    ///
    /// # Errors
    ///
    /// [`ChannelError::BadParameter`] if `p` is outside `[0, 1]`.
    pub fn phase_flip(p: f64) -> Result<Self, ChannelError> {
        check_unit("p", p)?;
        let z = crate::pauli::Pauli::Z.matrix();
        Ok(KrausChannel {
            ops: vec![
                CMatrix::identity(2).scaled((1.0 - p).sqrt()),
                z.scaled(p.sqrt()),
            ],
            dim: 2,
        })
    }

    /// Combined thermal relaxation over duration `t` with times `t1`, `t2`
    /// (`t2 <= 2 t1`): amplitude damping composed with pure dephasing.
    ///
    /// # Errors
    ///
    /// [`ChannelError::BadParameter`] for non-positive times or `t2 > 2 t1`.
    pub fn thermal_relaxation(t: f64, t1: f64, t2: f64) -> Result<Self, ChannelError> {
        if t < 0.0 || t1 <= 0.0 || t2 <= 0.0 {
            return Err(ChannelError::BadParameter {
                name: "t/t1/t2",
                value: -1.0,
            });
        }
        if t2 > 2.0 * t1 + 1e-12 {
            return Err(ChannelError::BadParameter {
                name: "t2",
                value: t2,
            });
        }
        let gamma = 1.0 - (-t / t1).exp();
        // Pure dephasing rate: 1/T_phi = 1/T2 - 1/(2 T1).
        let inv_tphi = (1.0 / t2 - 0.5 / t1).max(0.0);
        let lambda = 1.0 - (-t * inv_tphi).exp();
        let ad = Self::amplitude_damping(gamma)?;
        let pd = Self::phase_damping(lambda)?;
        ad.compose(&pd)
    }

    /// Sequential composition: `other` applied after `self`.
    ///
    /// # Errors
    ///
    /// [`ChannelError::DimMismatch`] when dimensions differ.
    pub fn compose(&self, other: &KrausChannel) -> Result<KrausChannel, ChannelError> {
        if self.dim != other.dim {
            return Err(ChannelError::DimMismatch);
        }
        let mut ops = Vec::with_capacity(self.ops.len() * other.ops.len());
        for b in &other.ops {
            for a in &self.ops {
                ops.push(b.matmul(a).expect("dims checked"));
            }
        }
        Ok(KrausChannel { ops, dim: self.dim })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_channels_are_trace_preserving() {
        for p in [0.0, 0.01, 0.3, 1.0] {
            assert!(KrausChannel::amplitude_damping(p)
                .unwrap()
                .is_trace_preserving(1e-12));
            assert!(KrausChannel::phase_damping(p)
                .unwrap()
                .is_trace_preserving(1e-12));
            assert!(KrausChannel::depolarizing(p)
                .unwrap()
                .is_trace_preserving(1e-12));
            assert!(KrausChannel::bit_flip(p)
                .unwrap()
                .is_trace_preserving(1e-12));
            assert!(KrausChannel::phase_flip(p)
                .unwrap()
                .is_trace_preserving(1e-12));
            assert!(KrausChannel::two_qubit_depolarizing(p)
                .unwrap()
                .is_trace_preserving(1e-12));
        }
    }

    #[test]
    fn parameters_validated() {
        assert!(KrausChannel::amplitude_damping(-0.1).is_err());
        assert!(KrausChannel::depolarizing(1.5).is_err());
        assert!(KrausChannel::phase_damping(f64::NAN).is_err());
    }

    #[test]
    fn thermal_relaxation_limits() {
        // t = 0 is the identity channel in effect.
        let ch = KrausChannel::thermal_relaxation(0.0, 50.0, 70.0).unwrap();
        assert!(ch.is_trace_preserving(1e-12));
        // t >> T1 fully damps.
        let ch = KrausChannel::thermal_relaxation(1e6, 50.0, 70.0).unwrap();
        assert!(ch.is_trace_preserving(1e-9));
        // Invalid T2.
        assert!(KrausChannel::thermal_relaxation(1.0, 50.0, 150.0).is_err());
    }

    #[test]
    fn compose_is_trace_preserving() {
        let a = KrausChannel::amplitude_damping(0.2).unwrap();
        let b = KrausChannel::phase_damping(0.1).unwrap();
        let c = a.compose(&b).unwrap();
        assert!(c.is_trace_preserving(1e-12));
        assert_eq!(c.ops().len(), 4);
    }

    #[test]
    fn new_rejects_non_tp_sets() {
        let bad = vec![CMatrix::identity(2).scaled(0.5)];
        assert_eq!(
            KrausChannel::new(bad).unwrap_err(),
            ChannelError::NotTracePreserving
        );
    }

    #[test]
    fn new_rejects_empty_and_ragged() {
        assert_eq!(
            KrausChannel::new(vec![]).unwrap_err(),
            ChannelError::DimMismatch
        );
        let ragged = vec![CMatrix::identity(2), CMatrix::identity(4)];
        assert_eq!(
            KrausChannel::new(ragged).unwrap_err(),
            ChannelError::DimMismatch
        );
    }

    #[test]
    fn dims_and_qubit_counts() {
        assert_eq!(KrausChannel::depolarizing(0.1).unwrap().n_qubits(), 1);
        assert_eq!(
            KrausChannel::two_qubit_depolarizing(0.1)
                .unwrap()
                .n_qubits(),
            2
        );
    }
}

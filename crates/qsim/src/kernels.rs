//! Cache-blocked statevector kernels over raw amplitude slices.
//!
//! Every kernel here is a free function over `&mut [Complex64]` (or
//! `&[Complex64]` for reductions) rather than a method on
//! [`crate::StateVector`]. Two properties follow from that shape and are
//! relied on throughout the crate:
//!
//! * **Alignment locality** — a kernel acting on support bits
//!   `b0 < b1 < ... < bmax` only ever combines amplitudes whose indices
//!   differ below `2 * bmax`. Any slice whose length is a multiple of
//!   `2 * bmax` is therefore a closed orbit set, which is exactly what lets
//!   the `parallel`-feature path split one apply across disjoint contiguous
//!   regions of the same state and stay **bitwise identical** to the
//!   sequential sweep at any thread count.
//! * **Chunked inner loops** — the hot loops are written as
//!   `chunks_exact_mut` + `split_at_mut` sweeps over fixed-shape blocks with
//!   no per-amplitude bounds checks or index arithmetic, the form the
//!   autovectorizer turns into packed SIMD on the interleaved
//!   `[re, im, re, im, ...]` layout.
//!
//! The arithmetic of each kernel (operation order, grouping) matches the
//! pre-refactor `StateVector` methods exactly, so results are bit-identical
//! to the historical implementations pinned by the regression tests.

use qismet_mathkit::Complex64;

/// Amplitudes per reduction block. Reductions (probability norms, CDF
/// accumulation, expectation partial sums) are computed block-by-block so
/// sequential and thread-parallel execution add the same partials in the
/// same order. States of up to `BLOCK` amplitudes (14 qubits) are a single
/// block, which keeps their sums bit-identical to the historical straight
/// loop.
pub(crate) const BLOCK: usize = 1 << 14;

/// A stack-allocated 2x2 complex matrix (row-major).
pub(crate) type Mat2 = [[Complex64; 2]; 2];

/// Applies an arbitrary 2x2 unitary with target-bit value `stride` to a
/// slice (`slice.len()` must be a multiple of `2 * stride`).
pub(crate) fn apply_1q(amps: &mut [Complex64], u: &Mat2, stride: usize) {
    debug_assert!(amps.len().is_multiple_of(stride << 1));
    let [[u00, u01], [u10, u11]] = *u;
    for chunk in amps.chunks_exact_mut(stride << 1) {
        let (lo, hi) = chunk.split_at_mut(stride);
        for (a, b) in lo.iter_mut().zip(hi.iter_mut()) {
            let a0 = *a;
            let a1 = *b;
            *a = u00 * a0 + u01 * a1;
            *b = u10 * a0 + u11 * a1;
        }
    }
}

/// Applies a **real** 2x2 unitary (half the multiplies of the complex
/// butterfly) with target-bit value `stride`.
pub(crate) fn apply_1q_real(amps: &mut [Complex64], m: &[[f64; 2]; 2], stride: usize) {
    debug_assert!(amps.len().is_multiple_of(stride << 1));
    let (m00, m01, m10, m11) = (m[0][0], m[0][1], m[1][0], m[1][1]);
    for chunk in amps.chunks_exact_mut(stride << 1) {
        let (lo, hi) = chunk.split_at_mut(stride);
        for (a, b) in lo.iter_mut().zip(hi.iter_mut()) {
            let a0 = *a;
            let a1 = *b;
            *a = Complex64::new(m00 * a0.re + m01 * a1.re, m00 * a0.im + m01 * a1.im);
            *b = Complex64::new(m10 * a0.re + m11 * a1.re, m10 * a0.im + m11 * a1.im);
        }
    }
}

/// Visits every index of `amps` with both `lo_bit` and `hi_bit` clear
/// (`lo_bit < hi_bit`, both bit values): the canonical member of each
/// 4-amplitude orbit of a two-qubit gate. `amps.len()` must be a multiple of
/// `2 * hi_bit`.
#[inline(always)]
fn for_each_two_qubit_base<T>(
    amps: &mut [T],
    lo_bit: usize,
    hi_bit: usize,
    mut f: impl FnMut(&mut [T], usize),
) {
    debug_assert!(lo_bit < hi_bit && amps.len().is_multiple_of(hi_bit << 1));
    let dim = amps.len();
    let mut outer = 0usize;
    while outer < dim {
        let mut mid = outer;
        let outer_end = outer + hi_bit;
        while mid < outer_end {
            for idx in mid..mid + lo_bit {
                f(amps, idx);
            }
            mid += lo_bit << 1;
        }
        outer += hi_bit << 1;
    }
}

/// CX with control/target bit values `cbit`/`tbit`. Element-generic: the
/// real-amplitude run mode applies the same kernel to `f64` states.
pub(crate) fn apply_cx<T>(amps: &mut [T], cbit: usize, tbit: usize) {
    let (lo, hi) = (cbit.min(tbit), cbit.max(tbit));
    for_each_two_qubit_base(amps, lo, hi, |amps, idx| {
        amps.swap(idx | cbit, idx | cbit | tbit);
    });
}

/// CZ with operand bit values `abit`/`bbit` (element-generic, see
/// [`apply_cx`]).
pub(crate) fn apply_cz<T: Copy + core::ops::Neg<Output = T>>(
    amps: &mut [T],
    abit: usize,
    bbit: usize,
) {
    let (lo, hi) = (abit.min(bbit), abit.max(bbit));
    for_each_two_qubit_base(amps, lo, hi, |amps, idx| {
        let i11 = idx | abit | bbit;
        amps[i11] = -amps[i11];
    });
}

/// SWAP with operand bit values `abit`/`bbit` (element-generic, see
/// [`apply_cx`]).
pub(crate) fn apply_swap<T>(amps: &mut [T], abit: usize, bbit: usize) {
    let (lo, hi) = (abit.min(bbit), abit.max(bbit));
    for_each_two_qubit_base(amps, lo, hi, |amps, idx| {
        amps.swap(idx | abit, idx | bbit);
    });
}

/// RZZ with precomputed diagonal phases (`minus` on equal bits, `plus` on
/// differing bits) and operand bit values `abit`/`bbit`.
pub(crate) fn apply_rzz_phases(
    amps: &mut [Complex64],
    minus: Complex64,
    plus: Complex64,
    abit: usize,
    bbit: usize,
) {
    let (lo, hi) = (abit.min(bbit), abit.max(bbit));
    for_each_two_qubit_base(amps, lo, hi, |amps, idx| {
        amps[idx] *= minus;
        amps[idx | abit] *= plus;
        amps[idx | bbit] *= plus;
        amps[idx | abit | bbit] *= minus;
    });
}

/// Applies a dense 4x4 superoperator matrix `m` (row-major over the local
/// basis `|b1 b0>`) on support bit values `b0 < b1`. When `real` is set only
/// the real parts of `m` are used (exact for superops fused purely from
/// real gates, at half the multiplies).
pub(crate) fn apply_super2(
    amps: &mut [Complex64],
    m: &[Complex64],
    b0: usize,
    b1: usize,
    real: bool,
) {
    debug_assert!(m.len() >= 16 && b0 < b1 && amps.len().is_multiple_of(b1 << 1));
    let dim = amps.len();
    let mut outer = 0usize;
    while outer < dim {
        let mut mid = outer;
        let outer_end = outer + b1;
        while mid < outer_end {
            for base in mid..mid + b0 {
                let idx = [base, base | b0, base | b1, base | b0 | b1];
                let v = [amps[idx[0]], amps[idx[1]], amps[idx[2]], amps[idx[3]]];
                if real {
                    for (r, &i) in idx.iter().enumerate() {
                        let row = &m[r * 4..r * 4 + 4];
                        let mut re = 0.0f64;
                        let mut im = 0.0f64;
                        for c in 0..4 {
                            re += row[c].re * v[c].re;
                            im += row[c].re * v[c].im;
                        }
                        amps[i] = Complex64::new(re, im);
                    }
                } else {
                    for (r, &i) in idx.iter().enumerate() {
                        let row = &m[r * 4..r * 4 + 4];
                        let mut acc = Complex64::ZERO;
                        for c in 0..4 {
                            acc += row[c] * v[c];
                        }
                        amps[i] = acc;
                    }
                }
            }
            mid += b0 << 1;
        }
        outer += b1 << 1;
    }
}

/// Applies a dense 8x8 superoperator matrix `m` (row-major over the local
/// basis `|b2 b1 b0>`) on support bit values `b0 < b1 < b2`; see
/// [`apply_super2`].
pub(crate) fn apply_super3(
    amps: &mut [Complex64],
    m: &[Complex64],
    b0: usize,
    b1: usize,
    b2: usize,
    real: bool,
) {
    debug_assert!(m.len() >= 64 && b0 < b1 && b1 < b2 && amps.len().is_multiple_of(b2 << 1));
    let dim = amps.len();
    let mut top = 0usize;
    while top < dim {
        let mut outer = top;
        let top_end = top + b2;
        while outer < top_end {
            let mut mid = outer;
            let outer_end = outer + b1;
            while mid < outer_end {
                for base in mid..mid + b0 {
                    let idx = [
                        base,
                        base | b0,
                        base | b1,
                        base | b0 | b1,
                        base | b2,
                        base | b0 | b2,
                        base | b1 | b2,
                        base | b0 | b1 | b2,
                    ];
                    let mut v = [Complex64::ZERO; 8];
                    for (slot, &i) in v.iter_mut().zip(idx.iter()) {
                        *slot = amps[i];
                    }
                    if real {
                        for (r, &i) in idx.iter().enumerate() {
                            let row = &m[r * 8..r * 8 + 8];
                            let mut re = 0.0f64;
                            let mut im = 0.0f64;
                            for c in 0..8 {
                                re += row[c].re * v[c].re;
                                im += row[c].re * v[c].im;
                            }
                            amps[i] = Complex64::new(re, im);
                        }
                    } else {
                        for (r, &i) in idx.iter().enumerate() {
                            let row = &m[r * 8..r * 8 + 8];
                            let mut acc = Complex64::ZERO;
                            for c in 0..8 {
                                acc += row[c] * v[c];
                            }
                            amps[i] = acc;
                        }
                    }
                }
                mid += b0 << 1;
            }
            outer += b1 << 1;
        }
        top += b2 << 1;
    }
}

/// Expands orbit number `o` into a base index by inserting a zero at each
/// support bit (ascending bit values in `bits`).
#[inline(always)]
fn expand_orbit(mut o: usize, bits: &[usize]) -> usize {
    for &b in bits {
        o = (o & (b - 1)) | ((o & !(b - 1)) << 1);
    }
    o
}

/// Applies a precomputed index-permutation + phase table (a lowered
/// CX/CZ/SWAP/RZZ ladder) in one sweep.
///
/// The table maps local configuration `c` (over `bits`, ascending bit
/// values, `s = bits.len() <= 6`) to `phase[l] * |l>` where `l = pi(c)`:
/// `offs[l]` is the amplitude offset of local index `l`, `src[l] = pi^-1(l)`
/// and `phase[l]` the output phase. `diagonal` marks identity permutations
/// (in-place phase sweep, no gather) and `unit` marks all-ones phases (pure
/// permutation, no multiplies).
#[allow(clippy::too_many_arguments)]
pub(crate) fn apply_table(
    amps: &mut [Complex64],
    bits: &[usize],
    offs: &[usize],
    src: &[u8],
    phase: &[Complex64],
    diagonal: bool,
    unit: bool,
) {
    let s = bits.len();
    let size = 1usize << s;
    debug_assert!(offs.len() == size && src.len() == size && phase.len() == size);
    debug_assert!(amps.len().is_multiple_of(bits[s - 1] << 1));
    let n_orbits = amps.len() >> s;
    let mut buf = [Complex64::ZERO; 256];
    for o in 0..n_orbits {
        let base = expand_orbit(o, bits);
        if diagonal {
            for l in 0..size {
                amps[base + offs[l]] *= phase[l];
            }
        } else if unit {
            for l in 0..size {
                buf[l] = amps[base + offs[src[l] as usize]];
            }
            for l in 0..size {
                amps[base + offs[l]] = buf[l];
            }
        } else {
            for l in 0..size {
                buf[l] = phase[l] * amps[base + offs[src[l] as usize]];
            }
            for l in 0..size {
                amps[base + offs[l]] = buf[l];
            }
        }
    }
}

thread_local! {
    /// Per-thread gather scratch for [`apply_table_contig`]: one orbit
    /// region (`2^(shift + s)` amplitudes), grown on demand and reused
    /// across ops and calls. Thread-local so the `parallel` path — where
    /// each worker applies the table to its own disjoint region — needs no
    /// shared mutable state.
    static TABLE_SCRATCH: core::cell::RefCell<Vec<Complex64>> =
        const { core::cell::RefCell::new(Vec::new()) };
}

/// [`apply_table`] specialized for tables whose support is a contiguous
/// qubit run `[shift, shift + s)`. Local config `l` then sits at amplitude
/// offset `l << shift`, every orbit is one contiguous `2^(shift+s)`-amplitude
/// region, and the permutation moves `2^shift`-amplitude **blocks** —
/// straight `copy_from_slice`s (or packed phase-multiplies) instead of the
/// per-amplitude `offs` gather. Linear-entanglement ladders, the dominant
/// ansatz entangler shape, always lower to this form.
pub(crate) fn apply_table_contig(
    amps: &mut [Complex64],
    shift: usize,
    src: &[u8],
    phase: &[Complex64],
    diagonal: bool,
    unit: bool,
) {
    let size = src.len();
    let region = size << shift;
    debug_assert!(amps.len().is_multiple_of(region));
    if diagonal {
        for chunk in amps.chunks_exact_mut(region) {
            for (blk, &ph) in chunk.chunks_exact_mut(1 << shift).zip(phase.iter()) {
                for a in blk {
                    *a *= ph;
                }
            }
        }
        return;
    }
    TABLE_SCRATCH.with(|cell| {
        let mut scratch = cell.borrow_mut();
        scratch.resize(region, Complex64::ZERO);
        for chunk in amps.chunks_exact_mut(region) {
            scratch.copy_from_slice(chunk);
            if shift == 0 {
                // Blocks are single amplitudes: plain permuted copy.
                if unit {
                    for (l, a) in chunk.iter_mut().enumerate() {
                        *a = scratch[src[l] as usize];
                    }
                } else {
                    for (l, a) in chunk.iter_mut().enumerate() {
                        *a = phase[l] * scratch[src[l] as usize];
                    }
                }
                continue;
            }
            for (l, blk) in chunk.chunks_exact_mut(1 << shift).enumerate() {
                let sblk = &scratch[(src[l] as usize) << shift..][..blk.len()];
                if unit {
                    blk.copy_from_slice(sblk);
                } else {
                    let ph = phase[l];
                    for (d, &s) in blk.iter_mut().zip(sblk.iter()) {
                        *d = ph * s;
                    }
                }
            }
        }
    });
}

// ---------------------------------------------------------------------------
// Real-amplitude (`f64`) kernels.
//
// Plans whose every op preserves real amplitude vectors (real 1q segments,
// CX/CZ/SWAP, real superops, RZZ-free ladder tables) evolve an `f64` state
// instead of a `Complex64` one: half the flops and half the memory traffic,
// with the same sweep structure — and therefore the same
// sequential-vs-threaded bitwise-identity argument — as the complex kernels
// above. CX and SWAP reuse the generic kernels; the arithmetic kernels get
// real twins below.
// ---------------------------------------------------------------------------

/// Real twin of [`apply_1q_real`]: the 2x2 real butterfly on an `f64` state.
///
/// Strides 1 and 2 interleave the butterfly pairs too tightly for the
/// split-halves loop to vectorize, so they get unrolled shuffle-friendly
/// bodies over 8-amplitude chunks; wider strides vectorize as two linear
/// streams.
pub(crate) fn apply_1q_real_f64(amps: &mut [f64], m: &[[f64; 2]; 2], stride: usize) {
    debug_assert!(amps.len().is_multiple_of(stride << 1));
    let (m00, m01, m10, m11) = (m[0][0], m[0][1], m[1][0], m[1][1]);
    if stride == 1 && amps.len() >= 8 {
        for ch in amps.chunks_exact_mut(8) {
            let (a0, a1, a2, a3) = (ch[0], ch[2], ch[4], ch[6]);
            let (b0, b1, b2, b3) = (ch[1], ch[3], ch[5], ch[7]);
            ch[0] = m00 * a0 + m01 * b0;
            ch[1] = m10 * a0 + m11 * b0;
            ch[2] = m00 * a1 + m01 * b1;
            ch[3] = m10 * a1 + m11 * b1;
            ch[4] = m00 * a2 + m01 * b2;
            ch[5] = m10 * a2 + m11 * b2;
            ch[6] = m00 * a3 + m01 * b3;
            ch[7] = m10 * a3 + m11 * b3;
        }
        return;
    }
    if stride == 2 && amps.len() >= 8 {
        for ch in amps.chunks_exact_mut(8) {
            let (a0, a1, a2, a3) = (ch[0], ch[1], ch[4], ch[5]);
            let (b0, b1, b2, b3) = (ch[2], ch[3], ch[6], ch[7]);
            ch[0] = m00 * a0 + m01 * b0;
            ch[1] = m00 * a1 + m01 * b1;
            ch[2] = m10 * a0 + m11 * b0;
            ch[3] = m10 * a1 + m11 * b1;
            ch[4] = m00 * a2 + m01 * b2;
            ch[5] = m00 * a3 + m01 * b3;
            ch[6] = m10 * a2 + m11 * b2;
            ch[7] = m10 * a3 + m11 * b3;
        }
        return;
    }
    for chunk in amps.chunks_exact_mut(stride << 1) {
        let (lo, hi) = chunk.split_at_mut(stride);
        for (a, b) in lo.iter_mut().zip(hi.iter_mut()) {
            let a0 = *a;
            let a1 = *b;
            *a = m00 * a0 + m01 * a1;
            *b = m10 * a0 + m11 * a1;
        }
    }
}

/// Real twin of [`apply_super2`]: dense 4x4 **real** superoperator (the
/// matrix is stored complex with exactly-zero imaginary parts) on an `f64`
/// state.
pub(crate) fn apply_super2_f64(amps: &mut [f64], m: &[Complex64], b0: usize, b1: usize) {
    debug_assert!(m.len() >= 16 && b0 < b1 && amps.len().is_multiple_of(b1 << 1));
    for_each_two_qubit_base(amps, b0, b1, |amps, base| {
        let idx = [base, base | b0, base | b1, base | b0 | b1];
        let v = [amps[idx[0]], amps[idx[1]], amps[idx[2]], amps[idx[3]]];
        for (r, &i) in idx.iter().enumerate() {
            let row = &m[r * 4..r * 4 + 4];
            let mut acc = 0.0f64;
            for c in 0..4 {
                acc += row[c].re * v[c];
            }
            amps[i] = acc;
        }
    });
}

/// Real twin of [`apply_super3`]: dense 8x8 **real** superoperator on an
/// `f64` state.
pub(crate) fn apply_super3_f64(amps: &mut [f64], m: &[Complex64], b0: usize, b1: usize, b2: usize) {
    debug_assert!(m.len() >= 64 && b0 < b1 && b1 < b2 && amps.len().is_multiple_of(b2 << 1));
    let dim = amps.len();
    let mut top = 0usize;
    while top < dim {
        let mut outer = top;
        let top_end = top + b2;
        while outer < top_end {
            let mut mid = outer;
            let outer_end = outer + b1;
            while mid < outer_end {
                for base in mid..mid + b0 {
                    let idx = [
                        base,
                        base | b0,
                        base | b1,
                        base | b0 | b1,
                        base | b2,
                        base | b0 | b2,
                        base | b1 | b2,
                        base | b0 | b1 | b2,
                    ];
                    let mut v = [0.0f64; 8];
                    for (slot, &i) in v.iter_mut().zip(idx.iter()) {
                        *slot = amps[i];
                    }
                    for (r, &i) in idx.iter().enumerate() {
                        let row = &m[r * 8..r * 8 + 8];
                        let mut acc = 0.0f64;
                        for c in 0..8 {
                            acc += row[c].re * v[c];
                        }
                        amps[i] = acc;
                    }
                }
                mid += b0 << 1;
            }
            outer += b1 << 1;
        }
        top += b2 << 1;
    }
}

/// Real twin of [`apply_table`]: RZZ-free ladder tables have exactly-real
/// (`+/-1`) phases, so the gather runs on an `f64` state with `phase[l].re`.
#[allow(clippy::too_many_arguments)]
pub(crate) fn apply_table_f64(
    amps: &mut [f64],
    bits: &[usize],
    offs: &[usize],
    src: &[u8],
    phase: &[Complex64],
    diagonal: bool,
    unit: bool,
) {
    let s = bits.len();
    let size = 1usize << s;
    debug_assert!(offs.len() == size && src.len() == size && phase.len() == size);
    debug_assert!(amps.len().is_multiple_of(bits[s - 1] << 1));
    let n_orbits = amps.len() >> s;
    let mut buf = [0.0f64; 256];
    for o in 0..n_orbits {
        let base = expand_orbit(o, bits);
        if diagonal {
            for l in 0..size {
                amps[base + offs[l]] *= phase[l].re;
            }
        } else if unit {
            for l in 0..size {
                buf[l] = amps[base + offs[src[l] as usize]];
            }
            for l in 0..size {
                amps[base + offs[l]] = buf[l];
            }
        } else {
            for l in 0..size {
                buf[l] = phase[l].re * amps[base + offs[src[l] as usize]];
            }
            for l in 0..size {
                amps[base + offs[l]] = buf[l];
            }
        }
    }
}

thread_local! {
    /// Per-thread gather scratch for [`apply_table_contig_f64`] (see
    /// [`TABLE_SCRATCH`]).
    static TABLE_SCRATCH_F64: core::cell::RefCell<Vec<f64>> =
        const { core::cell::RefCell::new(Vec::new()) };
}

/// Real twin of [`apply_table_contig`]: contiguous-support block
/// permutation on an `f64` state.
pub(crate) fn apply_table_contig_f64(
    amps: &mut [f64],
    shift: usize,
    src: &[u8],
    phase: &[Complex64],
    diagonal: bool,
    unit: bool,
) {
    let size = src.len();
    let region = size << shift;
    debug_assert!(amps.len().is_multiple_of(region));
    if diagonal {
        for chunk in amps.chunks_exact_mut(region) {
            for (blk, ph) in chunk.chunks_exact_mut(1 << shift).zip(phase.iter()) {
                for a in blk {
                    *a *= ph.re;
                }
            }
        }
        return;
    }
    TABLE_SCRATCH_F64.with(|cell| {
        let mut scratch = cell.borrow_mut();
        scratch.resize(region, 0.0);
        for chunk in amps.chunks_exact_mut(region) {
            scratch.copy_from_slice(chunk);
            if shift == 0 {
                if unit {
                    for (l, a) in chunk.iter_mut().enumerate() {
                        *a = scratch[src[l] as usize];
                    }
                } else {
                    for (l, a) in chunk.iter_mut().enumerate() {
                        *a = phase[l].re * scratch[src[l] as usize];
                    }
                }
                continue;
            }
            for (l, blk) in chunk.chunks_exact_mut(1 << shift).enumerate() {
                let sblk = &scratch[(src[l] as usize) << shift..][..blk.len()];
                if unit {
                    blk.copy_from_slice(sblk);
                } else {
                    let ph = phase[l].re;
                    for (d, &s) in blk.iter_mut().zip(sblk.iter()) {
                        *d = ph * s;
                    }
                }
            }
        }
    });
}

/// Writes `|amp|^2` for one amplitude block into `out` (chunked map the
/// autovectorizer turns into packed multiplies).
pub(crate) fn write_probabilities(amps: &[Complex64], out: &mut [f64]) {
    debug_assert_eq!(amps.len(), out.len());
    for (p, a) in out.iter_mut().zip(amps.iter()) {
        *p = a.re * a.re + a.im * a.im;
    }
}

/// Fills `cdf` with the running prefix sum of `|amp|^2` and returns the
/// total. The squared norms are computed block-by-block through
/// [`write_probabilities`]; the prefix accumulation itself adds them in
/// index order, so the CDF is bit-identical to the historical
/// one-amplitude-at-a-time loop.
pub(crate) fn cdf_fill(amps: &[Complex64], cdf: &mut Vec<f64>) -> f64 {
    cdf.clear();
    cdf.reserve(amps.len());
    let mut block = [0.0f64; 256];
    let mut acc = 0.0f64;
    for chunk in amps.chunks(block.len()) {
        let probs = &mut block[..chunk.len()];
        write_probabilities(chunk, probs);
        for &p in probs.iter() {
            acc += p;
            cdf.push(acc);
        }
    }
    acc
}

/// Sum of `|amp|^2` over one block (same add order as the historical
/// straight loop within the block).
pub(crate) fn norm_sqr_block(amps: &[Complex64]) -> f64 {
    let mut acc = 0.0f64;
    for a in amps {
        acc += a.re * a.re + a.im * a.im;
    }
    acc
}

//! Cache-blocked statevector kernels over raw amplitude slices.
//!
//! Every kernel here is a free function over `&mut [Complex64]` (or
//! `&[Complex64]` for reductions) rather than a method on
//! [`crate::StateVector`]. Two properties follow from that shape and are
//! relied on throughout the crate:
//!
//! * **Alignment locality** — a kernel acting on support bits
//!   `b0 < b1 < ... < bmax` only ever combines amplitudes whose indices
//!   differ below `2 * bmax`. Any slice whose length is a multiple of
//!   `2 * bmax` is therefore a closed orbit set, which is exactly what lets
//!   the `parallel`-feature path split one apply across disjoint contiguous
//!   regions of the same state and stay **bitwise identical** to the
//!   sequential sweep at any thread count.
//! * **Chunked inner loops** — the hot loops are written as
//!   `chunks_exact_mut` + `split_at_mut` sweeps over fixed-shape blocks with
//!   no per-amplitude bounds checks or index arithmetic, the form the
//!   autovectorizer turns into packed SIMD on the interleaved
//!   `[re, im, re, im, ...]` layout.
//!
//! The arithmetic of each kernel (operation order, grouping) matches the
//! pre-refactor `StateVector` methods exactly, so results are bit-identical
//! to the historical implementations pinned by the regression tests.

use qismet_mathkit::Complex64;

/// Amplitudes per reduction block. Reductions (probability norms, CDF
/// accumulation, expectation partial sums) are computed block-by-block so
/// sequential and thread-parallel execution add the same partials in the
/// same order. States of up to `BLOCK` amplitudes (14 qubits) are a single
/// block, which keeps their sums bit-identical to the historical straight
/// loop.
pub(crate) const BLOCK: usize = 1 << 14;

/// A stack-allocated 2x2 complex matrix (row-major).
pub(crate) type Mat2 = [[Complex64; 2]; 2];

/// Applies an arbitrary 2x2 unitary with target-bit value `stride` to a
/// slice (`slice.len()` must be a multiple of `2 * stride`).
pub(crate) fn apply_1q(amps: &mut [Complex64], u: &Mat2, stride: usize) {
    debug_assert!(amps.len().is_multiple_of(stride << 1));
    let [[u00, u01], [u10, u11]] = *u;
    for chunk in amps.chunks_exact_mut(stride << 1) {
        let (lo, hi) = chunk.split_at_mut(stride);
        for (a, b) in lo.iter_mut().zip(hi.iter_mut()) {
            let a0 = *a;
            let a1 = *b;
            *a = u00 * a0 + u01 * a1;
            *b = u10 * a0 + u11 * a1;
        }
    }
}

/// Applies a **real** 2x2 unitary (half the multiplies of the complex
/// butterfly) with target-bit value `stride`.
pub(crate) fn apply_1q_real(amps: &mut [Complex64], m: &[[f64; 2]; 2], stride: usize) {
    debug_assert!(amps.len().is_multiple_of(stride << 1));
    let (m00, m01, m10, m11) = (m[0][0], m[0][1], m[1][0], m[1][1]);
    for chunk in amps.chunks_exact_mut(stride << 1) {
        let (lo, hi) = chunk.split_at_mut(stride);
        for (a, b) in lo.iter_mut().zip(hi.iter_mut()) {
            let a0 = *a;
            let a1 = *b;
            *a = Complex64::new(m00 * a0.re + m01 * a1.re, m00 * a0.im + m01 * a1.im);
            *b = Complex64::new(m10 * a0.re + m11 * a1.re, m10 * a0.im + m11 * a1.im);
        }
    }
}

/// Visits every index of `amps` with both `lo_bit` and `hi_bit` clear
/// (`lo_bit < hi_bit`, both bit values): the canonical member of each
/// 4-amplitude orbit of a two-qubit gate. `amps.len()` must be a multiple of
/// `2 * hi_bit`.
#[inline(always)]
fn for_each_two_qubit_base<T>(
    amps: &mut [T],
    lo_bit: usize,
    hi_bit: usize,
    mut f: impl FnMut(&mut [T], usize),
) {
    debug_assert!(lo_bit < hi_bit && amps.len().is_multiple_of(hi_bit << 1));
    let dim = amps.len();
    let mut outer = 0usize;
    while outer < dim {
        let mut mid = outer;
        let outer_end = outer + hi_bit;
        while mid < outer_end {
            for idx in mid..mid + lo_bit {
                f(amps, idx);
            }
            mid += lo_bit << 1;
        }
        outer += hi_bit << 1;
    }
}

/// CX with control/target bit values `cbit`/`tbit`. Element-generic: the
/// real-amplitude run mode applies the same kernel to `f64` states.
pub(crate) fn apply_cx<T>(amps: &mut [T], cbit: usize, tbit: usize) {
    let (lo, hi) = (cbit.min(tbit), cbit.max(tbit));
    for_each_two_qubit_base(amps, lo, hi, |amps, idx| {
        amps.swap(idx | cbit, idx | cbit | tbit);
    });
}

/// CZ with operand bit values `abit`/`bbit` (element-generic, see
/// [`apply_cx`]).
pub(crate) fn apply_cz<T: Copy + core::ops::Neg<Output = T>>(
    amps: &mut [T],
    abit: usize,
    bbit: usize,
) {
    let (lo, hi) = (abit.min(bbit), abit.max(bbit));
    for_each_two_qubit_base(amps, lo, hi, |amps, idx| {
        let i11 = idx | abit | bbit;
        amps[i11] = -amps[i11];
    });
}

/// SWAP with operand bit values `abit`/`bbit` (element-generic, see
/// [`apply_cx`]).
pub(crate) fn apply_swap<T>(amps: &mut [T], abit: usize, bbit: usize) {
    let (lo, hi) = (abit.min(bbit), abit.max(bbit));
    for_each_two_qubit_base(amps, lo, hi, |amps, idx| {
        amps.swap(idx | abit, idx | bbit);
    });
}

/// RZZ with precomputed diagonal phases (`minus` on equal bits, `plus` on
/// differing bits) and operand bit values `abit`/`bbit`.
pub(crate) fn apply_rzz_phases(
    amps: &mut [Complex64],
    minus: Complex64,
    plus: Complex64,
    abit: usize,
    bbit: usize,
) {
    let (lo, hi) = (abit.min(bbit), abit.max(bbit));
    for_each_two_qubit_base(amps, lo, hi, |amps, idx| {
        amps[idx] *= minus;
        amps[idx | abit] *= plus;
        amps[idx | bbit] *= plus;
        amps[idx | abit | bbit] *= minus;
    });
}

/// Applies a dense 4x4 superoperator matrix `m` (row-major over the local
/// basis `|b1 b0>`) on support bit values `b0 < b1`. When `real` is set only
/// the real parts of `m` are used (exact for superops fused purely from
/// real gates, at half the multiplies).
pub(crate) fn apply_super2(
    amps: &mut [Complex64],
    m: &[Complex64],
    b0: usize,
    b1: usize,
    real: bool,
) {
    debug_assert!(m.len() >= 16 && b0 < b1 && amps.len().is_multiple_of(b1 << 1));
    let dim = amps.len();
    let mut outer = 0usize;
    while outer < dim {
        let mut mid = outer;
        let outer_end = outer + b1;
        while mid < outer_end {
            for base in mid..mid + b0 {
                let idx = [base, base | b0, base | b1, base | b0 | b1];
                let v = [amps[idx[0]], amps[idx[1]], amps[idx[2]], amps[idx[3]]];
                if real {
                    for (r, &i) in idx.iter().enumerate() {
                        let row = &m[r * 4..r * 4 + 4];
                        let mut re = 0.0f64;
                        let mut im = 0.0f64;
                        for c in 0..4 {
                            re += row[c].re * v[c].re;
                            im += row[c].re * v[c].im;
                        }
                        amps[i] = Complex64::new(re, im);
                    }
                } else {
                    for (r, &i) in idx.iter().enumerate() {
                        let row = &m[r * 4..r * 4 + 4];
                        let mut acc = Complex64::ZERO;
                        for c in 0..4 {
                            acc += row[c] * v[c];
                        }
                        amps[i] = acc;
                    }
                }
            }
            mid += b0 << 1;
        }
        outer += b1 << 1;
    }
}

/// Applies a dense 8x8 superoperator matrix `m` (row-major over the local
/// basis `|b2 b1 b0>`) on support bit values `b0 < b1 < b2`; see
/// [`apply_super2`].
pub(crate) fn apply_super3(
    amps: &mut [Complex64],
    m: &[Complex64],
    b0: usize,
    b1: usize,
    b2: usize,
    real: bool,
) {
    debug_assert!(m.len() >= 64 && b0 < b1 && b1 < b2 && amps.len().is_multiple_of(b2 << 1));
    let dim = amps.len();
    let mut top = 0usize;
    while top < dim {
        let mut outer = top;
        let top_end = top + b2;
        while outer < top_end {
            let mut mid = outer;
            let outer_end = outer + b1;
            while mid < outer_end {
                for base in mid..mid + b0 {
                    let idx = [
                        base,
                        base | b0,
                        base | b1,
                        base | b0 | b1,
                        base | b2,
                        base | b0 | b2,
                        base | b1 | b2,
                        base | b0 | b1 | b2,
                    ];
                    let mut v = [Complex64::ZERO; 8];
                    for (slot, &i) in v.iter_mut().zip(idx.iter()) {
                        *slot = amps[i];
                    }
                    if real {
                        for (r, &i) in idx.iter().enumerate() {
                            let row = &m[r * 8..r * 8 + 8];
                            let mut re = 0.0f64;
                            let mut im = 0.0f64;
                            for c in 0..8 {
                                re += row[c].re * v[c].re;
                                im += row[c].re * v[c].im;
                            }
                            amps[i] = Complex64::new(re, im);
                        }
                    } else {
                        for (r, &i) in idx.iter().enumerate() {
                            let row = &m[r * 8..r * 8 + 8];
                            let mut acc = Complex64::ZERO;
                            for c in 0..8 {
                                acc += row[c] * v[c];
                            }
                            amps[i] = acc;
                        }
                    }
                }
                mid += b0 << 1;
            }
            outer += b1 << 1;
        }
        top += b2 << 1;
    }
}

/// Expands orbit number `o` into a base index by inserting a zero at each
/// support bit (ascending bit values in `bits`).
#[inline(always)]
fn expand_orbit(mut o: usize, bits: &[usize]) -> usize {
    for &b in bits {
        o = (o & (b - 1)) | ((o & !(b - 1)) << 1);
    }
    o
}

/// Applies a precomputed index-permutation + phase table (a lowered
/// CX/CZ/SWAP/RZZ ladder) in one sweep.
///
/// The table maps local configuration `c` (over `bits`, ascending bit
/// values, `s = bits.len() <= 6`) to `phase[l] * |l>` where `l = pi(c)`:
/// `offs[l]` is the amplitude offset of local index `l`, `src[l] = pi^-1(l)`
/// and `phase[l]` the output phase. `diagonal` marks identity permutations
/// (in-place phase sweep, no gather) and `unit` marks all-ones phases (pure
/// permutation, no multiplies).
#[allow(clippy::too_many_arguments)]
pub(crate) fn apply_table(
    amps: &mut [Complex64],
    bits: &[usize],
    offs: &[usize],
    src: &[u8],
    phase: &[Complex64],
    diagonal: bool,
    unit: bool,
) {
    let s = bits.len();
    let size = 1usize << s;
    debug_assert!(offs.len() == size && src.len() == size && phase.len() == size);
    debug_assert!(amps.len().is_multiple_of(bits[s - 1] << 1));
    let n_orbits = amps.len() >> s;
    let mut buf = [Complex64::ZERO; 256];
    for o in 0..n_orbits {
        let base = expand_orbit(o, bits);
        if diagonal {
            for l in 0..size {
                amps[base + offs[l]] *= phase[l];
            }
        } else if unit {
            for l in 0..size {
                buf[l] = amps[base + offs[src[l] as usize]];
            }
            for l in 0..size {
                amps[base + offs[l]] = buf[l];
            }
        } else {
            for l in 0..size {
                buf[l] = phase[l] * amps[base + offs[src[l] as usize]];
            }
            for l in 0..size {
                amps[base + offs[l]] = buf[l];
            }
        }
    }
}

thread_local! {
    /// Per-thread gather scratch for [`apply_table_contig`]: one orbit
    /// region (`2^(shift + s)` amplitudes), grown on demand and reused
    /// across ops and calls. Thread-local so the `parallel` path — where
    /// each worker applies the table to its own disjoint region — needs no
    /// shared mutable state.
    static TABLE_SCRATCH: core::cell::RefCell<Vec<Complex64>> =
        const { core::cell::RefCell::new(Vec::new()) };
}

/// [`apply_table`] specialized for tables whose support is a contiguous
/// qubit run `[shift, shift + s)`. Local config `l` then sits at amplitude
/// offset `l << shift`, every orbit is one contiguous `2^(shift+s)`-amplitude
/// region, and the permutation moves `2^shift`-amplitude **blocks** —
/// straight `copy_from_slice`s (or packed phase-multiplies) instead of the
/// per-amplitude `offs` gather. Linear-entanglement ladders, the dominant
/// ansatz entangler shape, always lower to this form.
pub(crate) fn apply_table_contig(
    amps: &mut [Complex64],
    shift: usize,
    src: &[u8],
    phase: &[Complex64],
    diagonal: bool,
    unit: bool,
) {
    let size = src.len();
    let region = size << shift;
    debug_assert!(amps.len().is_multiple_of(region));
    if diagonal {
        for chunk in amps.chunks_exact_mut(region) {
            for (blk, &ph) in chunk.chunks_exact_mut(1 << shift).zip(phase.iter()) {
                for a in blk {
                    *a *= ph;
                }
            }
        }
        return;
    }
    TABLE_SCRATCH.with(|cell| {
        let mut scratch = cell.borrow_mut();
        scratch.resize(region, Complex64::ZERO);
        for chunk in amps.chunks_exact_mut(region) {
            scratch.copy_from_slice(chunk);
            if shift == 0 {
                // Blocks are single amplitudes: plain permuted copy.
                if unit {
                    for (l, a) in chunk.iter_mut().enumerate() {
                        *a = scratch[src[l] as usize];
                    }
                } else {
                    for (l, a) in chunk.iter_mut().enumerate() {
                        *a = phase[l] * scratch[src[l] as usize];
                    }
                }
                continue;
            }
            for (l, blk) in chunk.chunks_exact_mut(1 << shift).enumerate() {
                let sblk = &scratch[(src[l] as usize) << shift..][..blk.len()];
                if unit {
                    blk.copy_from_slice(sblk);
                } else {
                    let ph = phase[l];
                    for (d, &s) in blk.iter_mut().zip(sblk.iter()) {
                        *d = ph * s;
                    }
                }
            }
        }
    });
}

// ---------------------------------------------------------------------------
// Real-amplitude (`f64`) kernels.
//
// Plans whose every op preserves real amplitude vectors (real 1q segments,
// CX/CZ/SWAP, real superops, RZZ-free ladder tables) evolve an `f64` state
// instead of a `Complex64` one: half the flops and half the memory traffic,
// with the same sweep structure — and therefore the same
// sequential-vs-threaded bitwise-identity argument — as the complex kernels
// above. CX and SWAP reuse the generic kernels; the arithmetic kernels get
// real twins below.
// ---------------------------------------------------------------------------

/// Real twin of [`apply_1q_real`]: the 2x2 real butterfly on an `f64` state.
///
/// Strides 1 and 2 interleave the butterfly pairs too tightly for the
/// split-halves loop to vectorize, so they get unrolled shuffle-friendly
/// bodies over 8-amplitude chunks; wider strides vectorize as two linear
/// streams.
pub(crate) fn apply_1q_real_f64(amps: &mut [f64], m: &[[f64; 2]; 2], stride: usize) {
    debug_assert!(amps.len().is_multiple_of(stride << 1));
    let (m00, m01, m10, m11) = (m[0][0], m[0][1], m[1][0], m[1][1]);
    if stride == 1 && amps.len() >= 8 {
        for ch in amps.chunks_exact_mut(8) {
            let (a0, a1, a2, a3) = (ch[0], ch[2], ch[4], ch[6]);
            let (b0, b1, b2, b3) = (ch[1], ch[3], ch[5], ch[7]);
            ch[0] = m00 * a0 + m01 * b0;
            ch[1] = m10 * a0 + m11 * b0;
            ch[2] = m00 * a1 + m01 * b1;
            ch[3] = m10 * a1 + m11 * b1;
            ch[4] = m00 * a2 + m01 * b2;
            ch[5] = m10 * a2 + m11 * b2;
            ch[6] = m00 * a3 + m01 * b3;
            ch[7] = m10 * a3 + m11 * b3;
        }
        return;
    }
    if stride == 2 && amps.len() >= 8 {
        for ch in amps.chunks_exact_mut(8) {
            let (a0, a1, a2, a3) = (ch[0], ch[1], ch[4], ch[5]);
            let (b0, b1, b2, b3) = (ch[2], ch[3], ch[6], ch[7]);
            ch[0] = m00 * a0 + m01 * b0;
            ch[1] = m00 * a1 + m01 * b1;
            ch[2] = m10 * a0 + m11 * b0;
            ch[3] = m10 * a1 + m11 * b1;
            ch[4] = m00 * a2 + m01 * b2;
            ch[5] = m00 * a3 + m01 * b3;
            ch[6] = m10 * a2 + m11 * b2;
            ch[7] = m10 * a3 + m11 * b3;
        }
        return;
    }
    for chunk in amps.chunks_exact_mut(stride << 1) {
        let (lo, hi) = chunk.split_at_mut(stride);
        for (a, b) in lo.iter_mut().zip(hi.iter_mut()) {
            let a0 = *a;
            let a1 = *b;
            *a = m00 * a0 + m01 * a1;
            *b = m10 * a0 + m11 * a1;
        }
    }
}

/// Real twin of [`apply_super2`]: dense 4x4 **real** superoperator (the
/// matrix is stored complex with exactly-zero imaginary parts) on an `f64`
/// state.
pub(crate) fn apply_super2_f64(amps: &mut [f64], m: &[Complex64], b0: usize, b1: usize) {
    debug_assert!(m.len() >= 16 && b0 < b1 && amps.len().is_multiple_of(b1 << 1));
    for_each_two_qubit_base(amps, b0, b1, |amps, base| {
        let idx = [base, base | b0, base | b1, base | b0 | b1];
        let v = [amps[idx[0]], amps[idx[1]], amps[idx[2]], amps[idx[3]]];
        for (r, &i) in idx.iter().enumerate() {
            let row = &m[r * 4..r * 4 + 4];
            let mut acc = 0.0f64;
            for c in 0..4 {
                acc += row[c].re * v[c];
            }
            amps[i] = acc;
        }
    });
}

/// Real twin of [`apply_super3`]: dense 8x8 **real** superoperator on an
/// `f64` state.
pub(crate) fn apply_super3_f64(amps: &mut [f64], m: &[Complex64], b0: usize, b1: usize, b2: usize) {
    debug_assert!(m.len() >= 64 && b0 < b1 && b1 < b2 && amps.len().is_multiple_of(b2 << 1));
    let dim = amps.len();
    let mut top = 0usize;
    while top < dim {
        let mut outer = top;
        let top_end = top + b2;
        while outer < top_end {
            let mut mid = outer;
            let outer_end = outer + b1;
            while mid < outer_end {
                for base in mid..mid + b0 {
                    let idx = [
                        base,
                        base | b0,
                        base | b1,
                        base | b0 | b1,
                        base | b2,
                        base | b0 | b2,
                        base | b1 | b2,
                        base | b0 | b1 | b2,
                    ];
                    let mut v = [0.0f64; 8];
                    for (slot, &i) in v.iter_mut().zip(idx.iter()) {
                        *slot = amps[i];
                    }
                    for (r, &i) in idx.iter().enumerate() {
                        let row = &m[r * 8..r * 8 + 8];
                        let mut acc = 0.0f64;
                        for c in 0..8 {
                            acc += row[c].re * v[c];
                        }
                        amps[i] = acc;
                    }
                }
                mid += b0 << 1;
            }
            outer += b1 << 1;
        }
        top += b2 << 1;
    }
}

/// Real twin of [`apply_table`]: RZZ-free ladder tables have exactly-real
/// (`+/-1`) phases, so the gather runs on an `f64` state with `phase[l].re`.
#[allow(clippy::too_many_arguments)]
pub(crate) fn apply_table_f64(
    amps: &mut [f64],
    bits: &[usize],
    offs: &[usize],
    src: &[u8],
    phase: &[Complex64],
    diagonal: bool,
    unit: bool,
) {
    let s = bits.len();
    let size = 1usize << s;
    debug_assert!(offs.len() == size && src.len() == size && phase.len() == size);
    debug_assert!(amps.len().is_multiple_of(bits[s - 1] << 1));
    let n_orbits = amps.len() >> s;
    let mut buf = [0.0f64; 256];
    for o in 0..n_orbits {
        let base = expand_orbit(o, bits);
        if diagonal {
            for l in 0..size {
                amps[base + offs[l]] *= phase[l].re;
            }
        } else if unit {
            for l in 0..size {
                buf[l] = amps[base + offs[src[l] as usize]];
            }
            for l in 0..size {
                amps[base + offs[l]] = buf[l];
            }
        } else {
            for l in 0..size {
                buf[l] = phase[l].re * amps[base + offs[src[l] as usize]];
            }
            for l in 0..size {
                amps[base + offs[l]] = buf[l];
            }
        }
    }
}

thread_local! {
    /// Per-thread gather scratch for [`apply_table_contig_f64`] (see
    /// [`TABLE_SCRATCH`]).
    static TABLE_SCRATCH_F64: core::cell::RefCell<Vec<f64>> =
        const { core::cell::RefCell::new(Vec::new()) };
}

/// Real twin of [`apply_table_contig`]: contiguous-support block
/// permutation on an `f64` state.
pub(crate) fn apply_table_contig_f64(
    amps: &mut [f64],
    shift: usize,
    src: &[u8],
    phase: &[Complex64],
    diagonal: bool,
    unit: bool,
) {
    let size = src.len();
    let region = size << shift;
    debug_assert!(amps.len().is_multiple_of(region));
    if diagonal {
        for chunk in amps.chunks_exact_mut(region) {
            for (blk, ph) in chunk.chunks_exact_mut(1 << shift).zip(phase.iter()) {
                for a in blk {
                    *a *= ph.re;
                }
            }
        }
        return;
    }
    TABLE_SCRATCH_F64.with(|cell| {
        let mut scratch = cell.borrow_mut();
        scratch.resize(region, 0.0);
        for chunk in amps.chunks_exact_mut(region) {
            scratch.copy_from_slice(chunk);
            if shift == 0 {
                if unit {
                    for (l, a) in chunk.iter_mut().enumerate() {
                        *a = scratch[src[l] as usize];
                    }
                } else {
                    for (l, a) in chunk.iter_mut().enumerate() {
                        *a = phase[l].re * scratch[src[l] as usize];
                    }
                }
                continue;
            }
            for (l, blk) in chunk.chunks_exact_mut(1 << shift).enumerate() {
                let sblk = &scratch[(src[l] as usize) << shift..][..blk.len()];
                if unit {
                    blk.copy_from_slice(sblk);
                } else {
                    let ph = phase[l].re;
                    for (d, &s) in blk.iter_mut().zip(sblk.iter()) {
                        *d = ph * s;
                    }
                }
            }
        }
    });
}

// ---------------------------------------------------------------------------
// Lane-batched (structure-of-arrays) kernels.
//
// A batched state holds `lanes` independent statevectors interleaved
// lane-major: amplitude `i` of lane `l` lives at `amps[i * lanes + l]`.
// Every batched kernel reproduces the corresponding scalar kernel's sweep
// structure index for index, with each per-amplitude access widened to a
// contiguous lane row, so the innermost loops are stride-1 over lanes —
// exactly the layout the autovectorizer packs — where the scalar
// butterflies are strided. The per-lane arithmetic (operation order,
// accumulation grouping, branch selection) is the exact scalar expression,
// which is what makes lane `l` of a batched apply **bitwise identical** to
// a scalar apply of that lane's op data.
//
// Per-lane op data (matrices, phases) is stored entry-major, lane-minor:
// entry `e` of lane `l` sits at `data[e * lanes + l]`, so the lane loop
// reads it stride-1 too.
// ---------------------------------------------------------------------------

/// Visits every base index of a two-qubit orbit over a `dim`-amplitude
/// index space (the batched twin of [`for_each_two_qubit_base`], which
/// walks indices rather than elements because each index maps to a lane
/// row).
#[inline(always)]
fn for_each_two_qubit_base_idx(dim: usize, lo_bit: usize, hi_bit: usize, mut f: impl FnMut(usize)) {
    debug_assert!(lo_bit < hi_bit && dim.is_multiple_of(hi_bit << 1));
    let mut outer = 0usize;
    while outer < dim {
        let mut mid = outer;
        let outer_end = outer + hi_bit;
        while mid < outer_end {
            for idx in mid..mid + lo_bit {
                f(idx);
            }
            mid += lo_bit << 1;
        }
        outer += hi_bit << 1;
    }
}

/// Dispatches a lane-batched kernel to its const-lane-count
/// monomorphization (`$f::<L>`), giving every innermost lane loop a
/// compile-time trip count — at `L = 8` one full AVX-512 `f64` vector (two
/// AVX2 vectors) per lane row — where a runtime `lanes` bound forces the
/// autovectorizer to emit guarded, unrollable-only-speculatively loops.
/// Lane counts are capped at [`MAX_LANES`] by state construction, so the
/// fallthrough arm is unreachable. The second form forwards one explicit
/// type parameter ahead of the lane count for element-generic kernels.
macro_rules! lane_dispatch {
    ($lanes:expr, $f:ident($($args:expr),* $(,)?)) => {
        match $lanes {
            1 => $f::<1>($($args),*),
            2 => $f::<2>($($args),*),
            3 => $f::<3>($($args),*),
            4 => $f::<4>($($args),*),
            5 => $f::<5>($($args),*),
            6 => $f::<6>($($args),*),
            7 => $f::<7>($($args),*),
            8 => $f::<8>($($args),*),
            other => unreachable!("lane count {other} exceeds MAX_LANES"),
        }
    };
    ($lanes:expr, $f:ident::<$t:ty>($($args:expr),* $(,)?)) => {
        match $lanes {
            1 => $f::<1, $t>($($args),*),
            2 => $f::<2, $t>($($args),*),
            3 => $f::<3, $t>($($args),*),
            4 => $f::<4, $t>($($args),*),
            5 => $f::<5, $t>($($args),*),
            6 => $f::<6, $t>($($args),*),
            7 => $f::<7, $t>($($args),*),
            8 => $f::<8, $t>($($args),*),
            other => unreachable!("lane count {other} exceeds MAX_LANES"),
        }
    };
}
pub(crate) use lane_dispatch;

/// Borrows the `L`-element lane row starting at `at` as a fixed-size
/// array, so the monomorphized kernels index it without per-row bounds
/// checks.
#[inline(always)]
pub(crate) fn lane_row<const L: usize, T>(s: &[T], at: usize) -> &[T; L] {
    s[at..at + L].try_into().expect("lane row in bounds")
}

/// Mutable twin of [`lane_row`].
#[inline(always)]
pub(crate) fn lane_row_mut<const L: usize, T>(s: &mut [T], at: usize) -> &mut [T; L] {
    (&mut s[at..at + L]).try_into().expect("lane row in bounds")
}

/// Batched twin of [`apply_1q`]: per-lane 2x2 unitaries on a lane-major
/// state. `u` holds the four matrix entries entry-major
/// (`u[e * lanes + l]`, `e` in `00, 01, 10, 11` row-major order).
pub(crate) fn apply_1q_batch(amps: &mut [Complex64], u: &[Complex64], lanes: usize, stride: usize) {
    debug_assert!(u.len() >= 4 * lanes);
    debug_assert!(amps.len().is_multiple_of((stride << 1) * lanes));
    lane_dispatch!(lanes, apply_1q_batch_mono(amps, u, stride));
}

fn apply_1q_batch_mono<const L: usize>(amps: &mut [Complex64], u: &[Complex64], stride: usize) {
    let u00 = lane_row::<L, _>(u, 0);
    let u01 = lane_row::<L, _>(u, L);
    let u10 = lane_row::<L, _>(u, 2 * L);
    let u11 = lane_row::<L, _>(u, 3 * L);
    let row = stride * L;
    for chunk in amps.chunks_exact_mut(row << 1) {
        let (lo, hi) = chunk.split_at_mut(row);
        for (a, b) in lo.chunks_exact_mut(L).zip(hi.chunks_exact_mut(L)) {
            let a: &mut [Complex64; L] = a.try_into().expect("lane row");
            let b: &mut [Complex64; L] = b.try_into().expect("lane row");
            for l in 0..L {
                let a0 = a[l];
                let a1 = b[l];
                a[l] = u00[l] * a0 + u01[l] * a1;
                b[l] = u10[l] * a0 + u11[l] * a1;
            }
        }
    }
}

/// Batched twin of [`apply_1q_real`]: per-lane **real** 2x2 unitaries on a
/// lane-major complex state. `m` holds the four entries entry-major
/// (`m[e * lanes + l]`).
pub(crate) fn apply_1q_real_batch(amps: &mut [Complex64], m: &[f64], lanes: usize, stride: usize) {
    debug_assert!(m.len() >= 4 * lanes);
    debug_assert!(amps.len().is_multiple_of((stride << 1) * lanes));
    lane_dispatch!(lanes, apply_1q_real_batch_mono(amps, m, stride));
}

fn apply_1q_real_batch_mono<const L: usize>(amps: &mut [Complex64], m: &[f64], stride: usize) {
    let m00 = lane_row::<L, _>(m, 0);
    let m01 = lane_row::<L, _>(m, L);
    let m10 = lane_row::<L, _>(m, 2 * L);
    let m11 = lane_row::<L, _>(m, 3 * L);
    let row = stride * L;
    for chunk in amps.chunks_exact_mut(row << 1) {
        let (lo, hi) = chunk.split_at_mut(row);
        for (a, b) in lo.chunks_exact_mut(L).zip(hi.chunks_exact_mut(L)) {
            let a: &mut [Complex64; L] = a.try_into().expect("lane row");
            let b: &mut [Complex64; L] = b.try_into().expect("lane row");
            for l in 0..L {
                let a0 = a[l];
                let a1 = b[l];
                a[l] = Complex64::new(
                    m00[l] * a0.re + m01[l] * a1.re,
                    m00[l] * a0.im + m01[l] * a1.im,
                );
                b[l] = Complex64::new(
                    m10[l] * a0.re + m11[l] * a1.re,
                    m10[l] * a0.im + m11[l] * a1.im,
                );
            }
        }
    }
}

/// Batched twin of [`apply_1q_real_f64`]: per-lane real 2x2 unitaries on a
/// lane-major `f64` state.
pub(crate) fn apply_1q_real_f64_batch(amps: &mut [f64], m: &[f64], lanes: usize, stride: usize) {
    debug_assert!(m.len() >= 4 * lanes);
    debug_assert!(amps.len().is_multiple_of((stride << 1) * lanes));
    lane_dispatch!(lanes, apply_1q_real_f64_batch_mono(amps, m, stride));
}

fn apply_1q_real_f64_batch_mono<const L: usize>(amps: &mut [f64], m: &[f64], stride: usize) {
    let m00 = lane_row::<L, _>(m, 0);
    let m01 = lane_row::<L, _>(m, L);
    let m10 = lane_row::<L, _>(m, 2 * L);
    let m11 = lane_row::<L, _>(m, 3 * L);
    if stride < 4 {
        // Narrow strides: the lo/hi halves are one or two contiguous lane
        // rows, which the vectorizer already handles at full width.
        let (rows, rest) = amps.as_chunks_mut::<L>();
        debug_assert!(rest.is_empty());
        for chunk in rows.chunks_exact_mut(stride << 1) {
            let (lo, hi) = chunk.split_at_mut(stride);
            for (a, b) in lo.iter_mut().zip(hi.iter_mut()) {
                for l in 0..L {
                    let a0 = a[l];
                    let a1 = b[l];
                    a[l] = m00[l] * a0 + m01[l] * a1;
                    b[l] = m10[l] * a0 + m11[l] * a1;
                }
            }
        }
        return;
    }
    // Wide strides: a per-row inner loop here tempts the vectorizer into
    // cross-row interleaving (permute-heavy, ~3x slower than row-wise
    // math). Replicating the coefficient rows across a small tile lets the
    // lo/hi halves be swept as flat contiguous spans instead — every load
    // is a plain stride-1 vector load, no shuffles possible. `c[e][k*L+l]
    // == m_e[l]` exactly, so the per-lane arithmetic is unchanged.
    const TILE_ROWS: usize = 8;
    debug_assert!(stride.is_power_of_two());
    let t = stride.min(TILE_ROWS);
    let tl = t * L;
    let mut c = [[0.0f64; TILE_ROWS * MAX_LANES]; 4];
    for (e, src) in [m00, m01, m10, m11].into_iter().enumerate() {
        for k in 0..t {
            c[e][k * L..k * L + L].copy_from_slice(src);
        }
    }
    let (c00, c01, c10, c11) = (&c[0][..tl], &c[1][..tl], &c[2][..tl], &c[3][..tl]);
    let row = stride * L;
    for chunk in amps.chunks_exact_mut(row << 1) {
        let (lo, hi) = chunk.split_at_mut(row);
        for (la, lb) in lo.chunks_exact_mut(tl).zip(hi.chunks_exact_mut(tl)) {
            for j in 0..tl {
                let a0 = la[j];
                let a1 = lb[j];
                la[j] = c00[j] * a0 + c01[j] * a1;
                lb[j] = c10[j] * a0 + c11[j] * a1;
            }
        }
    }
}

/// Batched twin of [`apply_cx`] (element-generic like the scalar kernel).
pub(crate) fn apply_cx_batch<T>(amps: &mut [T], lanes: usize, cbit: usize, tbit: usize) {
    lane_dispatch!(lanes, apply_cx_batch_mono::<T>(amps, cbit, tbit));
}

fn apply_cx_batch_mono<const L: usize, T>(amps: &mut [T], cbit: usize, tbit: usize) {
    let (lo, hi) = (cbit.min(tbit), cbit.max(tbit));
    for_each_two_qubit_base_idx(amps.len() / L, lo, hi, |idx| {
        let r0 = (idx | cbit) * L;
        let r1 = (idx | cbit | tbit) * L;
        for l in 0..L {
            amps.swap(r0 + l, r1 + l);
        }
    });
}

/// Batched twin of [`apply_cz`].
pub(crate) fn apply_cz_batch<T: Copy + core::ops::Neg<Output = T>>(
    amps: &mut [T],
    lanes: usize,
    abit: usize,
    bbit: usize,
) {
    lane_dispatch!(lanes, apply_cz_batch_mono::<T>(amps, abit, bbit));
}

fn apply_cz_batch_mono<const L: usize, T: Copy + core::ops::Neg<Output = T>>(
    amps: &mut [T],
    abit: usize,
    bbit: usize,
) {
    let (lo, hi) = (abit.min(bbit), abit.max(bbit));
    for_each_two_qubit_base_idx(amps.len() / L, lo, hi, |idx| {
        let r = lane_row_mut::<L, _>(amps, (idx | abit | bbit) * L);
        for v in r.iter_mut() {
            *v = -*v;
        }
    });
}

/// Batched twin of [`apply_swap`].
pub(crate) fn apply_swap_batch<T>(amps: &mut [T], lanes: usize, abit: usize, bbit: usize) {
    lane_dispatch!(lanes, apply_swap_batch_mono::<T>(amps, abit, bbit));
}

fn apply_swap_batch_mono<const L: usize, T>(amps: &mut [T], abit: usize, bbit: usize) {
    let (lo, hi) = (abit.min(bbit), abit.max(bbit));
    for_each_two_qubit_base_idx(amps.len() / L, lo, hi, |idx| {
        let ra = (idx | abit) * L;
        let rb = (idx | bbit) * L;
        for l in 0..L {
            amps.swap(ra + l, rb + l);
        }
    });
}

/// Batched twin of [`apply_rzz_phases`] with per-lane diagonal phases
/// (`minus[l]` / `plus[l]`).
pub(crate) fn apply_rzz_batch(
    amps: &mut [Complex64],
    lanes: usize,
    minus: &[Complex64],
    plus: &[Complex64],
    abit: usize,
    bbit: usize,
) {
    debug_assert!(minus.len() >= lanes && plus.len() >= lanes);
    lane_dispatch!(lanes, apply_rzz_batch_mono(amps, minus, plus, abit, bbit));
}

fn apply_rzz_batch_mono<const L: usize>(
    amps: &mut [Complex64],
    minus: &[Complex64],
    plus: &[Complex64],
    abit: usize,
    bbit: usize,
) {
    let minus = lane_row::<L, _>(minus, 0);
    let plus = lane_row::<L, _>(plus, 0);
    let (lo, hi) = (abit.min(bbit), abit.max(bbit));
    for_each_two_qubit_base_idx(amps.len() / L, lo, hi, |idx| {
        let r = lane_row_mut::<L, _>(amps, idx * L);
        for l in 0..L {
            r[l] *= minus[l];
        }
        let r = lane_row_mut::<L, _>(amps, (idx | abit) * L);
        for l in 0..L {
            r[l] *= plus[l];
        }
        let r = lane_row_mut::<L, _>(amps, (idx | bbit) * L);
        for l in 0..L {
            r[l] *= plus[l];
        }
        let r = lane_row_mut::<L, _>(amps, (idx | abit | bbit) * L);
        for l in 0..L {
            r[l] *= minus[l];
        }
    });
}

/// Maximum lane count of a batched state (see [`crate::BatchStateVector`]);
/// sizes the stack gather buffers of the batched superop kernels.
pub(crate) const MAX_LANES: usize = 8;

/// Batched twin of [`apply_super2`]: per-lane dense 4x4 superoperators. A
/// complex superop holds its 16 entries entry-major in `m`
/// (`m[(r * 4 + c) * lanes + l]`); a real superop holds them in the bare
/// `f64` plane `mre` instead, so the lane loops load matrix rows stride-1
/// rather than gathering `.re` out of interleaved complex pairs.
pub(crate) fn apply_super2_batch(
    amps: &mut [Complex64],
    lanes: usize,
    m: &[Complex64],
    mre: &[f64],
    b0: usize,
    b1: usize,
    real: bool,
) {
    debug_assert!(if real { mre.len() } else { m.len() } >= 16 * lanes);
    debug_assert!(b0 < b1 && lanes <= MAX_LANES);
    debug_assert!((amps.len() / lanes).is_multiple_of(b1 << 1));
    lane_dispatch!(lanes, apply_super2_batch_mono(amps, m, mre, b0, b1, real));
}

fn apply_super2_batch_mono<const L: usize>(
    amps: &mut [Complex64],
    m: &[Complex64],
    mre: &[f64],
    b0: usize,
    b1: usize,
    real: bool,
) {
    let dim = amps.len() / L;
    let mut v = [Complex64::ZERO; 4 * MAX_LANES];
    for_each_two_qubit_base_idx(dim, b0, b1, |base| {
        let idx = [base, base | b0, base | b1, base | b0 | b1];
        for (c, &i) in idx.iter().enumerate() {
            v[c * L..c * L + L].copy_from_slice(&amps[i * L..i * L + L]);
        }
        if real {
            for (r, &i) in idx.iter().enumerate() {
                let mut re = [0.0f64; L];
                let mut im = [0.0f64; L];
                for c in 0..4 {
                    let mr = lane_row::<L, _>(mre, (r * 4 + c) * L);
                    let vr = lane_row::<L, _>(&v, c * L);
                    for l in 0..L {
                        re[l] += mr[l] * vr[l].re;
                        im[l] += mr[l] * vr[l].im;
                    }
                }
                let out = lane_row_mut::<L, _>(amps, i * L);
                for l in 0..L {
                    out[l] = Complex64::new(re[l], im[l]);
                }
            }
        } else {
            for (r, &i) in idx.iter().enumerate() {
                let mut acc = [Complex64::ZERO; L];
                for c in 0..4 {
                    let mr = lane_row::<L, _>(m, (r * 4 + c) * L);
                    let vr = lane_row::<L, _>(&v, c * L);
                    for l in 0..L {
                        acc[l] += mr[l] * vr[l];
                    }
                }
                amps[i * L..][..L].copy_from_slice(&acc);
            }
        }
    });
}

/// Batched twin of [`apply_super3`]: per-lane dense 8x8 superoperators
/// (`m[(r * 8 + c) * lanes + l]`, real superops in the `mre` plane — see
/// [`apply_super2_batch`]).
#[allow(clippy::too_many_arguments)]
pub(crate) fn apply_super3_batch(
    amps: &mut [Complex64],
    lanes: usize,
    m: &[Complex64],
    mre: &[f64],
    b0: usize,
    b1: usize,
    b2: usize,
    real: bool,
) {
    debug_assert!(if real { mre.len() } else { m.len() } >= 64 * lanes);
    debug_assert!(b0 < b1 && b1 < b2 && lanes <= MAX_LANES);
    debug_assert!((amps.len() / lanes).is_multiple_of(b2 << 1));
    lane_dispatch!(
        lanes,
        apply_super3_batch_mono(amps, m, mre, b0, b1, b2, real)
    );
}

fn apply_super3_batch_mono<const L: usize>(
    amps: &mut [Complex64],
    m: &[Complex64],
    mre: &[f64],
    b0: usize,
    b1: usize,
    b2: usize,
    real: bool,
) {
    let dim = amps.len() / L;
    let mut v = [Complex64::ZERO; 8 * MAX_LANES];
    let mut top = 0usize;
    while top < dim {
        let mut outer = top;
        let top_end = top + b2;
        while outer < top_end {
            let mut mid = outer;
            let outer_end = outer + b1;
            while mid < outer_end {
                for base in mid..mid + b0 {
                    let idx = [
                        base,
                        base | b0,
                        base | b1,
                        base | b0 | b1,
                        base | b2,
                        base | b0 | b2,
                        base | b1 | b2,
                        base | b0 | b1 | b2,
                    ];
                    for (c, &i) in idx.iter().enumerate() {
                        v[c * L..c * L + L].copy_from_slice(&amps[i * L..i * L + L]);
                    }
                    if real {
                        for (r, &i) in idx.iter().enumerate() {
                            let mut re = [0.0f64; L];
                            let mut im = [0.0f64; L];
                            for c in 0..8 {
                                let mr = lane_row::<L, _>(mre, (r * 8 + c) * L);
                                let vr = lane_row::<L, _>(&v, c * L);
                                for l in 0..L {
                                    re[l] += mr[l] * vr[l].re;
                                    im[l] += mr[l] * vr[l].im;
                                }
                            }
                            let out = lane_row_mut::<L, _>(amps, i * L);
                            for l in 0..L {
                                out[l] = Complex64::new(re[l], im[l]);
                            }
                        }
                    } else {
                        for (r, &i) in idx.iter().enumerate() {
                            let mut acc = [Complex64::ZERO; L];
                            for c in 0..8 {
                                let mr = lane_row::<L, _>(m, (r * 8 + c) * L);
                                let vr = lane_row::<L, _>(&v, c * L);
                                for l in 0..L {
                                    acc[l] += mr[l] * vr[l];
                                }
                            }
                            amps[i * L..][..L].copy_from_slice(&acc);
                        }
                    }
                }
                mid += b0 << 1;
            }
            outer += b1 << 1;
        }
        top += b2 << 1;
    }
}

/// Batched twin of [`apply_super2_f64`] on a lane-major `f64` state (the
/// matrices are per-lane real superops stored entry-major in a bare `f64`
/// plane, so every load in the hot loop is stride-1).
pub(crate) fn apply_super2_f64_batch(
    amps: &mut [f64],
    lanes: usize,
    m: &[f64],
    b0: usize,
    b1: usize,
) {
    debug_assert!(m.len() >= 16 * lanes && b0 < b1 && lanes <= MAX_LANES);
    debug_assert!((amps.len() / lanes).is_multiple_of(b1 << 1));
    lane_dispatch!(lanes, apply_super2_f64_batch_mono(amps, m, b0, b1));
}

fn apply_super2_f64_batch_mono<const L: usize>(amps: &mut [f64], m: &[f64], b0: usize, b1: usize) {
    let dim = amps.len() / L;
    let mut v = [0.0f64; 4 * MAX_LANES];
    for_each_two_qubit_base_idx(dim, b0, b1, |base| {
        let idx = [base, base | b0, base | b1, base | b0 | b1];
        for (c, &i) in idx.iter().enumerate() {
            v[c * L..c * L + L].copy_from_slice(&amps[i * L..i * L + L]);
        }
        for (r, &i) in idx.iter().enumerate() {
            let mut acc = [0.0f64; L];
            for c in 0..4 {
                let mr = lane_row::<L, _>(m, (r * 4 + c) * L);
                let vr = lane_row::<L, _>(&v, c * L);
                for l in 0..L {
                    acc[l] += mr[l] * vr[l];
                }
            }
            amps[i * L..][..L].copy_from_slice(&acc);
        }
    });
}

/// Batched twin of [`apply_super3_f64`].
pub(crate) fn apply_super3_f64_batch(
    amps: &mut [f64],
    lanes: usize,
    m: &[f64],
    b0: usize,
    b1: usize,
    b2: usize,
) {
    debug_assert!(m.len() >= 64 * lanes && b0 < b1 && b1 < b2 && lanes <= MAX_LANES);
    debug_assert!((amps.len() / lanes).is_multiple_of(b2 << 1));
    lane_dispatch!(lanes, apply_super3_f64_batch_mono(amps, m, b0, b1, b2));
}

fn apply_super3_f64_batch_mono<const L: usize>(
    amps: &mut [f64],
    m: &[f64],
    b0: usize,
    b1: usize,
    b2: usize,
) {
    let dim = amps.len() / L;
    let mut v = [0.0f64; 8 * MAX_LANES];
    let mut top = 0usize;
    while top < dim {
        let mut outer = top;
        let top_end = top + b2;
        while outer < top_end {
            let mut mid = outer;
            let outer_end = outer + b1;
            while mid < outer_end {
                for base in mid..mid + b0 {
                    let idx = [
                        base,
                        base | b0,
                        base | b1,
                        base | b0 | b1,
                        base | b2,
                        base | b0 | b2,
                        base | b1 | b2,
                        base | b0 | b1 | b2,
                    ];
                    for (c, &i) in idx.iter().enumerate() {
                        v[c * L..c * L + L].copy_from_slice(&amps[i * L..i * L + L]);
                    }
                    for (r, &i) in idx.iter().enumerate() {
                        let mut acc = [0.0f64; L];
                        for c in 0..8 {
                            let mr = lane_row::<L, _>(m, (r * 8 + c) * L);
                            let vr = lane_row::<L, _>(&v, c * L);
                            for l in 0..L {
                                acc[l] += mr[l] * vr[l];
                            }
                        }
                        amps[i * L..][..L].copy_from_slice(&acc);
                    }
                }
                mid += b0 << 1;
            }
            outer += b1 << 1;
        }
        top += b2 << 1;
    }
}

thread_local! {
    /// Per-thread gather scratch for the batched table kernels (an orbit
    /// region times the lane count can exceed comfortable stack size).
    static BATCH_TABLE_SCRATCH: core::cell::RefCell<Vec<Complex64>> =
        const { core::cell::RefCell::new(Vec::new()) };
    /// `f64` twin of [`BATCH_TABLE_SCRATCH`].
    static BATCH_TABLE_SCRATCH_F64: core::cell::RefCell<Vec<f64>> =
        const { core::cell::RefCell::new(Vec::new()) };
}

/// Batched twin of [`apply_table`]: shared permutation structure
/// (`bits`/`offs`/`src`/`diagonal` are angle-independent, hence identical
/// across lanes of one compiled structure) with per-lane phases
/// (`phase[l * lanes + lane]`) and a per-lane `unit` flag.
///
/// The scalar kernel *branches* on `unit` — a unit lane is copied, never
/// multiplied by its exactly-one phase (`re - im * 0.0` can flip a `-0.0`
/// bit) — so mixed-unit batches blend per lane to stay bitwise identical.
#[allow(clippy::too_many_arguments)]
pub(crate) fn apply_table_batch(
    amps: &mut [Complex64],
    lanes: usize,
    bits: &[usize],
    offs: &[usize],
    src: &[u8],
    phase: &[Complex64],
    diagonal: bool,
    unit: &[bool],
) {
    lane_dispatch!(
        lanes,
        apply_table_batch_mono(amps, bits, offs, src, phase, diagonal, unit)
    );
}

#[allow(clippy::too_many_arguments)]
fn apply_table_batch_mono<const L: usize>(
    amps: &mut [Complex64],
    bits: &[usize],
    offs: &[usize],
    src: &[u8],
    phase: &[Complex64],
    diagonal: bool,
    unit: &[bool],
) {
    let s = bits.len();
    let size = 1usize << s;
    debug_assert!(offs.len() == size && src.len() == size && phase.len() >= size * L);
    debug_assert!(unit.len() >= L);
    let dim = amps.len() / L;
    debug_assert!(dim.is_multiple_of(bits[s - 1] << 1));
    let n_orbits = dim >> s;
    let all_unit = unit[..L].iter().all(|&u| u);
    let any_unit = unit[..L].iter().any(|&u| u);
    BATCH_TABLE_SCRATCH.with(|cell| {
        let mut buf = cell.borrow_mut();
        buf.resize(size * L, Complex64::ZERO);
        for o in 0..n_orbits {
            let base = expand_orbit(o, bits);
            if diagonal {
                for (l, &off) in offs.iter().enumerate() {
                    let row = lane_row_mut::<L, _>(amps, (base + off) * L);
                    let ph = lane_row::<L, _>(phase, l * L);
                    for la in 0..L {
                        row[la] *= ph[la];
                    }
                }
                continue;
            }
            for l in 0..size {
                let srow = lane_row::<L, _>(amps, (base + offs[src[l] as usize]) * L);
                let dst = lane_row_mut::<L, _>(&mut buf, l * L);
                if all_unit {
                    dst.copy_from_slice(srow);
                } else if !any_unit {
                    let ph = lane_row::<L, _>(phase, l * L);
                    for la in 0..L {
                        dst[la] = ph[la] * srow[la];
                    }
                } else {
                    let ph = lane_row::<L, _>(phase, l * L);
                    for la in 0..L {
                        dst[la] = if unit[la] {
                            srow[la]
                        } else {
                            ph[la] * srow[la]
                        };
                    }
                }
            }
            for l in 0..size {
                amps[(base + offs[l]) * L..][..L].copy_from_slice(&buf[l * L..][..L]);
            }
        }
    });
}

/// Batched twin of [`apply_table_contig`]: contiguous-support block
/// permutation on a lane-major state (an orbit region is one contiguous
/// `2^(shift + s) * lanes` run; the permutation moves `2^shift`-row lane
/// blocks).
pub(crate) fn apply_table_contig_batch(
    amps: &mut [Complex64],
    lanes: usize,
    shift: usize,
    src: &[u8],
    phase: &[Complex64],
    diagonal: bool,
    unit: &[bool],
) {
    lane_dispatch!(
        lanes,
        apply_table_contig_batch_mono(amps, shift, src, phase, diagonal, unit)
    );
}

fn apply_table_contig_batch_mono<const L: usize>(
    amps: &mut [Complex64],
    shift: usize,
    src: &[u8],
    phase: &[Complex64],
    diagonal: bool,
    unit: &[bool],
) {
    let size = src.len();
    let region = size << shift;
    debug_assert!(phase.len() >= size * L && unit.len() >= L);
    debug_assert!((amps.len() / L).is_multiple_of(region));
    let blk_len = (1usize << shift) * L;
    if diagonal {
        for chunk in amps.chunks_exact_mut(region * L) {
            for (l, blk) in chunk.chunks_exact_mut(blk_len).enumerate() {
                let ph = lane_row::<L, _>(phase, l * L);
                for row in blk.chunks_exact_mut(L) {
                    let row: &mut [Complex64; L] = row.try_into().expect("lane row");
                    for la in 0..L {
                        row[la] *= ph[la];
                    }
                }
            }
        }
        return;
    }
    let all_unit = unit[..L].iter().all(|&u| u);
    let any_unit = unit[..L].iter().any(|&u| u);
    BATCH_TABLE_SCRATCH.with(|cell| {
        let mut scratch = cell.borrow_mut();
        scratch.resize(region * L, Complex64::ZERO);
        for chunk in amps.chunks_exact_mut(region * L) {
            scratch.copy_from_slice(chunk);
            for (l, blk) in chunk.chunks_exact_mut(blk_len).enumerate() {
                let sblk = &scratch[(src[l] as usize) * blk_len..][..blk_len];
                if all_unit {
                    blk.copy_from_slice(sblk);
                    continue;
                }
                let ph = lane_row::<L, _>(phase, l * L);
                if !any_unit {
                    for (drow, srow) in blk.chunks_exact_mut(L).zip(sblk.chunks_exact(L)) {
                        let drow: &mut [Complex64; L] = drow.try_into().expect("lane row");
                        let srow: &[Complex64; L] = srow.try_into().expect("lane row");
                        for la in 0..L {
                            drow[la] = ph[la] * srow[la];
                        }
                    }
                } else {
                    for (drow, srow) in blk.chunks_exact_mut(L).zip(sblk.chunks_exact(L)) {
                        let drow: &mut [Complex64; L] = drow.try_into().expect("lane row");
                        let srow: &[Complex64; L] = srow.try_into().expect("lane row");
                        for la in 0..L {
                            drow[la] = if unit[la] {
                                srow[la]
                            } else {
                                ph[la] * srow[la]
                            };
                        }
                    }
                }
            }
        }
    });
}

/// Batched twin of [`apply_table_f64`] on a lane-major `f64` state
/// (RZZ-free ladder phases are exactly real, applied as `phase.re`).
#[allow(clippy::too_many_arguments)]
pub(crate) fn apply_table_f64_batch(
    amps: &mut [f64],
    lanes: usize,
    bits: &[usize],
    offs: &[usize],
    src: &[u8],
    phase: &[Complex64],
    diagonal: bool,
    unit: &[bool],
) {
    lane_dispatch!(
        lanes,
        apply_table_f64_batch_mono(amps, bits, offs, src, phase, diagonal, unit)
    );
}

#[allow(clippy::too_many_arguments)]
fn apply_table_f64_batch_mono<const L: usize>(
    amps: &mut [f64],
    bits: &[usize],
    offs: &[usize],
    src: &[u8],
    phase: &[Complex64],
    diagonal: bool,
    unit: &[bool],
) {
    let s = bits.len();
    let size = 1usize << s;
    debug_assert!(offs.len() == size && src.len() == size && phase.len() >= size * L);
    debug_assert!(unit.len() >= L);
    let dim = amps.len() / L;
    debug_assert!(dim.is_multiple_of(bits[s - 1] << 1));
    let n_orbits = dim >> s;
    let all_unit = unit[..L].iter().all(|&u| u);
    let any_unit = unit[..L].iter().any(|&u| u);
    BATCH_TABLE_SCRATCH_F64.with(|cell| {
        let mut buf = cell.borrow_mut();
        buf.resize(size * L, 0.0);
        for o in 0..n_orbits {
            let base = expand_orbit(o, bits);
            if diagonal {
                for (l, &off) in offs.iter().enumerate() {
                    let row = lane_row_mut::<L, _>(amps, (base + off) * L);
                    let ph = lane_row::<L, _>(phase, l * L);
                    for la in 0..L {
                        row[la] *= ph[la].re;
                    }
                }
                continue;
            }
            for l in 0..size {
                let srow = lane_row::<L, _>(amps, (base + offs[src[l] as usize]) * L);
                let dst = lane_row_mut::<L, _>(&mut buf, l * L);
                if all_unit {
                    dst.copy_from_slice(srow);
                } else if !any_unit {
                    let ph = lane_row::<L, _>(phase, l * L);
                    for la in 0..L {
                        dst[la] = ph[la].re * srow[la];
                    }
                } else {
                    let ph = lane_row::<L, _>(phase, l * L);
                    for la in 0..L {
                        dst[la] = if unit[la] {
                            srow[la]
                        } else {
                            ph[la].re * srow[la]
                        };
                    }
                }
            }
            for l in 0..size {
                amps[(base + offs[l]) * L..][..L].copy_from_slice(&buf[l * L..][..L]);
            }
        }
    });
}

/// Batched twin of [`apply_table_contig_f64`]. Takes the state as a `Vec`
/// because the non-diagonal path gathers into a same-size scratch and
/// buffer-swaps instead of the scalar kernel's copy-then-permute-in-place —
/// half the memory traffic, identical values in identical slots.
pub(crate) fn apply_table_contig_f64_batch(
    amps: &mut Vec<f64>,
    lanes: usize,
    shift: usize,
    src: &[u8],
    phase: &[Complex64],
    diagonal: bool,
    unit: &[bool],
) {
    lane_dispatch!(
        lanes,
        apply_table_contig_f64_batch_mono(amps, shift, src, phase, diagonal, unit)
    );
}

fn apply_table_contig_f64_batch_mono<const L: usize>(
    amps: &mut Vec<f64>,
    shift: usize,
    src: &[u8],
    phase: &[Complex64],
    diagonal: bool,
    unit: &[bool],
) {
    let size = src.len();
    let region = size << shift;
    debug_assert!(phase.len() >= size * L && unit.len() >= L);
    debug_assert!((amps.len() / L).is_multiple_of(region));
    let blk_len = (1usize << shift) * L;
    if diagonal {
        for chunk in amps.chunks_exact_mut(region * L) {
            for (l, blk) in chunk.chunks_exact_mut(blk_len).enumerate() {
                let ph = lane_row::<L, _>(phase, l * L);
                for row in blk.chunks_exact_mut(L) {
                    let row: &mut [f64; L] = row.try_into().expect("lane row");
                    for la in 0..L {
                        row[la] *= ph[la].re;
                    }
                }
            }
        }
        return;
    }
    let all_unit = unit[..L].iter().all(|&u| u);
    let any_unit = unit[..L].iter().any(|&u| u);
    BATCH_TABLE_SCRATCH_F64.with(|cell| {
        let mut scratch = cell.borrow_mut();
        // Steady state (same width as the last call) skips the zero-fill;
        // every element below is overwritten before the swap.
        scratch.resize(amps.len(), 0.0);
        if shift == 0 {
            // Each block is exactly one lane row, so the gather is a
            // permutation of `[f64; L]` array rows. The const-size copy
            // compiles to straight vector moves, where the generic path
            // below pays a runtime-length `memmove` per row.
            let (dst_rows, _) = scratch.as_chunks_mut::<L>();
            let (src_rows, _) = amps.as_chunks::<L>();
            for (chunk, prev) in dst_rows
                .chunks_exact_mut(size)
                .zip(src_rows.chunks_exact(size))
            {
                for (l, drow) in chunk.iter_mut().enumerate() {
                    let srow = &prev[src[l] as usize];
                    if all_unit {
                        *drow = *srow;
                        continue;
                    }
                    let ph = lane_row::<L, _>(phase, l * L);
                    for la in 0..L {
                        drow[la] = if any_unit && unit[la] {
                            srow[la]
                        } else {
                            ph[la].re * srow[la]
                        };
                    }
                }
            }
            core::mem::swap(&mut *scratch, amps);
            return;
        }
        for (chunk, prev) in scratch
            .chunks_exact_mut(region * L)
            .zip(amps.chunks_exact(region * L))
        {
            for (l, blk) in chunk.chunks_exact_mut(blk_len).enumerate() {
                let sblk = &prev[(src[l] as usize) * blk_len..][..blk_len];
                if all_unit {
                    blk.copy_from_slice(sblk);
                    continue;
                }
                let ph = lane_row::<L, _>(phase, l * L);
                if !any_unit {
                    for (drow, srow) in blk.chunks_exact_mut(L).zip(sblk.chunks_exact(L)) {
                        let drow: &mut [f64; L] = drow.try_into().expect("lane row");
                        let srow: &[f64; L] = srow.try_into().expect("lane row");
                        for la in 0..L {
                            drow[la] = ph[la].re * srow[la];
                        }
                    }
                } else {
                    for (drow, srow) in blk.chunks_exact_mut(L).zip(sblk.chunks_exact(L)) {
                        let drow: &mut [f64; L] = drow.try_into().expect("lane row");
                        let srow: &[f64; L] = srow.try_into().expect("lane row");
                        for la in 0..L {
                            drow[la] = if unit[la] {
                                srow[la]
                            } else {
                                ph[la].re * srow[la]
                            };
                        }
                    }
                }
            }
        }
        core::mem::swap(&mut *scratch, amps);
    });
}

/// Writes `|amp|^2` for one amplitude block into `out` (chunked map the
/// autovectorizer turns into packed multiplies).
pub(crate) fn write_probabilities(amps: &[Complex64], out: &mut [f64]) {
    debug_assert_eq!(amps.len(), out.len());
    for (p, a) in out.iter_mut().zip(amps.iter()) {
        *p = a.re * a.re + a.im * a.im;
    }
}

/// Fills `cdf` with the running prefix sum of `|amp|^2` and returns the
/// total. The squared norms are computed block-by-block through
/// [`write_probabilities`]; the prefix accumulation itself adds them in
/// index order, so the CDF is bit-identical to the historical
/// one-amplitude-at-a-time loop.
pub(crate) fn cdf_fill(amps: &[Complex64], cdf: &mut Vec<f64>) -> f64 {
    cdf.clear();
    cdf.reserve(amps.len());
    let mut block = [0.0f64; 256];
    let mut acc = 0.0f64;
    for chunk in amps.chunks(block.len()) {
        let probs = &mut block[..chunk.len()];
        write_probabilities(chunk, probs);
        for &p in probs.iter() {
            acc += p;
            cdf.push(acc);
        }
    }
    acc
}

/// Sum of `|amp|^2` over one block (same add order as the historical
/// straight loop within the block).
pub(crate) fn norm_sqr_block(amps: &[Complex64]) -> f64 {
    let mut acc = 0.0f64;
    for a in amps {
        acc += a.re * a.re + a.im * a.im;
    }
    acc
}

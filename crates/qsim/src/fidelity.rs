//! Distribution-level fidelity measures.
//!
//! The paper's circuit-level study (Fig. 4) quotes "circuit fidelity" for
//! batches of repeated circuits; we follow the common practice of computing
//! the Hellinger fidelity between the measured outcome distribution and the
//! ideal (noise-free) distribution.

use crate::counts::Counts;

/// Hellinger fidelity between two probability distributions:
/// `F = (sum_i sqrt(p_i q_i))^2`.
///
/// Inputs need not be perfectly normalized; they are renormalized defensively.
/// Returns 1 for identical distributions and 0 for disjoint support.
///
/// # Panics
///
/// Panics if lengths differ or any entry is negative.
///
/// # Examples
///
/// ```
/// use qismet_qsim::hellinger_fidelity;
/// let p = [0.5, 0.5];
/// let q = [0.5, 0.5];
/// assert!((hellinger_fidelity(&p, &q) - 1.0).abs() < 1e-12);
/// ```
pub fn hellinger_fidelity(p: &[f64], q: &[f64]) -> f64 {
    assert_eq!(p.len(), q.len(), "distribution lengths must match");
    assert!(
        p.iter().chain(q.iter()).all(|&x| x >= 0.0),
        "probabilities must be non-negative"
    );
    let sp: f64 = p.iter().sum();
    let sq: f64 = q.iter().sum();
    if sp <= 0.0 || sq <= 0.0 {
        return 0.0;
    }
    let bc: f64 = p
        .iter()
        .zip(q.iter())
        .map(|(&a, &b)| ((a / sp) * (b / sq)).sqrt())
        .sum();
    (bc * bc).clamp(0.0, 1.0)
}

/// Total variation distance `0.5 * sum |p_i - q_i|` after renormalization.
///
/// # Panics
///
/// Panics if lengths differ or any entry is negative.
pub fn total_variation_distance(p: &[f64], q: &[f64]) -> f64 {
    assert_eq!(p.len(), q.len(), "distribution lengths must match");
    assert!(
        p.iter().chain(q.iter()).all(|&x| x >= 0.0),
        "probabilities must be non-negative"
    );
    let sp: f64 = p.iter().sum::<f64>().max(f64::MIN_POSITIVE);
    let sq: f64 = q.iter().sum::<f64>().max(f64::MIN_POSITIVE);
    0.5 * p
        .iter()
        .zip(q.iter())
        .map(|(&a, &b)| (a / sp - b / sq).abs())
        .sum::<f64>()
}

/// Hellinger fidelity between a measured histogram and an ideal distribution.
///
/// # Panics
///
/// Panics if the ideal distribution length is not `2^counts.n_qubits()`.
pub fn counts_fidelity(counts: &Counts, ideal: &[f64]) -> f64 {
    assert_eq!(
        ideal.len(),
        1usize << counts.n_qubits(),
        "ideal distribution must cover the full outcome space"
    );
    hellinger_fidelity(&counts.to_distribution(), ideal)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_distributions_have_unit_fidelity() {
        let p = [0.25, 0.25, 0.25, 0.25];
        assert!((hellinger_fidelity(&p, &p) - 1.0).abs() < 1e-12);
        assert_eq!(total_variation_distance(&p, &p), 0.0);
    }

    #[test]
    fn disjoint_support_gives_zero() {
        let p = [1.0, 0.0];
        let q = [0.0, 1.0];
        assert_eq!(hellinger_fidelity(&p, &q), 0.0);
        assert_eq!(total_variation_distance(&p, &q), 1.0);
    }

    #[test]
    fn renormalization_is_applied() {
        let p = [2.0, 2.0];
        let q = [0.5, 0.5];
        assert!((hellinger_fidelity(&p, &q) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn known_intermediate_value() {
        let p = [0.5, 0.5];
        let q = [0.9, 0.1];
        // BC = sqrt(0.45) + sqrt(0.05).
        let bc = 0.45f64.sqrt() + 0.05f64.sqrt();
        assert!((hellinger_fidelity(&p, &q) - bc * bc).abs() < 1e-12);
    }

    #[test]
    fn counts_fidelity_of_perfect_bell() {
        let counts = Counts::from_pairs(2, [(0, 500), (3, 500)]);
        let ideal = [0.5, 0.0, 0.0, 0.5];
        assert!((counts_fidelity(&counts, &ideal) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn counts_fidelity_degrades_with_errors() {
        let counts = Counts::from_pairs(2, [(0, 400), (3, 400), (1, 100), (2, 100)]);
        let ideal = [0.5, 0.0, 0.0, 0.5];
        let f = counts_fidelity(&counts, &ideal);
        assert!(f < 1.0 && f > 0.5, "f = {f}");
    }

    #[test]
    #[should_panic(expected = "lengths must match")]
    fn length_mismatch_panics() {
        hellinger_fidelity(&[1.0], &[0.5, 0.5]);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_probability_panics() {
        hellinger_fidelity(&[1.0, -0.1], &[0.5, 0.5]);
    }

    #[test]
    fn tvd_bounds_fidelity() {
        // Fuchs-van de Graaf style sanity: 1 - F <= TVD for classical dists.
        let p = [0.7, 0.2, 0.1];
        let q = [0.4, 0.4, 0.2];
        let f = hellinger_fidelity(&p, &q);
        let tvd = total_variation_distance(&p, &q);
        assert!(1.0 - f <= tvd + 1e-12);
    }
}

//! Gate set for the simulators.
//!
//! The set covers what the QISMET workloads need: the Clifford+T staples, the
//! parameterized rotations used by the `EfficientSU2` / `RealAmplitudes`
//! ansatz families, and the two-qubit entanglers (`CX`, `CZ`, `SWAP`).

use qismet_mathkit::{CMatrix, Complex64};
use std::fmt;

/// A gate parameter: either a concrete angle or a symbolic slot to be bound
/// later (the `theta[k]` of a variational ansatz).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Param {
    /// Concrete angle in radians.
    Fixed(f64),
    /// Free parameter identified by its index into a parameter vector.
    Free(usize),
}

impl Param {
    /// The concrete value, if bound.
    pub fn value(self) -> Option<f64> {
        match self {
            Param::Fixed(v) => Some(v),
            Param::Free(_) => None,
        }
    }

    /// Binds against a parameter vector: free slots index into `values`.
    ///
    /// # Panics
    ///
    /// Panics if a free index is out of bounds.
    pub fn bind(self, values: &[f64]) -> Param {
        match self {
            Param::Fixed(v) => Param::Fixed(v),
            Param::Free(k) => Param::Fixed(values[k]),
        }
    }
}

impl From<f64> for Param {
    fn from(v: f64) -> Self {
        Param::Fixed(v)
    }
}

/// The gate alphabet.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Gate {
    /// Hadamard.
    H,
    /// Pauli-X.
    X,
    /// Pauli-Y.
    Y,
    /// Pauli-Z.
    Z,
    /// Phase gate `S = diag(1, i)`.
    S,
    /// Inverse phase gate.
    Sdg,
    /// T gate `diag(1, exp(i pi / 4))`.
    T,
    /// Inverse T gate.
    Tdg,
    /// Square root of X.
    Sx,
    /// Rotation about X by the parameter angle.
    Rx(Param),
    /// Rotation about Y by the parameter angle.
    Ry(Param),
    /// Rotation about Z by the parameter angle.
    Rz(Param),
    /// Phase rotation `diag(1, exp(i theta))`.
    Phase(Param),
    /// Controlled-X (CNOT). Two-qubit.
    Cx,
    /// Controlled-Z. Two-qubit.
    Cz,
    /// SWAP. Two-qubit.
    Swap,
    /// Two-qubit ZZ interaction `exp(-i theta/2 Z(x)Z)`.
    Rzz(Param),
}

impl Gate {
    /// Number of qubits the gate acts on (1 or 2).
    pub fn arity(self) -> usize {
        match self {
            Gate::Cx | Gate::Cz | Gate::Swap | Gate::Rzz(_) => 2,
            _ => 1,
        }
    }

    /// `true` for gates that carry a parameter slot.
    pub fn is_parameterized(self) -> bool {
        matches!(
            self,
            Gate::Rx(_) | Gate::Ry(_) | Gate::Rz(_) | Gate::Phase(_) | Gate::Rzz(_)
        )
    }

    /// The parameter, if this gate kind has one.
    pub fn param(self) -> Option<Param> {
        match self {
            Gate::Rx(p) | Gate::Ry(p) | Gate::Rz(p) | Gate::Phase(p) | Gate::Rzz(p) => Some(p),
            _ => None,
        }
    }

    /// Rebuilds the gate with all free parameters bound from `values`.
    ///
    /// # Panics
    ///
    /// Panics if a free index is out of bounds.
    pub fn bind(self, values: &[f64]) -> Gate {
        match self {
            Gate::Rx(p) => Gate::Rx(p.bind(values)),
            Gate::Ry(p) => Gate::Ry(p.bind(values)),
            Gate::Rz(p) => Gate::Rz(p.bind(values)),
            Gate::Phase(p) => Gate::Phase(p.bind(values)),
            Gate::Rzz(p) => Gate::Rzz(p.bind(values)),
            g => g,
        }
    }

    /// The unitary matrix (2x2 for one-qubit, 4x4 for two-qubit gates).
    ///
    /// Two-qubit matrices are indexed with the convention that the gate's
    /// first operand qubit is the **least significant** bit of the 4-dim
    /// basis index: `idx = bit(q0) | (bit(q1) << 1)`.
    ///
    /// # Errors
    ///
    /// Returns [`GateError::UnboundParameter`] if the gate still carries a
    /// free (symbolic) parameter.
    pub fn matrix(self) -> Result<CMatrix, GateError> {
        use Complex64 as C;
        let o = C::ZERO;
        let l = C::ONE;
        let i = C::I;
        let f = std::f64::consts::FRAC_1_SQRT_2;
        let m = |rows: &[&[C]]| CMatrix::from_rows(rows);
        let angle = |p: Param| p.value().ok_or(GateError::UnboundParameter);
        Ok(match self {
            Gate::H => m(&[
                &[C::from_re(f), C::from_re(f)],
                &[C::from_re(f), C::from_re(-f)],
            ]),
            Gate::X => m(&[&[o, l], &[l, o]]),
            Gate::Y => m(&[&[o, -i], &[i, o]]),
            Gate::Z => m(&[&[l, o], &[o, -l]]),
            Gate::S => m(&[&[l, o], &[o, i]]),
            Gate::Sdg => m(&[&[l, o], &[o, -i]]),
            Gate::T => m(&[&[l, o], &[o, C::cis(std::f64::consts::FRAC_PI_4)]]),
            Gate::Tdg => m(&[&[l, o], &[o, C::cis(-std::f64::consts::FRAC_PI_4)]]),
            Gate::Sx => {
                let a = C::new(0.5, 0.5);
                let b = C::new(0.5, -0.5);
                m(&[&[a, b], &[b, a]])
            }
            Gate::Rx(p) => {
                let t = angle(p)? / 2.0;
                let (s, c) = t.sin_cos();
                m(&[
                    &[C::from_re(c), C::new(0.0, -s)],
                    &[C::new(0.0, -s), C::from_re(c)],
                ])
            }
            Gate::Ry(p) => {
                let t = angle(p)? / 2.0;
                let (s, c) = t.sin_cos();
                m(&[
                    &[C::from_re(c), C::from_re(-s)],
                    &[C::from_re(s), C::from_re(c)],
                ])
            }
            Gate::Rz(p) => {
                let t = angle(p)? / 2.0;
                m(&[&[C::cis(-t), o], &[o, C::cis(t)]])
            }
            Gate::Phase(p) => {
                let t = angle(p)?;
                m(&[&[l, o], &[o, C::cis(t)]])
            }
            // Two-qubit gates: operand 0 is the LSB of the 4-dim index.
            // CX: control = operand 0, target = operand 1.
            Gate::Cx => m(&[&[l, o, o, o], &[o, o, o, l], &[o, o, l, o], &[o, l, o, o]]),
            Gate::Cz => m(&[&[l, o, o, o], &[o, l, o, o], &[o, o, l, o], &[o, o, o, -l]]),
            Gate::Swap => m(&[&[l, o, o, o], &[o, o, l, o], &[o, l, o, o], &[o, o, o, l]]),
            Gate::Rzz(p) => {
                let t = angle(p)? / 2.0;
                let e_neg = C::cis(-t);
                let e_pos = C::cis(t);
                m(&[
                    &[e_neg, o, o, o],
                    &[o, e_pos, o, o],
                    &[o, o, e_pos, o],
                    &[o, o, o, e_neg],
                ])
            }
        })
    }

    /// Lower-case mnemonic matching common assembly conventions.
    pub fn name(self) -> &'static str {
        match self {
            Gate::H => "h",
            Gate::X => "x",
            Gate::Y => "y",
            Gate::Z => "z",
            Gate::S => "s",
            Gate::Sdg => "sdg",
            Gate::T => "t",
            Gate::Tdg => "tdg",
            Gate::Sx => "sx",
            Gate::Rx(_) => "rx",
            Gate::Ry(_) => "ry",
            Gate::Rz(_) => "rz",
            Gate::Phase(_) => "p",
            Gate::Cx => "cx",
            Gate::Cz => "cz",
            Gate::Swap => "swap",
            Gate::Rzz(_) => "rzz",
        }
    }
}

impl fmt::Display for Gate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.param() {
            Some(Param::Fixed(v)) => write!(f, "{}({v:.6})", self.name()),
            Some(Param::Free(k)) => write!(f, "{}(theta[{k}])", self.name()),
            None => write!(f, "{}", self.name()),
        }
    }
}

/// Errors produced when working with gates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GateError {
    /// The gate carries an unbound symbolic parameter.
    UnboundParameter,
}

impl fmt::Display for GateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GateError::UnboundParameter => write!(f, "gate parameter is unbound"),
        }
    }
}

impl std::error::Error for GateError {}

#[cfg(test)]
mod tests {
    use super::*;

    const ALL_FIXED: &[Gate] = &[
        Gate::H,
        Gate::X,
        Gate::Y,
        Gate::Z,
        Gate::S,
        Gate::Sdg,
        Gate::T,
        Gate::Tdg,
        Gate::Sx,
        Gate::Cx,
        Gate::Cz,
        Gate::Swap,
    ];

    #[test]
    fn all_gates_are_unitary() {
        for &g in ALL_FIXED {
            assert!(g.matrix().unwrap().is_unitary(1e-12), "{g} not unitary");
        }
        for theta in [-1.3, 0.0, 0.7, 3.1] {
            for g in [
                Gate::Rx(theta.into()),
                Gate::Ry(theta.into()),
                Gate::Rz(theta.into()),
                Gate::Phase(theta.into()),
                Gate::Rzz(theta.into()),
            ] {
                assert!(g.matrix().unwrap().is_unitary(1e-12), "{g} not unitary");
            }
        }
    }

    #[test]
    fn arity_split() {
        for &g in ALL_FIXED {
            let expect = matches!(g, Gate::Cx | Gate::Cz | Gate::Swap);
            assert_eq!(g.arity() == 2, expect);
        }
        assert_eq!(Gate::Rzz(Param::Fixed(0.1)).arity(), 2);
    }

    #[test]
    fn sx_squares_to_x() {
        let sx = Gate::Sx.matrix().unwrap();
        let x = Gate::X.matrix().unwrap();
        assert!((&sx * &sx).approx_eq(&x, 1e-12));
    }

    #[test]
    fn s_squares_to_z() {
        let s = Gate::S.matrix().unwrap();
        let z = Gate::Z.matrix().unwrap();
        assert!((&s * &s).approx_eq(&z, 1e-12));
    }

    #[test]
    fn t_fourth_power_is_z() {
        let t = Gate::T.matrix().unwrap();
        let z = Gate::Z.matrix().unwrap();
        let t2 = &t * &t;
        assert!((&t2 * &t2).approx_eq(&z, 1e-12));
    }

    #[test]
    fn rotation_at_pi_matches_pauli_up_to_phase() {
        // RX(pi) = -i X.
        let rx = Gate::Rx(std::f64::consts::PI.into()).matrix().unwrap();
        let x = Gate::X
            .matrix()
            .unwrap()
            .scaled_c(Complex64::new(0.0, -1.0));
        assert!(rx.approx_eq(&x, 1e-12));
    }

    #[test]
    fn ry_rotates_zero_to_plus() {
        let ry = Gate::Ry(std::f64::consts::FRAC_PI_2.into())
            .matrix()
            .unwrap();
        let v = ry.matvec(&[Complex64::ONE, Complex64::ZERO]);
        let f = std::f64::consts::FRAC_1_SQRT_2;
        assert!(v[0].approx_eq(Complex64::from_re(f), 1e-12));
        assert!(v[1].approx_eq(Complex64::from_re(f), 1e-12));
    }

    #[test]
    fn cx_permutes_control_set_states() {
        let cx = Gate::Cx.matrix().unwrap();
        // |control=1, target=0> = index 1 -> |11> = index 3.
        let mut v = vec![Complex64::ZERO; 4];
        v[1] = Complex64::ONE;
        let out = cx.matvec(&v);
        assert!(out[3].approx_eq(Complex64::ONE, 1e-15));
        // |control=0, target=1> = index 2 stays.
        let mut v = vec![Complex64::ZERO; 4];
        v[2] = Complex64::ONE;
        let out = cx.matvec(&v);
        assert!(out[2].approx_eq(Complex64::ONE, 1e-15));
    }

    #[test]
    fn unbound_parameter_is_an_error() {
        let g = Gate::Ry(Param::Free(3));
        assert_eq!(g.matrix().unwrap_err(), GateError::UnboundParameter);
        let bound = g.bind(&[0.0, 0.0, 0.0, 1.25]);
        assert_eq!(bound.param().unwrap().value(), Some(1.25));
        assert!(bound.matrix().is_ok());
    }

    #[test]
    fn display_forms() {
        assert_eq!(Gate::H.to_string(), "h");
        assert_eq!(Gate::Ry(Param::Free(2)).to_string(), "ry(theta[2])");
        assert!(Gate::Rz(Param::Fixed(0.5))
            .to_string()
            .starts_with("rz(0.5"));
    }

    #[test]
    fn rzz_diagonal_phases() {
        let theta = 0.8;
        let m = Gate::Rzz(theta.into()).matrix().unwrap();
        // |00> and |11> pick up exp(-i theta/2); |01>, |10> exp(+i theta/2).
        assert!(m.at(0, 0).approx_eq(Complex64::cis(-theta / 2.0), 1e-12));
        assert!(m.at(3, 3).approx_eq(Complex64::cis(-theta / 2.0), 1e-12));
        assert!(m.at(1, 1).approx_eq(Complex64::cis(theta / 2.0), 1e-12));
    }
}

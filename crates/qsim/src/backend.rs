//! The pluggable circuit-execution layer.
//!
//! Everything above this crate evaluates circuits through the [`Backend`]
//! trait instead of constructing simulators directly, which gives the
//! workspace one seam for every execution strategy: the straightforward
//! statevector path, the buffer-reusing cached path, multi-threaded batch
//! fan-out (the `parallel` feature), and — in future PRs — sharded or
//! remote executors. QISMET's job structure (paper Fig. 7) maps naturally
//! onto [`Backend::evaluate_batch`]: every circuit of one quantum job is
//! handed to the engine as a single batch.
//!
//! Both statevector backends execute through compiled plans
//! ([`crate::CompiledCircuit`] / [`crate::CompiledObservable`]): each keeps
//! a small plan cache keyed by circuit *structure*, so a tuning loop that
//! evaluates the same ansatz at thousands of angle points compiles once and
//! only rebinds thereafter. Callers that already hold a plan skip the cache
//! entirely via [`Backend::evaluate_plan`], the allocation-free hot path.
//!
//! # Examples
//!
//! ```
//! use qismet_qsim::{Backend, CachedStatevectorBackend, Circuit, PauliSum};
//!
//! let h = PauliSum::from_labels(&[(-1.0, "ZZ"), (-0.5, "XI")]).unwrap();
//! let mut c = Circuit::new(2);
//! c.ry(0.3, 0).ry(0.7, 1).cx(0, 1);
//! let mut backend = CachedStatevectorBackend::new();
//! let single = backend.evaluate(&c, &h).unwrap();
//! let batch = backend.evaluate_batch(std::slice::from_ref(&c), &h).unwrap();
//! assert_eq!(single.to_bits(), batch[0].to_bits());
//! ```

use crate::batch::{BatchStateVector, BatchedCircuit, LANE_BATCH_MAX_QUBITS, MAX_LANES};
use crate::circuit::Circuit;
use crate::compile::{CompiledCircuit, CompiledObservable};
use crate::gate::GateError;
use crate::pauli::PauliSum;
use crate::statevector::StateVector;
use std::collections::HashMap;
use std::fmt;
use std::sync::{Arc, Mutex};

/// A circuit-execution engine producing expectation values.
///
/// Implementations take `&mut self` so they can reuse scratch buffers
/// across evaluations; they must nevertheless be *stateless with respect to
/// results* — the value returned for a `(circuit, observable)` pair may not
/// depend on prior calls. That invariant is what lets callers batch freely:
/// [`Backend::evaluate_batch`] must agree bit-for-bit with a loop of
/// [`Backend::evaluate`] calls, and pooled/shared backends must agree with
/// fresh ones.
pub trait Backend: Send {
    /// Evaluates `<0| C† H C |0>` for a bound circuit.
    ///
    /// # Errors
    ///
    /// [`GateError::UnboundParameter`] if the circuit has free parameters.
    fn evaluate(&mut self, circuit: &Circuit, observable: &PauliSum) -> Result<f64, GateError>;

    /// Evaluates a batch of circuits against one observable, in order.
    ///
    /// The default implementation loops over [`Backend::evaluate`];
    /// implementations may override it to amortize setup or fan out across
    /// threads, but the results must stay bitwise identical to the loop.
    ///
    /// # Errors
    ///
    /// The first [`GateError`] encountered, if any circuit is unbound.
    fn evaluate_batch(
        &mut self,
        circuits: &[Circuit],
        observable: &PauliSum,
    ) -> Result<Vec<f64>, GateError> {
        circuits
            .iter()
            .map(|c| self.evaluate(c, observable))
            .collect()
    }

    /// Evaluates a pre-compiled plan at one parameter point: the plan is
    /// rebound in place to `params` and executed against the compiled
    /// observable. This is the hot path — no `Circuit` is bound, no gate
    /// matrices are heap-allocated, no per-term state sweeps run; with a
    /// scratch-reusing implementation ([`CachedStatevectorBackend`],
    /// [`SharedBackend`]) it performs no allocation at all. The default
    /// implementation still allocates one fresh state per call.
    ///
    /// Results must be bitwise identical across implementations for the
    /// same plan and parameters (plan execution is deterministic).
    ///
    /// # Errors
    ///
    /// [`GateError::UnboundParameter`] if `params` is shorter than the
    /// plan's parameter count.
    fn evaluate_plan(
        &mut self,
        plan: &mut CompiledCircuit,
        params: &[f64],
        observable: &CompiledObservable,
    ) -> Result<f64, GateError> {
        plan.rebind(params)?;
        let mut sv = StateVector::new(plan.n_qubits());
        plan.run_expectation(&mut sv, observable)
    }

    /// Evaluates a plan at many parameter points, in order. The plan's
    /// residual binding after the call is unspecified. Results are bitwise
    /// identical to a loop of [`Backend::evaluate_plan`] calls.
    ///
    /// # Errors
    ///
    /// The first [`GateError`] encountered.
    fn evaluate_plan_batch(
        &mut self,
        plan: &mut CompiledCircuit,
        points: &[Vec<f64>],
        observable: &CompiledObservable,
    ) -> Result<Vec<f64>, GateError> {
        points
            .iter()
            .map(|p| self.evaluate_plan(plan, p, observable))
            .collect()
    }

    /// Clones into an owned trait object (lets objective structs stay
    /// `Clone` while holding a boxed backend).
    fn clone_box(&self) -> Box<dyn Backend>;

    /// Short engine name for reports and `Debug` output.
    fn name(&self) -> &'static str;
}

impl Clone for Box<dyn Backend> {
    fn clone(&self) -> Self {
        self.clone_box()
    }
}

impl fmt::Debug for dyn Backend {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Backend({})", self.name())
    }
}

/// Plans and compiled observables retained per backend. Small and scanned
/// linearly: a campaign touches one or two circuit structures and one
/// Hamiltonian, so the match test (an angle-blind structural compare, no
/// allocation) is trivial next to a `2^n` state sweep.
const PLAN_CACHE_CAP: usize = 8;

/// The compile-once, rebind-forever cache both statevector backends share:
/// template plans keyed by circuit structure, compiled observables keyed by
/// the source Hamiltonian, and a reused angle-extraction buffer.
#[derive(Debug, Clone, Default)]
struct PlanCache {
    plans: Vec<CompiledCircuit>,
    observables: Vec<(PauliSum, CompiledObservable)>,
    angles: Vec<f64>,
}

impl PlanCache {
    /// Index of a template plan matching `circuit`'s structure, compiled on
    /// first sight and rebound to the circuit's concrete angles.
    fn plan_for(&mut self, circuit: &Circuit) -> Result<usize, GateError> {
        // Extract angles first so unbound circuits error before any caching.
        CompiledCircuit::extract_angles(circuit, &mut self.angles)?;
        let idx = match self.plans.iter().position(|p| p.matches_structure(circuit)) {
            Some(i) => {
                qismet_telemetry::counter!("qsim.plan_cache.hits").inc();
                i
            }
            None => {
                // The miss is booked by the compile itself (see
                // `CompiledCircuit::lower`), keeping one taxonomy: a hit is
                // a compiled plan reused, a miss is a plan built.
                if self.plans.len() >= PLAN_CACHE_CAP {
                    self.plans.remove(0);
                }
                self.plans.push(CompiledCircuit::compile_template(circuit));
                self.plans.len() - 1
            }
        };
        self.plans[idx].rebind(&self.angles)?;
        Ok(idx)
    }

    /// Index of the compiled observable for `h`, compiling on first sight.
    fn observable_for(&mut self, h: &PauliSum) -> usize {
        match self.observables.iter().position(|(k, _)| k == h) {
            Some(i) => i,
            None => {
                if self.observables.len() >= PLAN_CACHE_CAP {
                    self.observables.remove(0);
                }
                self.observables
                    .push((h.clone(), CompiledObservable::compile(h)));
                self.observables.len() - 1
            }
        }
    }
}

/// The reference backend: a fresh [`StateVector`] per evaluation (no scratch
/// reuse), executing through the same compiled plans as the cached path so
/// the two agree bit for bit.
///
/// Exists as the semantics baseline; prefer [`CachedStatevectorBackend`] in
/// loops.
#[derive(Debug, Clone, Default)]
pub struct StatevectorBackend {
    cache: PlanCache,
}

impl StatevectorBackend {
    /// Creates the backend.
    pub fn new() -> Self {
        StatevectorBackend::default()
    }
}

impl Backend for StatevectorBackend {
    fn evaluate(&mut self, circuit: &Circuit, observable: &PauliSum) -> Result<f64, GateError> {
        let p = self.cache.plan_for(circuit)?;
        let o = self.cache.observable_for(observable);
        let mut sv = StateVector::new(circuit.n_qubits());
        self.cache.plans[p].run_expectation(&mut sv, &self.cache.observables[o].1)
    }

    #[cfg(feature = "parallel")]
    fn evaluate_batch(
        &mut self,
        circuits: &[Circuit],
        observable: &PauliSum,
    ) -> Result<Vec<f64>, GateError> {
        parallel_batch(circuits, observable, 1)
    }

    #[cfg(feature = "parallel")]
    fn evaluate_plan_batch(
        &mut self,
        plan: &mut CompiledCircuit,
        points: &[Vec<f64>],
        observable: &CompiledObservable,
    ) -> Result<Vec<f64>, GateError> {
        let mut batch = BatchScratch::default();
        parallel_plan_batch(plan, points, observable, &mut batch, 1)
    }

    #[cfg(not(feature = "parallel"))]
    fn evaluate_plan_batch(
        &mut self,
        plan: &mut CompiledCircuit,
        points: &[Vec<f64>],
        observable: &CompiledObservable,
    ) -> Result<Vec<f64>, GateError> {
        let mut scratch = None;
        let mut batch = BatchScratch::default();
        lane_batch_eval(plan, points, observable, &mut scratch, &mut batch, 1)
    }

    fn clone_box(&self) -> Box<dyn Backend> {
        Box::new(self.clone())
    }

    fn name(&self) -> &'static str {
        "statevector"
    }
}

/// The cached fast path: one scratch [`StateVector`] reused (reset in
/// place) across evaluations plus the shared plan cache, so a VQA tuning
/// loop performs zero amplitude allocations and zero recompilations after
/// the first call at a given width.
///
/// Plan execution is the exact kernel sequence of [`StatevectorBackend`],
/// so results agree bitwise with it.
#[derive(Debug, Clone, Default)]
pub struct CachedStatevectorBackend {
    scratch: Option<StateVector>,
    batch: BatchScratch,
    cache: PlanCache,
    inner_threads: usize,
}

impl CachedStatevectorBackend {
    /// Creates the backend; the scratch buffer is allocated lazily on the
    /// first evaluation.
    pub fn new() -> Self {
        CachedStatevectorBackend::default()
    }

    /// Creates the backend with in-state parallelism: each single
    /// evaluation's kernel sweeps are split across up to `inner_threads`
    /// scoped workers (`parallel` feature; `<= 1`, small states, or
    /// non-`parallel` builds run sequentially). Results are bitwise
    /// identical at any setting.
    pub fn with_inner_threads(inner_threads: usize) -> Self {
        CachedStatevectorBackend {
            inner_threads,
            ..CachedStatevectorBackend::default()
        }
    }

    /// The configured in-state thread fan-out (`0`/`1` = sequential).
    pub fn inner_threads(&self) -> usize {
        self.inner_threads
    }
}

/// Adds `times` executions of `plan`'s per-kernel-class op counts to the
/// `qsim.ops.*` counters. One relaxed load and early-out when telemetry is
/// off; when on, eight atomic adds per (batched) execution.
fn record_op_classes(plan: &CompiledCircuit, times: u64) {
    if !qismet_telemetry::enabled() {
        return;
    }
    let counts = plan.op_class_counts();
    qismet_telemetry::counter!("qsim.ops.one_q").add(counts[0] * times);
    qismet_telemetry::counter!("qsim.ops.one_q_real").add(counts[1] * times);
    qismet_telemetry::counter!("qsim.ops.cx").add(counts[2] * times);
    qismet_telemetry::counter!("qsim.ops.cz").add(counts[3] * times);
    qismet_telemetry::counter!("qsim.ops.swap").add(counts[4] * times);
    qismet_telemetry::counter!("qsim.ops.rzz").add(counts[5] * times);
    qismet_telemetry::counter!("qsim.ops.superop").add(counts[6] * times);
    qismet_telemetry::counter!("qsim.ops.table").add(counts[7] * times);
}

/// Runs a bound plan on the scratch state (reset by the plan run itself,
/// which lets real-amplitude plans take their `f64` fast path) and
/// evaluates the compiled observable, honoring the in-state thread fan-out.
/// The threaded and sequential paths are bitwise identical, so this only
/// selects a schedule.
fn execute(
    plan: &CompiledCircuit,
    observable: &CompiledObservable,
    scratch: &mut StateVector,
    inner_threads: usize,
) -> Result<f64, GateError> {
    record_op_classes(plan, 1);
    #[cfg(feature = "parallel")]
    if inner_threads > 1 {
        plan.run_threaded(scratch, inner_threads)?;
        return Ok(observable.expectation_threaded(scratch, inner_threads));
    }
    #[cfg(not(feature = "parallel"))]
    let _ = inner_threads;
    plan.run_expectation(scratch, observable)
}

/// The scratch state for `n_qubits`, reusing the buffer when the width
/// matches (no reset — [`execute`] runs plans through
/// [`CompiledCircuit::run`], which resets). A free function over the slot
/// (not a method) so callers can keep disjoint borrows of the backend's
/// plan cache alive.
fn scratch_for(slot: &mut Option<StateVector>, n_qubits: usize) -> &mut StateVector {
    match slot {
        Some(sv) if sv.n_qubits() == n_qubits => {}
        _ => *slot = Some(StateVector::new(n_qubits)),
    }
    slot.as_mut().expect("scratch populated above")
}

/// Cached lane-batch bindings and states, one slot per lane width (at most
/// the full- and half-width slots in practice): [`lane_batch_into`] rebinds
/// a cached [`BatchedCircuit`] in place across evaluation batches instead
/// of reallocating its per-lane storage per chunk, falling back to a fresh
/// bind when the plan structure changed (see [`BatchedCircuit::matches`]).
/// Purely a reuse cache — rebinding is bitwise identical to fresh binding.
#[derive(Debug, Clone, Default)]
struct BatchScratch {
    slots: Vec<(BatchedCircuit, BatchStateVector)>,
}

impl BatchScratch {
    /// The batched binding and state for `chunk`, rebound in place when the
    /// cached slot for this lane width still matches `plan`.
    fn bind<'a>(
        &'a mut self,
        plan: &mut CompiledCircuit,
        chunk: &[Vec<f64>],
    ) -> Result<(&'a BatchedCircuit, &'a mut BatchStateVector), GateError> {
        let lanes = chunk.len();
        let n = plan.n_qubits();
        let k = match self.slots.iter().position(|(bc, _)| bc.lanes() == lanes) {
            Some(k) => {
                let (bc, bsv) = &mut self.slots[k];
                if bc.matches(plan) {
                    qismet_telemetry::counter!("qsim.batch.rebinds").inc();
                    bc.rebind(plan, chunk)?;
                } else {
                    qismet_telemetry::counter!("qsim.batch.binds").inc();
                    *bc = BatchedCircuit::bind(plan, chunk)?;
                    if bsv.n_qubits() != n {
                        *bsv = BatchStateVector::new(n, lanes);
                    }
                }
                k
            }
            None => {
                qismet_telemetry::counter!("qsim.batch.binds").inc();
                let bc = BatchedCircuit::bind(plan, chunk)?;
                self.slots.push((bc, BatchStateVector::new(n, lanes)));
                self.slots.len() - 1
            }
        };
        let (bc, bsv) = &mut self.slots[k];
        Ok((&*bc, bsv))
    }
}

/// Evaluates a run of plan points through the lane-batched engine into
/// per-point result slots: greedy full-width ([`MAX_LANES`]) chunks, then
/// one half-width chunk, then a scalar remainder. Wide states (above
/// [`LANE_BATCH_MAX_QUBITS`], where the in-state schedule wins) and chunks
/// that fail to bind (preserving per-point error attribution) take the
/// scalar loop instead. Per-lane arithmetic is the exact scalar path, so
/// every grouping is bitwise identical to the sequential loop.
fn lane_batch_into(
    plan: &mut CompiledCircuit,
    points: &[Vec<f64>],
    observable: &CompiledObservable,
    scratch: &mut Option<StateVector>,
    batch: &mut BatchScratch,
    inner_threads: usize,
    out: &mut [Result<f64, GateError>],
) {
    debug_assert_eq!(points.len(), out.len());
    qismet_telemetry::counter!("qsim.batch.points").add(points.len() as u64);
    // Every batched point evaluates a plan compiled earlier: plan reuse.
    qismet_telemetry::counter!("qsim.plan_cache.hits").add(points.len() as u64);
    let n = plan.n_qubits();
    fn scalar(
        plan: &mut CompiledCircuit,
        point: &[f64],
        observable: &CompiledObservable,
        scratch: &mut Option<StateVector>,
        inner_threads: usize,
    ) -> Result<f64, GateError> {
        plan.rebind(point)?;
        let sv = scratch_for(scratch, plan.n_qubits());
        execute(plan, observable, sv, inner_threads)
    }
    let mut i = 0usize;
    while i < points.len() {
        let rem = points.len() - i;
        let lanes = if n > LANE_BATCH_MAX_QUBITS {
            1
        } else if rem >= MAX_LANES {
            MAX_LANES
        } else if rem >= MAX_LANES / 2 {
            MAX_LANES / 2
        } else {
            1
        };
        if lanes == 1 {
            qismet_telemetry::counter!("qsim.batch.chunks_lane1").inc();
            out[i] = scalar(plan, &points[i], observable, scratch, inner_threads);
            i += 1;
            continue;
        }
        if lanes == MAX_LANES {
            qismet_telemetry::counter!("qsim.batch.chunks_lane8").inc();
        } else {
            qismet_telemetry::counter!("qsim.batch.chunks_lane4").inc();
        }
        let chunk = &points[i..i + lanes];
        match batch.bind(plan, chunk) {
            Ok((batched, bsv)) => {
                record_op_classes(plan, lanes as u64);
                let mut vals = [0.0f64; MAX_LANES];
                batched.run_expectation_only(bsv, observable, &mut vals);
                for (slot, v) in out[i..i + lanes].iter_mut().zip(vals) {
                    *slot = Ok(v);
                }
            }
            Err(_) => {
                for (k, p) in chunk.iter().enumerate() {
                    out[i + k] = scalar(plan, p, observable, scratch, inner_threads);
                }
            }
        }
        i += lanes;
    }
}

/// Lane-batched [`Backend::evaluate_plan_batch`] body shared by both
/// statevector backends (and, under `parallel`, by each fan-out worker's
/// chunk): bitwise identical to the sequential per-point loop.
fn lane_batch_eval(
    plan: &mut CompiledCircuit,
    points: &[Vec<f64>],
    observable: &CompiledObservable,
    scratch: &mut Option<StateVector>,
    batch: &mut BatchScratch,
    inner_threads: usize,
) -> Result<Vec<f64>, GateError> {
    let mut out: Vec<Result<f64, GateError>> = vec![Ok(0.0); points.len()];
    lane_batch_into(
        plan,
        points,
        observable,
        scratch,
        batch,
        inner_threads,
        &mut out,
    );
    out.into_iter().collect()
}

impl Backend for CachedStatevectorBackend {
    fn evaluate(&mut self, circuit: &Circuit, observable: &PauliSum) -> Result<f64, GateError> {
        let p = self.cache.plan_for(circuit)?;
        let o = self.cache.observable_for(observable);
        let scratch = scratch_for(&mut self.scratch, circuit.n_qubits());
        execute(
            &self.cache.plans[p],
            &self.cache.observables[o].1,
            scratch,
            self.inner_threads,
        )
    }

    #[cfg(feature = "parallel")]
    fn evaluate_batch(
        &mut self,
        circuits: &[Circuit],
        observable: &PauliSum,
    ) -> Result<Vec<f64>, GateError> {
        parallel_batch(circuits, observable, self.inner_threads)
    }

    fn evaluate_plan(
        &mut self,
        plan: &mut CompiledCircuit,
        params: &[f64],
        observable: &CompiledObservable,
    ) -> Result<f64, GateError> {
        let _span = qismet_telemetry::span!("qsim.evaluate_plan");
        qismet_telemetry::counter!("qsim.plan_cache.hits").inc();
        plan.rebind(params)?;
        let scratch = scratch_for(&mut self.scratch, plan.n_qubits());
        execute(plan, observable, scratch, self.inner_threads)
    }

    #[cfg(feature = "parallel")]
    fn evaluate_plan_batch(
        &mut self,
        plan: &mut CompiledCircuit,
        points: &[Vec<f64>],
        observable: &CompiledObservable,
    ) -> Result<Vec<f64>, GateError> {
        parallel_plan_batch(
            plan,
            points,
            observable,
            &mut self.batch,
            self.inner_threads,
        )
    }

    #[cfg(not(feature = "parallel"))]
    fn evaluate_plan_batch(
        &mut self,
        plan: &mut CompiledCircuit,
        points: &[Vec<f64>],
        observable: &CompiledObservable,
    ) -> Result<Vec<f64>, GateError> {
        lane_batch_eval(
            plan,
            points,
            observable,
            &mut self.scratch,
            &mut self.batch,
            self.inner_threads,
        )
    }

    fn clone_box(&self) -> Box<dyn Backend> {
        Box::new(self.clone())
    }

    fn name(&self) -> &'static str {
        "cached-statevector"
    }
}

/// A handle to one backend shared behind a mutex: cloning the handle (and
/// [`Backend::clone_box`]) shares the underlying scratch state and plan
/// cache instead of duplicating them. This is what a worker-thread pool
/// hands to the objectives it hosts — every run on the worker reuses the
/// same amplitude buffer and compiled plans. Results are unaffected by the
/// sharing (the [`Backend`] contract: values never depend on prior calls).
#[derive(Debug, Clone, Default)]
pub struct SharedBackend {
    inner: Arc<Mutex<CachedStatevectorBackend>>,
}

impl SharedBackend {
    /// Creates a handle to a fresh cached backend.
    pub fn new() -> Self {
        SharedBackend::default()
    }

    /// Creates a handle to a cached backend configured with in-state
    /// parallelism (see [`CachedStatevectorBackend::with_inner_threads`]).
    pub fn with_inner_threads(inner_threads: usize) -> Self {
        SharedBackend {
            inner: Arc::new(Mutex::new(CachedStatevectorBackend::with_inner_threads(
                inner_threads,
            ))),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, CachedStatevectorBackend> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }
}

impl Backend for SharedBackend {
    fn evaluate(&mut self, circuit: &Circuit, observable: &PauliSum) -> Result<f64, GateError> {
        self.lock().evaluate(circuit, observable)
    }

    fn evaluate_batch(
        &mut self,
        circuits: &[Circuit],
        observable: &PauliSum,
    ) -> Result<Vec<f64>, GateError> {
        self.lock().evaluate_batch(circuits, observable)
    }

    fn evaluate_plan(
        &mut self,
        plan: &mut CompiledCircuit,
        params: &[f64],
        observable: &CompiledObservable,
    ) -> Result<f64, GateError> {
        self.lock().evaluate_plan(plan, params, observable)
    }

    fn evaluate_plan_batch(
        &mut self,
        plan: &mut CompiledCircuit,
        points: &[Vec<f64>],
        observable: &CompiledObservable,
    ) -> Result<Vec<f64>, GateError> {
        self.lock().evaluate_plan_batch(plan, points, observable)
    }

    fn clone_box(&self) -> Box<dyn Backend> {
        Box::new(self.clone())
    }

    fn name(&self) -> &'static str {
        "shared-cached-statevector"
    }
}

/// A pool of [`SharedBackend`]s keyed by qubit count, so alternating
/// workloads (4q and 6q runs in one campaign) each keep a stable scratch
/// buffer instead of thrashing a single slot. Campaign executors hold one
/// pool per worker thread (ROADMAP: "cross-run backend sharing").
#[derive(Debug, Clone, Default)]
pub struct BackendPool {
    slots: HashMap<usize, SharedBackend>,
    inner_threads: usize,
}

impl BackendPool {
    /// Creates an empty pool.
    pub fn new() -> Self {
        BackendPool::default()
    }

    /// Creates an empty pool whose backends use in-state parallelism (see
    /// [`CachedStatevectorBackend::with_inner_threads`]).
    pub fn with_inner_threads(inner_threads: usize) -> Self {
        BackendPool {
            inner_threads,
            ..BackendPool::default()
        }
    }

    /// The in-state thread fan-out newly created backends receive.
    pub fn inner_threads(&self) -> usize {
        self.inner_threads
    }

    /// A backend handle for `n_qubits`-wide circuits; all handles for one
    /// width share scratch state and plan cache.
    pub fn backend_for(&mut self, n_qubits: usize) -> Box<dyn Backend> {
        let inner_threads = self.inner_threads;
        Box::new(
            self.slots
                .entry(n_qubits)
                .or_insert_with(|| SharedBackend::with_inner_threads(inner_threads))
                .clone(),
        )
    }

    /// Number of distinct widths the pool currently serves.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// `true` when no backend has been requested yet.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }
}

/// Host thread count for batch fan-out, resolved once per process.
/// `std::thread::available_parallelism` re-reads cgroup limits on every
/// call on Linux (file opens + parsing, >10us inside a container) — far
/// more than a small lane-batched evaluation, so the per-call lookup was
/// dominating `evaluate_plan_batch` on small states.
#[cfg(feature = "parallel")]
fn host_parallelism() -> usize {
    static HOST: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *HOST.get_or_init(|| {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    })
}

/// Evaluates a batch across threads with `std::thread::scope`, one cached
/// scratch state per worker. Results are written back by index, so the
/// output order (and, since evaluations are independent, every bit of
/// every result) matches the sequential loop.
///
/// The vendored dependency set has no `rayon`; scoped threads give the
/// same fan-out with the standard library only.
#[cfg(feature = "parallel")]
fn parallel_batch(
    circuits: &[Circuit],
    observable: &PauliSum,
    inner_threads: usize,
) -> Result<Vec<f64>, GateError> {
    let workers = host_parallelism().min(circuits.len().max(1));
    if workers <= 1 || circuits.len() < 2 {
        let mut backend = CachedStatevectorBackend::with_inner_threads(inner_threads);
        return circuits
            .iter()
            .map(|c| backend.evaluate(c, observable))
            .collect();
    }
    let mut results: Vec<Result<f64, GateError>> = vec![Ok(0.0); circuits.len()];
    // Contiguous chunking: each worker owns one run of the result slice.
    let chunk = circuits.len().div_ceil(workers);
    std::thread::scope(|scope| {
        for (w, out) in results.chunks_mut(chunk).enumerate() {
            let start = w * chunk;
            scope.spawn(move || {
                let mut backend = CachedStatevectorBackend::with_inner_threads(inner_threads);
                for (i, slot) in out.iter_mut().enumerate() {
                    *slot = backend.evaluate(&circuits[start + i], observable);
                }
            });
        }
    });
    results.into_iter().collect()
}

/// Plan-batch fan-out: each worker clones the plan (one allocation per
/// worker per batch, not per point) and runs its contiguous chunk of
/// points through the lane-batched engine. Per-point arithmetic is
/// independent of the scratch, of binding order, and of lane grouping, so
/// results are bitwise identical to the sequential loop at any worker
/// count.
#[cfg(feature = "parallel")]
fn parallel_plan_batch(
    plan: &mut CompiledCircuit,
    points: &[Vec<f64>],
    observable: &CompiledObservable,
    batch: &mut BatchScratch,
    inner_threads: usize,
) -> Result<Vec<f64>, GateError> {
    let workers = host_parallelism().min(points.len().max(1));
    if workers <= 1 || points.len() < 2 {
        let mut scratch = None;
        return lane_batch_eval(plan, points, observable, &mut scratch, batch, inner_threads);
    }
    let mut results: Vec<Result<f64, GateError>> = vec![Ok(0.0); points.len()];
    let chunk = points.len().div_ceil(workers);
    let template: &CompiledCircuit = plan;
    std::thread::scope(|scope| {
        for (w, out) in results.chunks_mut(chunk).enumerate() {
            let start = w * chunk;
            scope.spawn(move || {
                let mut local = template.clone();
                let mut scratch = None;
                let mut local_batch = BatchScratch::default();
                lane_batch_into(
                    &mut local,
                    &points[start..start + out.len()],
                    observable,
                    &mut scratch,
                    &mut local_batch,
                    inner_threads,
                    out,
                );
            });
        }
    });
    results.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use qismet_mathkit::rng_from_seed;
    use rand::Rng;

    fn random_circuit(n: usize, seed: u64) -> Circuit {
        let mut rng = rng_from_seed(seed);
        let mut c = Circuit::new(n);
        for layer in 0..6 {
            for q in 0..n {
                c.ry(rng.gen::<f64>() * std::f64::consts::TAU, q);
                c.rz(rng.gen::<f64>() * std::f64::consts::TAU, q);
            }
            for q in 0..n - 1 {
                if (layer + q) % 2 == 0 {
                    c.cx(q, q + 1);
                }
            }
        }
        c
    }

    fn observable(n: usize) -> PauliSum {
        let labels: Vec<(f64, String)> = (0..n - 1)
            .map(|q| {
                let mut label = vec!['I'; n];
                label[q] = 'Z';
                label[q + 1] = 'Z';
                (-1.0, label.into_iter().collect::<String>())
            })
            .collect();
        let refs: Vec<(f64, &str)> = labels.iter().map(|(c, s)| (*c, s.as_str())).collect();
        PauliSum::from_labels(&refs).unwrap()
    }

    #[test]
    fn cached_matches_from_circuit_exactly() {
        let h = observable(5);
        let mut cached = CachedStatevectorBackend::new();
        for seed in 0..8 {
            let c = random_circuit(5, seed);
            let reference = StateVector::from_circuit(&c).unwrap().expectation(&h);
            let fast = cached.evaluate(&c, &h).unwrap();
            assert!(
                (reference - fast).abs() < 1e-12,
                "seed {seed}: reference {reference} vs cached {fast}"
            );
        }
    }

    #[test]
    fn cached_is_bitwise_identical_to_fresh() {
        // Same compiled-plan execution => same floating-point results,
        // not merely close ones.
        let h = observable(4);
        let mut cached = CachedStatevectorBackend::new();
        let mut fresh = StatevectorBackend::new();
        for seed in 10..18 {
            let c = random_circuit(4, seed);
            let a = fresh.evaluate(&c, &h).unwrap();
            let b = cached.evaluate(&c, &h).unwrap();
            assert_eq!(a.to_bits(), b.to_bits(), "seed {seed}");
        }
    }

    #[test]
    fn batch_agrees_bitwise_with_singles() {
        let h = observable(4);
        let circuits: Vec<Circuit> = (0..7).map(|s| random_circuit(4, 100 + s)).collect();
        for backend in [
            Box::new(StatevectorBackend::new()) as Box<dyn Backend>,
            Box::new(CachedStatevectorBackend::new()) as Box<dyn Backend>,
            Box::new(SharedBackend::new()) as Box<dyn Backend>,
        ] {
            let mut one_at_a_time = backend.clone();
            let singles: Vec<f64> = circuits
                .iter()
                .map(|c| one_at_a_time.evaluate(c, &h).unwrap())
                .collect();
            let mut batched = backend.clone();
            let batch = batched.evaluate_batch(&circuits, &h).unwrap();
            assert_eq!(batch.len(), singles.len());
            for (i, (a, b)) in singles.iter().zip(&batch).enumerate() {
                assert_eq!(
                    a.to_bits(),
                    b.to_bits(),
                    "{} circuit {i}: {a} vs {b}",
                    batched.name()
                );
            }
        }
    }

    #[test]
    fn plan_evaluation_matches_circuit_evaluation() {
        use crate::gate::Param;
        let h = observable(4);
        let obs = CompiledObservable::compile(&h);
        // A parameterized ansatz evaluated both ways at several points.
        let mut ansatz = Circuit::new(4);
        let mut k = 0usize;
        for _ in 0..3 {
            for q in 0..4 {
                ansatz.ry(Param::Free(k), q);
                k += 1;
            }
            for q in 0..3 {
                ansatz.cx(q, q + 1);
            }
        }
        let mut plan = CompiledCircuit::compile(&ansatz);
        let mut cached = CachedStatevectorBackend::new();
        let mut fresh = StatevectorBackend::new();
        let mut rng = rng_from_seed(5);
        for _ in 0..6 {
            let params: Vec<f64> = (0..k).map(|_| rng.gen::<f64>() * 2.0 - 1.0).collect();
            let via_plan = cached.evaluate_plan(&mut plan, &params, &obs).unwrap();
            let via_default = fresh.evaluate_plan(&mut plan, &params, &obs).unwrap();
            // Cached (scratch-reusing) and default (fresh-state) plan paths
            // are bitwise identical.
            assert_eq!(via_plan.to_bits(), via_default.to_bits());
            // And both agree with the circuit-based cache path.
            let bound = ansatz.bind(&params).unwrap();
            let via_circuit = cached.evaluate(&bound, &h).unwrap();
            assert_eq!(via_plan.to_bits(), via_circuit.to_bits());
        }
    }

    #[test]
    fn plan_batch_agrees_bitwise_with_singles() {
        use crate::gate::Param;
        let h = observable(3);
        let obs = CompiledObservable::compile(&h);
        let mut ansatz = Circuit::new(3);
        for (k, q) in (0..3).enumerate() {
            ansatz.ry(Param::Free(k), q);
        }
        ansatz.cx(0, 1).cx(1, 2);
        let mut rng = rng_from_seed(9);
        let points: Vec<Vec<f64>> = (0..9)
            .map(|_| (0..3).map(|_| rng.gen::<f64>() * 3.0 - 1.5).collect())
            .collect();
        let mut plan = CompiledCircuit::compile(&ansatz);
        let mut backend = CachedStatevectorBackend::new();
        let singles: Vec<f64> = points
            .iter()
            .map(|p| backend.evaluate_plan(&mut plan, p, &obs).unwrap())
            .collect();
        let batch = backend
            .evaluate_plan_batch(&mut plan, &points, &obs)
            .unwrap();
        for (i, (a, b)) in singles.iter().zip(&batch).enumerate() {
            assert_eq!(a.to_bits(), b.to_bits(), "point {i}");
        }
        // Empty plan batches work.
        assert!(backend
            .evaluate_plan_batch(&mut plan, &[], &obs)
            .unwrap()
            .is_empty());
    }

    #[test]
    fn lane_batched_plan_batch_agrees_bitwise_with_singles() {
        use crate::gate::Param;
        // 21 points drives every grouping the greedy chunker produces:
        // two 8-lane batches, one 4-lane batch, one scalar point. A 6q
        // ry+cx ansatz exercises the batched real-f64 path; adding rz
        // opts into the complex batched path.
        for with_rz in [false, true] {
            let n = 6;
            let h = observable(n);
            let obs = CompiledObservable::compile(&h);
            let mut ansatz = Circuit::new(n);
            let mut k = 0usize;
            for _ in 0..3 {
                for q in 0..n {
                    ansatz.ry(Param::Free(k), q);
                    k += 1;
                    if with_rz {
                        ansatz.rz(Param::Free(k), q);
                        k += 1;
                    }
                }
                for q in 0..n - 1 {
                    ansatz.cx(q, q + 1);
                }
            }
            let mut rng = rng_from_seed(13);
            let points: Vec<Vec<f64>> = (0..21)
                .map(|_| (0..k).map(|_| rng.gen::<f64>() * 3.0 - 1.5).collect())
                .collect();
            for mut backend in [
                Box::new(StatevectorBackend::new()) as Box<dyn Backend>,
                Box::new(CachedStatevectorBackend::new()) as Box<dyn Backend>,
                Box::new(SharedBackend::new()) as Box<dyn Backend>,
            ] {
                let mut plan = CompiledCircuit::compile(&ansatz);
                let singles: Vec<f64> = points
                    .iter()
                    .map(|p| backend.evaluate_plan(&mut plan, p, &obs).unwrap())
                    .collect();
                let batch = backend
                    .evaluate_plan_batch(&mut plan, &points, &obs)
                    .unwrap();
                for (i, (a, b)) in singles.iter().zip(&batch).enumerate() {
                    assert_eq!(
                        a.to_bits(),
                        b.to_bits(),
                        "{} with_rz={with_rz} point {i}",
                        backend.name()
                    );
                }
            }
        }
    }

    #[test]
    fn lane_batched_plan_batch_propagates_short_point_errors() {
        use crate::gate::Param;
        let h = observable(3);
        let obs = CompiledObservable::compile(&h);
        let mut ansatz = Circuit::new(3);
        for (k, q) in (0..3).enumerate() {
            ansatz.ry(Param::Free(k), q);
        }
        ansatz.cx(0, 1).cx(1, 2);
        let mut plan = CompiledCircuit::compile(&ansatz);
        let mut backend = CachedStatevectorBackend::new();
        // A short point buried inside a would-be 8-lane chunk must error.
        let mut points: Vec<Vec<f64>> = (0..9).map(|i| vec![0.1 * i as f64; 3]).collect();
        points[5] = vec![0.2];
        assert!(backend
            .evaluate_plan_batch(&mut plan, &points, &obs)
            .is_err());
    }

    #[test]
    fn plan_cache_reuses_across_angle_points() {
        let h = observable(4);
        let mut backend = CachedStatevectorBackend::new();
        for seed in 0..12 {
            // Same structure every time: one template plan serves all calls.
            let c = random_circuit(4, 300 + seed);
            backend.evaluate(&c, &h).unwrap();
        }
        assert_eq!(backend.cache.plans.len(), 1);
        assert_eq!(backend.cache.observables.len(), 1);
        // A structurally different circuit adds a second plan.
        let mut other = Circuit::new(4);
        other.h(0).cx(0, 1);
        backend.evaluate(&other, &h).unwrap();
        assert_eq!(backend.cache.plans.len(), 2);
    }

    #[test]
    fn plan_cache_evicts_at_capacity() {
        let h = observable(2);
        let mut backend = CachedStatevectorBackend::new();
        for depth in 0..(PLAN_CACHE_CAP + 3) {
            let mut c = Circuit::new(2);
            for _ in 0..=depth {
                c.h(0);
            }
            c.cx(0, 1);
            backend.evaluate(&c, &h).unwrap();
        }
        assert!(backend.cache.plans.len() <= PLAN_CACHE_CAP);
    }

    #[test]
    fn shared_backend_shares_state_across_clones() {
        let h = observable(3);
        let mut a = SharedBackend::new();
        let mut b = a.clone();
        let c = random_circuit(3, 41);
        let va = a.evaluate(&c, &h).unwrap();
        let vb = b.evaluate(&c, &h).unwrap();
        assert_eq!(va.to_bits(), vb.to_bits());
        // Both handles hit the same plan cache.
        assert_eq!(a.lock().cache.plans.len(), 1);
    }

    #[test]
    fn backend_pool_hands_out_per_width_backends() {
        let mut pool = BackendPool::new();
        assert!(pool.is_empty());
        let mut b3 = pool.backend_for(3);
        let mut b5 = pool.backend_for(5);
        let mut b3_again = pool.backend_for(3);
        assert_eq!(pool.len(), 2);
        let h3 = observable(3);
        let h5 = observable(5);
        let c3 = random_circuit(3, 1);
        let c5 = random_circuit(5, 2);
        let first = b3.evaluate(&c3, &h3).unwrap();
        let again = b3_again.evaluate(&c3, &h3).unwrap();
        assert_eq!(first.to_bits(), again.to_bits());
        assert!(b5.evaluate(&c5, &h5).unwrap().is_finite());
        // Pool-served results match a fresh unpooled backend bitwise.
        let fresh = CachedStatevectorBackend::new().evaluate(&c3, &h3).unwrap();
        assert_eq!(first.to_bits(), fresh.to_bits());
    }

    #[test]
    fn cached_backend_adapts_to_width_changes() {
        let mut cached = CachedStatevectorBackend::new();
        let h3 = observable(3);
        let h5 = observable(5);
        let c3 = random_circuit(3, 1);
        let c5 = random_circuit(5, 2);
        let a3 = cached.evaluate(&c3, &h3).unwrap();
        let a5 = cached.evaluate(&c5, &h5).unwrap();
        let b3 = cached.evaluate(&c3, &h3).unwrap();
        assert_eq!(a3.to_bits(), b3.to_bits());
        assert!(a5.is_finite());
    }

    #[test]
    fn unbound_circuits_error_through_backends() {
        use crate::gate::Param;
        let mut c = Circuit::new(2);
        c.ry(Param::Free(0), 0);
        let h = observable(2);
        assert!(StatevectorBackend::new().evaluate(&c, &h).is_err());
        assert!(CachedStatevectorBackend::new().evaluate(&c, &h).is_err());
        assert!(CachedStatevectorBackend::new()
            .evaluate_batch(std::slice::from_ref(&c), &h)
            .is_err());
        // Short parameter vectors error through the plan path.
        let obs = CompiledObservable::compile(&h);
        let mut plan = CompiledCircuit::compile(&c);
        assert!(CachedStatevectorBackend::new()
            .evaluate_plan(&mut plan, &[], &obs)
            .is_err());
    }

    #[test]
    fn empty_batch_is_empty() {
        let h = observable(2);
        let out = CachedStatevectorBackend::new()
            .evaluate_batch(&[], &h)
            .unwrap();
        assert!(out.is_empty());
    }

    #[cfg(feature = "parallel")]
    #[test]
    fn inner_threads_backend_is_bitwise_identical() {
        // 16 qubits crosses the in-state parallelism threshold, so the
        // threaded schedule actually runs — and must not change a bit.
        let h = observable(16);
        let c = random_circuit(16, 77);
        let a = CachedStatevectorBackend::new().evaluate(&c, &h).unwrap();
        for t in [2usize, 4] {
            let b = CachedStatevectorBackend::with_inner_threads(t)
                .evaluate(&c, &h)
                .unwrap();
            assert_eq!(a.to_bits(), b.to_bits(), "inner_threads={t}");
        }
        // Pool-served backends propagate the knob.
        let mut pool = BackendPool::with_inner_threads(4);
        assert_eq!(pool.inner_threads(), 4);
        let via_pool = pool.backend_for(16).evaluate(&c, &h).unwrap();
        assert_eq!(a.to_bits(), via_pool.to_bits());
    }

    #[test]
    fn boxed_backend_clones_and_debugs() {
        let backend: Box<dyn Backend> = Box::new(CachedStatevectorBackend::new());
        let clone = backend.clone();
        assert_eq!(clone.name(), "cached-statevector");
        assert_eq!(format!("{:?}", &*backend), "Backend(cached-statevector)");
    }
}

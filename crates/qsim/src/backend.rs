//! The pluggable circuit-execution layer.
//!
//! Everything above this crate evaluates circuits through the [`Backend`]
//! trait instead of constructing simulators directly, which gives the
//! workspace one seam for every execution strategy: the straightforward
//! statevector path, the buffer-reusing cached path, multi-threaded batch
//! fan-out (the `parallel` feature), and — in future PRs — sharded or
//! remote executors. QISMET's job structure (paper Fig. 7) maps naturally
//! onto [`Backend::evaluate_batch`]: every circuit of one quantum job is
//! handed to the engine as a single batch.
//!
//! # Examples
//!
//! ```
//! use qismet_qsim::{Backend, CachedStatevectorBackend, Circuit, PauliSum};
//!
//! let h = PauliSum::from_labels(&[(-1.0, "ZZ"), (-0.5, "XI")]).unwrap();
//! let mut c = Circuit::new(2);
//! c.ry(0.3, 0).ry(0.7, 1).cx(0, 1);
//! let mut backend = CachedStatevectorBackend::new();
//! let single = backend.evaluate(&c, &h).unwrap();
//! let batch = backend.evaluate_batch(std::slice::from_ref(&c), &h).unwrap();
//! assert_eq!(single.to_bits(), batch[0].to_bits());
//! ```

use crate::circuit::Circuit;
use crate::gate::GateError;
use crate::pauli::PauliSum;
use crate::statevector::StateVector;
use std::fmt;

/// A circuit-execution engine producing expectation values.
///
/// Implementations take `&mut self` so they can reuse scratch buffers
/// across evaluations; they must nevertheless be *stateless with respect to
/// results* — the value returned for a `(circuit, observable)` pair may not
/// depend on prior calls. That invariant is what lets callers batch freely:
/// [`Backend::evaluate_batch`] must agree bit-for-bit with a loop of
/// [`Backend::evaluate`] calls.
pub trait Backend: Send {
    /// Evaluates `<0| C† H C |0>` for a bound circuit.
    ///
    /// # Errors
    ///
    /// [`GateError::UnboundParameter`] if the circuit has free parameters.
    fn evaluate(&mut self, circuit: &Circuit, observable: &PauliSum) -> Result<f64, GateError>;

    /// Evaluates a batch of circuits against one observable, in order.
    ///
    /// The default implementation loops over [`Backend::evaluate`];
    /// implementations may override it to amortize setup or fan out across
    /// threads, but the results must stay bitwise identical to the loop.
    ///
    /// # Errors
    ///
    /// The first [`GateError`] encountered, if any circuit is unbound.
    fn evaluate_batch(
        &mut self,
        circuits: &[Circuit],
        observable: &PauliSum,
    ) -> Result<Vec<f64>, GateError> {
        circuits
            .iter()
            .map(|c| self.evaluate(c, observable))
            .collect()
    }

    /// Clones into an owned trait object (lets objective structs stay
    /// `Clone` while holding a boxed backend).
    fn clone_box(&self) -> Box<dyn Backend>;

    /// Short engine name for reports and `Debug` output.
    fn name(&self) -> &'static str;
}

impl Clone for Box<dyn Backend> {
    fn clone(&self) -> Self {
        self.clone_box()
    }
}

impl fmt::Debug for dyn Backend {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Backend({})", self.name())
    }
}

/// The reference backend: a fresh [`StateVector`] per evaluation.
///
/// Exists as the semantics baseline the faster paths are validated
/// against; prefer [`CachedStatevectorBackend`] in loops.
#[derive(Debug, Clone, Copy, Default)]
pub struct StatevectorBackend;

impl StatevectorBackend {
    /// Creates the backend.
    pub fn new() -> Self {
        StatevectorBackend
    }
}

impl Backend for StatevectorBackend {
    fn evaluate(&mut self, circuit: &Circuit, observable: &PauliSum) -> Result<f64, GateError> {
        let sv = StateVector::from_circuit(circuit)?;
        Ok(sv.expectation(observable))
    }

    #[cfg(feature = "parallel")]
    fn evaluate_batch(
        &mut self,
        circuits: &[Circuit],
        observable: &PauliSum,
    ) -> Result<Vec<f64>, GateError> {
        parallel_batch(circuits, observable)
    }

    fn clone_box(&self) -> Box<dyn Backend> {
        Box::new(*self)
    }

    fn name(&self) -> &'static str {
        "statevector"
    }
}

/// The cached fast path: one scratch [`StateVector`] reused (reset in
/// place) across evaluations, so a VQA tuning loop performs zero amplitude
/// allocations after the first call at a given width.
///
/// The arithmetic is the exact gate-application sequence of
/// [`StateVector::from_circuit`], so results agree bitwise with
/// [`StatevectorBackend`].
#[derive(Debug, Clone, Default)]
pub struct CachedStatevectorBackend {
    scratch: Option<StateVector>,
}

impl CachedStatevectorBackend {
    /// Creates the backend; the scratch buffer is allocated lazily on the
    /// first evaluation.
    pub fn new() -> Self {
        CachedStatevectorBackend::default()
    }
}

impl Backend for CachedStatevectorBackend {
    fn evaluate(&mut self, circuit: &Circuit, observable: &PauliSum) -> Result<f64, GateError> {
        let scratch = match &mut self.scratch {
            Some(sv) if sv.n_qubits() == circuit.n_qubits() => {
                sv.reset();
                sv
            }
            slot => slot.insert(StateVector::new(circuit.n_qubits())),
        };
        scratch.apply_circuit(circuit)?;
        Ok(scratch.expectation(observable))
    }

    #[cfg(feature = "parallel")]
    fn evaluate_batch(
        &mut self,
        circuits: &[Circuit],
        observable: &PauliSum,
    ) -> Result<Vec<f64>, GateError> {
        parallel_batch(circuits, observable)
    }

    fn clone_box(&self) -> Box<dyn Backend> {
        Box::new(self.clone())
    }

    fn name(&self) -> &'static str {
        "cached-statevector"
    }
}

/// Evaluates a batch across threads with `std::thread::scope`, one cached
/// scratch state per worker. Results are written back by index, so the
/// output order (and, since evaluations are independent, every bit of
/// every result) matches the sequential loop.
///
/// The vendored dependency set has no `rayon`; scoped threads give the
/// same fan-out with the standard library only.
#[cfg(feature = "parallel")]
fn parallel_batch(circuits: &[Circuit], observable: &PauliSum) -> Result<Vec<f64>, GateError> {
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(circuits.len().max(1));
    if workers <= 1 || circuits.len() < 2 {
        let mut backend = CachedStatevectorBackend::new();
        return circuits
            .iter()
            .map(|c| backend.evaluate(c, observable))
            .collect();
    }
    let mut results: Vec<Result<f64, GateError>> = vec![Ok(0.0); circuits.len()];
    // Contiguous chunking: each worker owns one run of the result slice.
    let chunk = circuits.len().div_ceil(workers);
    std::thread::scope(|scope| {
        for (w, out) in results.chunks_mut(chunk).enumerate() {
            let start = w * chunk;
            scope.spawn(move || {
                let mut backend = CachedStatevectorBackend::new();
                for (i, slot) in out.iter_mut().enumerate() {
                    *slot = backend.evaluate(&circuits[start + i], observable);
                }
            });
        }
    });
    results.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use qismet_mathkit::rng_from_seed;
    use rand::Rng;

    fn random_circuit(n: usize, seed: u64) -> Circuit {
        let mut rng = rng_from_seed(seed);
        let mut c = Circuit::new(n);
        for layer in 0..6 {
            for q in 0..n {
                c.ry(rng.gen::<f64>() * std::f64::consts::TAU, q);
                c.rz(rng.gen::<f64>() * std::f64::consts::TAU, q);
            }
            for q in 0..n - 1 {
                if (layer + q) % 2 == 0 {
                    c.cx(q, q + 1);
                }
            }
        }
        c
    }

    fn observable(n: usize) -> PauliSum {
        let labels: Vec<(f64, String)> = (0..n - 1)
            .map(|q| {
                let mut label = vec!['I'; n];
                label[q] = 'Z';
                label[q + 1] = 'Z';
                (-1.0, label.into_iter().collect::<String>())
            })
            .collect();
        let refs: Vec<(f64, &str)> = labels.iter().map(|(c, s)| (*c, s.as_str())).collect();
        PauliSum::from_labels(&refs).unwrap()
    }

    #[test]
    fn cached_matches_from_circuit_exactly() {
        let h = observable(5);
        let mut cached = CachedStatevectorBackend::new();
        for seed in 0..8 {
            let c = random_circuit(5, seed);
            let reference = StateVector::from_circuit(&c).unwrap().expectation(&h);
            let fast = cached.evaluate(&c, &h).unwrap();
            assert!(
                (reference - fast).abs() < 1e-12,
                "seed {seed}: reference {reference} vs cached {fast}"
            );
        }
    }

    #[test]
    fn cached_is_bitwise_identical_to_fresh() {
        // Same gate-application sequence => same floating-point results,
        // not merely close ones.
        let h = observable(4);
        let mut cached = CachedStatevectorBackend::new();
        let mut fresh = StatevectorBackend::new();
        for seed in 10..18 {
            let c = random_circuit(4, seed);
            let a = fresh.evaluate(&c, &h).unwrap();
            let b = cached.evaluate(&c, &h).unwrap();
            assert_eq!(a.to_bits(), b.to_bits(), "seed {seed}");
        }
    }

    #[test]
    fn batch_agrees_bitwise_with_singles() {
        let h = observable(4);
        let circuits: Vec<Circuit> = (0..7).map(|s| random_circuit(4, 100 + s)).collect();
        for backend in [
            Box::new(StatevectorBackend::new()) as Box<dyn Backend>,
            Box::new(CachedStatevectorBackend::new()) as Box<dyn Backend>,
        ] {
            let mut one_at_a_time = backend.clone();
            let singles: Vec<f64> = circuits
                .iter()
                .map(|c| one_at_a_time.evaluate(c, &h).unwrap())
                .collect();
            let mut batched = backend.clone();
            let batch = batched.evaluate_batch(&circuits, &h).unwrap();
            assert_eq!(batch.len(), singles.len());
            for (i, (a, b)) in singles.iter().zip(&batch).enumerate() {
                assert_eq!(
                    a.to_bits(),
                    b.to_bits(),
                    "{} circuit {i}: {a} vs {b}",
                    batched.name()
                );
            }
        }
    }

    #[test]
    fn cached_backend_adapts_to_width_changes() {
        let mut cached = CachedStatevectorBackend::new();
        let h3 = observable(3);
        let h5 = observable(5);
        let c3 = random_circuit(3, 1);
        let c5 = random_circuit(5, 2);
        let a3 = cached.evaluate(&c3, &h3).unwrap();
        let a5 = cached.evaluate(&c5, &h5).unwrap();
        let b3 = cached.evaluate(&c3, &h3).unwrap();
        assert_eq!(a3.to_bits(), b3.to_bits());
        assert!(a5.is_finite());
    }

    #[test]
    fn unbound_circuits_error_through_backends() {
        use crate::gate::Param;
        let mut c = Circuit::new(2);
        c.ry(Param::Free(0), 0);
        let h = observable(2);
        assert!(StatevectorBackend::new().evaluate(&c, &h).is_err());
        assert!(CachedStatevectorBackend::new().evaluate(&c, &h).is_err());
        assert!(CachedStatevectorBackend::new()
            .evaluate_batch(std::slice::from_ref(&c), &h)
            .is_err());
    }

    #[test]
    fn empty_batch_is_empty() {
        let h = observable(2);
        let out = CachedStatevectorBackend::new()
            .evaluate_batch(&[], &h)
            .unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn boxed_backend_clones_and_debugs() {
        let backend: Box<dyn Backend> = Box::new(CachedStatevectorBackend::new());
        let clone = backend.clone();
        assert_eq!(clone.name(), "cached-statevector");
        assert_eq!(format!("{:?}", &*backend), "Backend(cached-statevector)");
    }
}

//! Parameterized quantum circuits.
//!
//! A [`Circuit`] is an ordered list of gate applications on named qubit
//! indices. Ansatz circuits carry free parameters ([`Param::Free`]) that are
//! bound per VQA iteration via [`Circuit::bind`].

use crate::gate::{Gate, GateError, Param};
use std::fmt;

/// One gate application inside a circuit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Op {
    /// The gate.
    pub gate: Gate,
    /// Operand qubits; `qubits[1]` is unused for 1-qubit gates.
    pub qubits: [usize; 2],
}

impl Op {
    /// Operand slice of the correct arity.
    pub fn operands(&self) -> &[usize] {
        &self.qubits[..self.gate.arity()]
    }
}

/// Errors from circuit construction and manipulation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CircuitError {
    /// A qubit index is out of range.
    QubitOutOfRange {
        /// Offending index.
        qubit: usize,
        /// Circuit width.
        width: usize,
    },
    /// Two-qubit gate applied to identical operands.
    DuplicateOperands {
        /// The repeated index.
        qubit: usize,
    },
    /// Parameter vector length mismatch in [`Circuit::bind`].
    ParamCountMismatch {
        /// Parameters the circuit expects.
        expected: usize,
        /// Parameters provided.
        provided: usize,
    },
    /// A gate still carries a free parameter where a bound one is required.
    Unbound(GateError),
}

impl fmt::Display for CircuitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CircuitError::QubitOutOfRange { qubit, width } => {
                write!(f, "qubit {qubit} out of range for width {width}")
            }
            CircuitError::DuplicateOperands { qubit } => {
                write!(f, "two-qubit gate with duplicate operand {qubit}")
            }
            CircuitError::ParamCountMismatch { expected, provided } => {
                write!(f, "expected {expected} parameters, got {provided}")
            }
            CircuitError::Unbound(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for CircuitError {}

impl From<GateError> for CircuitError {
    fn from(e: GateError) -> Self {
        CircuitError::Unbound(e)
    }
}

/// An ordered gate list over `n` qubits, possibly with free parameters.
///
/// # Examples
///
/// Building a Bell-pair circuit:
///
/// ```
/// use qismet_qsim::Circuit;
///
/// let mut c = Circuit::new(2);
/// c.h(0).cx(0, 1);
/// assert_eq!(c.cx_count(), 1);
/// assert_eq!(c.depth(), 2);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Circuit {
    n_qubits: usize,
    ops: Vec<Op>,
    /// Number of distinct free parameters (max Free index + 1).
    n_params: usize,
}

impl Circuit {
    /// Creates an empty circuit over `n_qubits` qubits.
    pub fn new(n_qubits: usize) -> Self {
        Circuit {
            n_qubits,
            ops: Vec::new(),
            n_params: 0,
        }
    }

    /// Circuit width.
    pub fn n_qubits(&self) -> usize {
        self.n_qubits
    }

    /// Number of free parameters referenced by the circuit.
    pub fn n_params(&self) -> usize {
        self.n_params
    }

    /// The gate sequence.
    pub fn ops(&self) -> &[Op] {
        &self.ops
    }

    /// Total gate count.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// `true` when the circuit contains no gates.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Appends a gate, validating operands.
    ///
    /// # Errors
    ///
    /// * [`CircuitError::QubitOutOfRange`] for bad indices.
    /// * [`CircuitError::DuplicateOperands`] for `cx(q, q)` style misuse.
    pub fn push(&mut self, gate: Gate, qubits: &[usize]) -> Result<&mut Self, CircuitError> {
        let arity = gate.arity();
        assert_eq!(qubits.len(), arity, "operand count must match gate arity");
        for &q in qubits {
            if q >= self.n_qubits {
                return Err(CircuitError::QubitOutOfRange {
                    qubit: q,
                    width: self.n_qubits,
                });
            }
        }
        if arity == 2 && qubits[0] == qubits[1] {
            return Err(CircuitError::DuplicateOperands { qubit: qubits[0] });
        }
        if let Some(Param::Free(k)) = gate.param() {
            self.n_params = self.n_params.max(k + 1);
        }
        let stored = [qubits[0], if arity == 2 { qubits[1] } else { 0 }];
        self.ops.push(Op {
            gate,
            qubits: stored,
        });
        Ok(self)
    }

    /// Appends a gate, panicking on invalid operands (builder convenience).
    ///
    /// # Panics
    ///
    /// Panics on out-of-range or duplicate operands.
    pub fn append(&mut self, gate: Gate, qubits: &[usize]) -> &mut Self {
        self.push(gate, qubits).expect("invalid gate operands");
        self
    }

    /// Appends a Hadamard.
    pub fn h(&mut self, q: usize) -> &mut Self {
        self.append(Gate::H, &[q])
    }

    /// Appends a Pauli-X.
    pub fn x(&mut self, q: usize) -> &mut Self {
        self.append(Gate::X, &[q])
    }

    /// Appends a Pauli-Y.
    pub fn y(&mut self, q: usize) -> &mut Self {
        self.append(Gate::Y, &[q])
    }

    /// Appends a Pauli-Z.
    pub fn z(&mut self, q: usize) -> &mut Self {
        self.append(Gate::Z, &[q])
    }

    /// Appends an S gate.
    pub fn s(&mut self, q: usize) -> &mut Self {
        self.append(Gate::S, &[q])
    }

    /// Appends an S-dagger gate.
    pub fn sdg(&mut self, q: usize) -> &mut Self {
        self.append(Gate::Sdg, &[q])
    }

    /// Appends an RX rotation.
    pub fn rx(&mut self, p: impl Into<Param>, q: usize) -> &mut Self {
        self.append(Gate::Rx(p.into()), &[q])
    }

    /// Appends an RY rotation.
    pub fn ry(&mut self, p: impl Into<Param>, q: usize) -> &mut Self {
        self.append(Gate::Ry(p.into()), &[q])
    }

    /// Appends an RZ rotation.
    pub fn rz(&mut self, p: impl Into<Param>, q: usize) -> &mut Self {
        self.append(Gate::Rz(p.into()), &[q])
    }

    /// Appends a CX (CNOT) with `control`, `target`.
    pub fn cx(&mut self, control: usize, target: usize) -> &mut Self {
        self.append(Gate::Cx, &[control, target])
    }

    /// Appends a CZ.
    pub fn cz(&mut self, a: usize, b: usize) -> &mut Self {
        self.append(Gate::Cz, &[a, b])
    }

    /// Appends a SWAP.
    pub fn swap(&mut self, a: usize, b: usize) -> &mut Self {
        self.append(Gate::Swap, &[a, b])
    }

    /// Appends an RZZ interaction.
    pub fn rzz(&mut self, p: impl Into<Param>, a: usize, b: usize) -> &mut Self {
        self.append(Gate::Rzz(p.into()), &[a, b])
    }

    /// Concatenates another circuit of the same width.
    ///
    /// # Panics
    ///
    /// Panics if widths differ.
    pub fn extend(&mut self, other: &Circuit) -> &mut Self {
        assert_eq!(self.n_qubits, other.n_qubits, "circuit widths must match");
        for op in &other.ops {
            self.ops.push(*op);
            if let Some(Param::Free(k)) = op.gate.param() {
                self.n_params = self.n_params.max(k + 1);
            }
        }
        self
    }

    /// Returns a copy with all free parameters bound to `values`.
    ///
    /// # Errors
    ///
    /// [`CircuitError::ParamCountMismatch`] if `values.len() < n_params`.
    pub fn bind(&self, values: &[f64]) -> Result<Circuit, CircuitError> {
        if values.len() < self.n_params {
            return Err(CircuitError::ParamCountMismatch {
                expected: self.n_params,
                provided: values.len(),
            });
        }
        let ops = self
            .ops
            .iter()
            .map(|op| Op {
                gate: op.gate.bind(values),
                qubits: op.qubits,
            })
            .collect();
        Ok(Circuit {
            n_qubits: self.n_qubits,
            ops,
            n_params: 0,
        })
    }

    /// `true` when no gate carries a free parameter.
    pub fn is_bound(&self) -> bool {
        self.ops
            .iter()
            .all(|op| !matches!(op.gate.param(), Some(Param::Free(_))))
    }

    /// Number of two-qubit entangling gates — the depth proxy the paper uses
    /// when discussing circuit-level transient sensitivity (Section 3.2).
    pub fn cx_count(&self) -> usize {
        self.ops.iter().filter(|op| op.gate.arity() == 2).count()
    }

    /// Circuit depth: the length of the critical path assuming gates on
    /// disjoint qubits execute concurrently.
    pub fn depth(&self) -> usize {
        let mut level = vec![0usize; self.n_qubits];
        let mut depth = 0;
        for op in &self.ops {
            let start = op.operands().iter().map(|&q| level[q]).max().unwrap_or(0);
            let end = start + 1;
            for &q in op.operands() {
                level[q] = end;
            }
            depth = depth.max(end);
        }
        depth
    }

    /// Sum of gate durations along the critical path, given per-arity gate
    /// durations (used by the noise model to convert T1/T2 into per-circuit
    /// decoherence).
    pub fn duration(&self, t_1q: f64, t_2q: f64) -> f64 {
        let mut finish = vec![0.0f64; self.n_qubits];
        let mut total: f64 = 0.0;
        for op in &self.ops {
            let dt = if op.gate.arity() == 2 { t_2q } else { t_1q };
            let start = op
                .operands()
                .iter()
                .map(|&q| finish[q])
                .fold(0.0f64, f64::max);
            let end = start + dt;
            for &q in op.operands() {
                finish[q] = end;
            }
            total = total.max(end);
        }
        total
    }

    /// The inverse circuit (adjoint): gates reversed and conjugated.
    ///
    /// Only defined for bound circuits.
    ///
    /// # Errors
    ///
    /// [`CircuitError::Unbound`] if any parameter is free.
    pub fn inverse(&self) -> Result<Circuit, CircuitError> {
        let mut out = Circuit::new(self.n_qubits);
        for op in self.ops.iter().rev() {
            let inv = match op.gate {
                Gate::H | Gate::X | Gate::Y | Gate::Z | Gate::Cx | Gate::Cz | Gate::Swap => op.gate,
                Gate::S => Gate::Sdg,
                Gate::Sdg => Gate::S,
                Gate::T => Gate::Tdg,
                Gate::Tdg => Gate::T,
                Gate::Sx => {
                    // SX^dagger = SX^3; emit as rx(-pi/2) up to global phase.
                    Gate::Rx(Param::Fixed(-std::f64::consts::FRAC_PI_2))
                }
                Gate::Rx(p) => Gate::Rx(neg(p)?),
                Gate::Ry(p) => Gate::Ry(neg(p)?),
                Gate::Rz(p) => Gate::Rz(neg(p)?),
                Gate::Phase(p) => Gate::Phase(neg(p)?),
                Gate::Rzz(p) => Gate::Rzz(neg(p)?),
            };
            out.ops.push(Op {
                gate: inv,
                qubits: op.qubits,
            });
        }
        Ok(out)
    }
}

fn neg(p: Param) -> Result<Param, CircuitError> {
    match p {
        Param::Fixed(v) => Ok(Param::Fixed(-v)),
        Param::Free(_) => Err(CircuitError::Unbound(GateError::UnboundParameter)),
    }
}

impl fmt::Display for Circuit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "circuit({} qubits, {} gates)",
            self.n_qubits,
            self.ops.len()
        )?;
        for op in &self.ops {
            write!(f, "  {}", op.gate)?;
            for q in op.operands() {
                write!(f, " q{q}")?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_chains() {
        let mut c = Circuit::new(3);
        c.h(0).cx(0, 1).cx(1, 2).rz(0.3, 2);
        assert_eq!(c.len(), 4);
        assert_eq!(c.cx_count(), 2);
        assert!(c.is_bound());
    }

    #[test]
    fn out_of_range_rejected() {
        let mut c = Circuit::new(2);
        assert!(matches!(
            c.push(Gate::H, &[2]),
            Err(CircuitError::QubitOutOfRange { qubit: 2, width: 2 })
        ));
    }

    #[test]
    fn duplicate_operands_rejected() {
        let mut c = Circuit::new(2);
        assert!(matches!(
            c.push(Gate::Cx, &[1, 1]),
            Err(CircuitError::DuplicateOperands { qubit: 1 })
        ));
    }

    #[test]
    fn free_params_counted_and_bound() {
        let mut c = Circuit::new(2);
        c.ry(Param::Free(0), 0)
            .ry(Param::Free(1), 1)
            .cx(0, 1)
            .ry(Param::Free(2), 0);
        assert_eq!(c.n_params(), 3);
        assert!(!c.is_bound());
        let b = c.bind(&[0.1, 0.2, 0.3]).unwrap();
        assert!(b.is_bound());
        assert_eq!(b.n_params(), 0);
        // The original is untouched.
        assert_eq!(c.n_params(), 3);
    }

    #[test]
    fn bind_length_checked() {
        let mut c = Circuit::new(1);
        c.ry(Param::Free(4), 0);
        assert_eq!(c.n_params(), 5);
        assert!(matches!(
            c.bind(&[0.0; 3]),
            Err(CircuitError::ParamCountMismatch {
                expected: 5,
                provided: 3
            })
        ));
    }

    #[test]
    fn depth_accounts_for_parallelism() {
        let mut c = Circuit::new(4);
        // Layer 1: h on all four qubits in parallel.
        for q in 0..4 {
            c.h(q);
        }
        // Layer 2: two disjoint CX.
        c.cx(0, 1).cx(2, 3);
        assert_eq!(c.depth(), 2);
        // A chained CX adds a third layer.
        c.cx(1, 2);
        assert_eq!(c.depth(), 3);
    }

    #[test]
    fn duration_critical_path() {
        let mut c = Circuit::new(2);
        c.h(0).h(0).cx(0, 1);
        // Critical path: 2 one-qubit + 1 two-qubit.
        let d = c.duration(10.0, 100.0);
        assert!((d - 120.0).abs() < 1e-12);
    }

    #[test]
    fn extend_merges_params() {
        let mut a = Circuit::new(2);
        a.ry(Param::Free(0), 0);
        let mut b = Circuit::new(2);
        b.ry(Param::Free(3), 1);
        a.extend(&b);
        assert_eq!(a.n_params(), 4);
        assert_eq!(a.len(), 2);
    }

    #[test]
    #[should_panic(expected = "widths must match")]
    fn extend_rejects_width_mismatch() {
        let mut a = Circuit::new(2);
        let b = Circuit::new(3);
        a.extend(&b);
    }

    #[test]
    fn inverse_reverses_and_negates() {
        let mut c = Circuit::new(2);
        c.h(0).s(1).rz(0.7, 0).cx(0, 1);
        let inv = c.inverse().unwrap();
        assert_eq!(inv.len(), 4);
        assert_eq!(inv.ops()[0].gate, Gate::Cx);
        assert_eq!(inv.ops()[1].gate, Gate::Rz(Param::Fixed(-0.7)));
        assert_eq!(inv.ops()[2].gate, Gate::Sdg);
        assert_eq!(inv.ops()[3].gate, Gate::H);
    }

    #[test]
    fn inverse_of_unbound_errors() {
        let mut c = Circuit::new(1);
        c.ry(Param::Free(0), 0);
        assert!(matches!(c.inverse(), Err(CircuitError::Unbound(_))));
    }

    #[test]
    fn display_contains_gates() {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1);
        let s = c.to_string();
        assert!(s.contains("h q0"));
        assert!(s.contains("cx q0 q1"));
    }
}

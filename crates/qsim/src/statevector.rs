//! Ideal (noise-free) state-vector simulation.
//!
//! This backend evaluates circuits exactly and provides both analytic
//! expectation values and finite-shot sampling. It is the reference against
//! which the noisy backends and the contraction-factor objective model are
//! validated.

use crate::circuit::Circuit;
use crate::counts::Counts;
use crate::gate::{Gate, GateError};
use crate::kernels;
use crate::pauli::{Pauli, PauliString, PauliSum};
use qismet_mathkit::Complex64;
use rand::Rng;

/// A pure quantum state over `n` qubits (qubit 0 = least significant bit of
/// the amplitude index).
///
/// # Examples
///
/// Preparing a Bell pair and checking its Z-parity:
///
/// ```
/// use qismet_qsim::{Circuit, PauliString, StateVector};
///
/// let mut c = Circuit::new(2);
/// c.h(0).cx(0, 1);
/// let sv = StateVector::from_circuit(&c).unwrap();
/// let zz = PauliString::from_label("ZZ").unwrap();
/// assert!((sv.pauli_expectation(&zz) - 1.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct StateVector {
    n_qubits: usize,
    amps: Vec<Complex64>,
}

impl StateVector {
    /// The all-zeros state `|0...0>`.
    ///
    /// # Panics
    ///
    /// Panics if `n_qubits > 26` (amplitude vector would not fit in memory).
    pub fn new(n_qubits: usize) -> Self {
        assert!(n_qubits <= 26, "state vector limited to 26 qubits");
        let mut amps = vec![Complex64::ZERO; 1 << n_qubits];
        amps[0] = Complex64::ONE;
        StateVector { n_qubits, amps }
    }

    /// Builds from raw amplitudes (must be length `2^n` and normalized).
    ///
    /// # Panics
    ///
    /// Panics if the length is not a power of two or the norm is not ~1.
    pub fn from_amplitudes(amps: Vec<Complex64>) -> Self {
        let dim = amps.len();
        assert!(
            dim.is_power_of_two(),
            "amplitude count must be a power of two"
        );
        let n_qubits = dim.trailing_zeros() as usize;
        let norm: f64 = amps.iter().map(|a| a.norm_sqr()).sum();
        assert!(
            (norm - 1.0).abs() < 1e-8,
            "state vector must be normalized (norm^2 = {norm})"
        );
        StateVector { n_qubits, amps }
    }

    /// Runs a bound circuit from `|0...0>`.
    ///
    /// # Errors
    ///
    /// [`GateError::UnboundParameter`] if the circuit has free parameters.
    pub fn from_circuit(circuit: &Circuit) -> Result<Self, GateError> {
        let mut sv = StateVector::new(circuit.n_qubits());
        sv.apply_circuit(circuit)?;
        Ok(sv)
    }

    /// Number of qubits.
    pub fn n_qubits(&self) -> usize {
        self.n_qubits
    }

    /// Resets the state to `|0...0>` in place, reusing the amplitude
    /// buffer. This is the allocation-free path the cached execution
    /// backend uses between circuit evaluations.
    pub fn reset(&mut self) {
        self.amps.fill(Complex64::ZERO);
        self.amps[0] = Complex64::ONE;
    }

    /// Amplitudes (basis index bit `q` = qubit `q`).
    pub fn amplitudes(&self) -> &[Complex64] {
        &self.amps
    }

    /// Mutable amplitude slice — the seam the compiled-plan executor uses to
    /// run slice kernels (including region-partitioned parallel applies)
    /// directly on the state.
    pub(crate) fn amps_mut(&mut self) -> &mut [Complex64] {
        &mut self.amps
    }

    /// Fills the state from a strided amplitude slice: amplitude `i` is
    /// read from `src[i * stride + offset]`. This is the lane-extraction
    /// seam of the batched (structure-of-arrays) engine, where `stride` is
    /// the lane count and `offset` the lane index.
    pub(crate) fn fill_from_strided(&mut self, src: &[Complex64], stride: usize, offset: usize) {
        for (i, a) in self.amps.iter_mut().enumerate() {
            *a = src[i * stride + offset];
        }
    }

    /// Squared-norm of the state (should be 1 up to round-off).
    pub fn norm_sqr(&self) -> f64 {
        self.amps
            .chunks(kernels::BLOCK)
            .map(kernels::norm_sqr_block)
            .sum()
    }

    /// Applies every gate of a bound circuit in order.
    ///
    /// # Errors
    ///
    /// [`GateError::UnboundParameter`] if any gate has a free parameter.
    pub fn apply_circuit(&mut self, circuit: &Circuit) -> Result<(), GateError> {
        assert_eq!(
            circuit.n_qubits(),
            self.n_qubits,
            "circuit width must match state width"
        );
        for op in circuit.ops() {
            self.apply_gate(op.gate, op.operands())?;
        }
        Ok(())
    }

    /// Applies a single gate.
    ///
    /// # Errors
    ///
    /// [`GateError::UnboundParameter`] for unbound parameterized gates.
    ///
    /// # Panics
    ///
    /// Panics if operand indices are out of range or of wrong arity.
    pub fn apply_gate(&mut self, gate: Gate, qubits: &[usize]) -> Result<(), GateError> {
        assert_eq!(qubits.len(), gate.arity(), "operand arity");
        match gate {
            Gate::Cx => {
                self.apply_cx(qubits[0], qubits[1]);
                Ok(())
            }
            Gate::Cz => {
                self.apply_cz(qubits[0], qubits[1]);
                Ok(())
            }
            Gate::Swap => {
                self.apply_swap(qubits[0], qubits[1]);
                Ok(())
            }
            Gate::Rzz(p) => {
                let theta = p.value().ok_or(GateError::UnboundParameter)?;
                self.apply_rzz(theta, qubits[0], qubits[1]);
                Ok(())
            }
            g => {
                let m = g.matrix()?;
                let u = [[m.at(0, 0), m.at(0, 1)], [m.at(1, 0), m.at(1, 1)]];
                self.apply_1q(&u, qubits[0]);
                Ok(())
            }
        }
    }

    /// Applies an arbitrary 2x2 unitary on `qubit` (shared with the
    /// compiled-plan executor, so interpreted and compiled execution use
    /// identical kernel arithmetic).
    pub(crate) fn apply_1q(&mut self, u: &[[Complex64; 2]; 2], qubit: usize) {
        assert!(qubit < self.n_qubits, "qubit out of range");
        kernels::apply_1q(&mut self.amps, u, 1usize << qubit);
    }

    pub(crate) fn apply_cx(&mut self, control: usize, target: usize) {
        assert!(control < self.n_qubits && target < self.n_qubits && control != target);
        kernels::apply_cx(&mut self.amps, 1usize << control, 1usize << target);
    }

    pub(crate) fn apply_cz(&mut self, a: usize, b: usize) {
        assert!(a < self.n_qubits && b < self.n_qubits && a != b);
        kernels::apply_cz(&mut self.amps, 1usize << a, 1usize << b);
    }

    pub(crate) fn apply_swap(&mut self, a: usize, b: usize) {
        assert!(a < self.n_qubits && b < self.n_qubits && a != b);
        kernels::apply_swap(&mut self.amps, 1usize << a, 1usize << b);
    }

    fn apply_rzz(&mut self, theta: f64, a: usize, b: usize) {
        let minus = Complex64::cis(-theta / 2.0);
        let plus = Complex64::cis(theta / 2.0);
        self.apply_rzz_phases(minus, plus, a, b);
    }

    /// RZZ with the diagonal phases supplied by the caller — the compiled
    /// plan precomputes them once per rebinding instead of per application.
    pub(crate) fn apply_rzz_phases(
        &mut self,
        minus: Complex64,
        plus: Complex64,
        a: usize,
        b: usize,
    ) {
        assert!(a < self.n_qubits && b < self.n_qubits && a != b);
        kernels::apply_rzz_phases(&mut self.amps, minus, plus, 1usize << a, 1usize << b);
    }

    /// Probability of each computational basis outcome.
    pub fn probabilities(&self) -> Vec<f64> {
        let mut out = vec![0.0f64; self.amps.len()];
        for (amps, probs) in self
            .amps
            .chunks(kernels::BLOCK)
            .zip(out.chunks_mut(kernels::BLOCK))
        {
            kernels::write_probabilities(amps, probs);
        }
        out
    }

    /// Samples `shots` measurement outcomes in the computational basis.
    pub fn sample_counts<R: Rng + ?Sized>(&self, rng: &mut R, shots: u64) -> Counts {
        let mut cdf = Vec::new();
        self.sample_counts_into(rng, shots, &mut cdf)
    }

    /// Like [`StateVector::sample_counts`], but builds the cumulative
    /// distribution into a caller-provided scratch buffer so repeated
    /// sampling (the hot path of shot-based estimation loops) performs no
    /// per-call allocation. The buffer is cleared and refilled; its capacity
    /// is reused across calls. Results are bit-identical to
    /// [`StateVector::sample_counts`].
    pub fn sample_counts_into<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        shots: u64,
        cdf: &mut Vec<f64>,
    ) -> Counts {
        // Single pass: accumulate |amp|^2 directly into the CDF, skipping
        // the intermediate probability vector entirely. The squared norms
        // are produced by the chunked kernel helper; the prefix sum adds
        // them in index order, keeping the CDF bits (and hence the RNG
        // consumption) identical to the historical scalar loop.
        let acc = kernels::cdf_fill(&self.amps, cdf);
        let total = acc.max(f64::MIN_POSITIVE);
        let last = cdf.len() - 1;
        let mut counts = Counts::new(self.n_qubits);
        for _ in 0..shots {
            let u = rng.gen::<f64>() * total;
            let idx = cdf.partition_point(|&c| c < u).min(last);
            counts.record(idx as u64, 1);
        }
        counts
    }

    /// Analytic expectation value `<psi| P |psi>` of a Pauli string.
    ///
    /// # Panics
    ///
    /// Panics on width mismatch.
    pub fn pauli_expectation(&self, p: &PauliString) -> f64 {
        assert_eq!(p.n_qubits(), self.n_qubits, "pauli width");
        let x_mask = p.x_mask() as usize;
        let z_mask = p.z_mask() as usize;
        // P|c> = (i)^{y} * (-1)^{(c & z_mask).popcount} |c ^ x_mask>: each Y
        // contributes i * (-1)^{bit}, each Z contributes (-1)^{bit}. We
        // accumulate <psi|P|psi> = sum_c conj(amp[c^x]) * phase(c) * amp[c].
        // The i^y factor is loop-invariant, so it is hoisted out of the
        // per-amplitude loop (multiplying the +/-1 sign by the constant is
        // exact, so this matches the original in-loop arithmetic); the dense
        // states this simulator produces make a zero-amplitude skip a branch
        // misprediction, not a saving, so every index is visited.
        let iy = match p.y_count() % 4 {
            0 => Complex64::ONE,
            1 => Complex64::I,
            2 => -Complex64::ONE,
            _ => -Complex64::I,
        };
        let mut acc = Complex64::ZERO;
        for (c, &amp) in self.amps.iter().enumerate() {
            let phase = if (c & z_mask).count_ones().is_multiple_of(2) {
                iy
            } else {
                -iy
            };
            let dst = c ^ x_mask;
            acc += self.amps[dst].conj() * phase * amp;
        }
        acc.re
    }

    /// Analytic expectation of a Pauli-sum Hamiltonian.
    ///
    /// # Panics
    ///
    /// Panics on width mismatch.
    pub fn expectation(&self, h: &PauliSum) -> f64 {
        h.terms()
            .iter()
            .map(|(c, s)| c * self.pauli_expectation(s))
            .sum()
    }

    /// Inner product `<self|other>`.
    ///
    /// # Panics
    ///
    /// Panics on width mismatch.
    pub fn inner_product(&self, other: &StateVector) -> Complex64 {
        assert_eq!(self.n_qubits, other.n_qubits, "width mismatch");
        self.amps
            .iter()
            .zip(other.amps.iter())
            .map(|(a, b)| a.conj() * *b)
            .sum()
    }

    /// State fidelity `|<self|other>|^2`.
    pub fn fidelity(&self, other: &StateVector) -> f64 {
        self.inner_product(other).norm_sqr()
    }

    /// Appends basis-change gates so a subsequent Z-basis measurement
    /// measures each qubit in the basis given by `basis[q]`:
    /// H for X, S-dagger then H for Y, nothing for Z/I.
    pub fn rotate_to_basis(&mut self, basis: &[Pauli]) {
        assert_eq!(basis.len(), self.n_qubits, "basis width");
        for (q, &p) in basis.iter().enumerate() {
            match p {
                Pauli::X => {
                    self.apply_gate(Gate::H, &[q]).expect("fixed gate");
                }
                Pauli::Y => {
                    self.apply_gate(Gate::Sdg, &[q]).expect("fixed gate");
                    self.apply_gate(Gate::H, &[q]).expect("fixed gate");
                }
                Pauli::Z | Pauli::I => {}
            }
        }
    }
}

pub mod reference {
    //! The legacy (pre-compilation) expectation kernels, kept verbatim.
    //!
    //! These are the semantics baseline for the fused
    //! [`crate::CompiledObservable`] kernel and the hoisted-phase
    //! [`StateVector::pauli_expectation`]: one full `2^n` sweep per
    //! Hamiltonian term, with the `i^y` phase recomputed inside the inner
    //! loop and zero amplitudes skipped. Slow by design — the
    //! `compiled_equivalence` proptest suite pins the fast paths to these
    //! to `<= 1e-12`.

    use super::StateVector;
    use crate::pauli::{PauliString, PauliSum};
    use qismet_mathkit::Complex64;

    /// Pre-optimization `<psi| P |psi>`, bit-identical to the original
    /// per-term kernel.
    ///
    /// # Panics
    ///
    /// Panics on width mismatch.
    pub fn pauli_expectation(sv: &StateVector, p: &PauliString) -> f64 {
        assert_eq!(p.n_qubits(), sv.n_qubits, "pauli width");
        let x_mask = p.x_mask() as usize;
        let z_mask = p.z_mask() as usize;
        let y_count = p.y_count();
        let mut acc = Complex64::ZERO;
        for (c, &amp) in sv.amps.iter().enumerate() {
            if amp == Complex64::ZERO {
                continue;
            }
            let sign_bits = (c & z_mask).count_ones();
            let mut phase = if sign_bits.is_multiple_of(2) {
                Complex64::ONE
            } else {
                -Complex64::ONE
            };
            // Global i^y factor, recomputed per amplitude as the original
            // kernel did.
            phase *= match y_count % 4 {
                0 => Complex64::ONE,
                1 => Complex64::I,
                2 => -Complex64::ONE,
                _ => -Complex64::I,
            };
            let dst = c ^ x_mask;
            acc += sv.amps[dst].conj() * phase * amp;
        }
        acc.re
    }

    /// Pre-optimization `<psi| H |psi>`: one full state sweep per term.
    ///
    /// # Panics
    ///
    /// Panics on width mismatch.
    pub fn expectation(sv: &StateVector, h: &PauliSum) -> f64 {
        h.terms()
            .iter()
            .map(|(c, s)| c * pauli_expectation(sv, s))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gate::Param;
    use qismet_mathkit::rng_from_seed;

    const TOL: f64 = 1e-12;

    #[test]
    fn initial_state_is_zero_ket() {
        let sv = StateVector::new(3);
        assert_eq!(sv.amplitudes()[0], Complex64::ONE);
        assert!((sv.norm_sqr() - 1.0).abs() < TOL);
    }

    #[test]
    fn x_flips() {
        let mut sv = StateVector::new(2);
        sv.apply_gate(Gate::X, &[1]).unwrap();
        // |q1 q0> = |10> -> index 2.
        assert!(sv.amplitudes()[2].approx_eq(Complex64::ONE, TOL));
    }

    #[test]
    fn hadamard_makes_uniform() {
        let mut c = Circuit::new(3);
        for q in 0..3 {
            c.h(q);
        }
        let sv = StateVector::from_circuit(&c).unwrap();
        for p in sv.probabilities() {
            assert!((p - 0.125).abs() < TOL);
        }
    }

    #[test]
    fn bell_state_amplitudes() {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1);
        let sv = StateVector::from_circuit(&c).unwrap();
        let f = std::f64::consts::FRAC_1_SQRT_2;
        assert!(sv.amplitudes()[0].approx_eq(Complex64::from_re(f), TOL));
        assert!(sv.amplitudes()[3].approx_eq(Complex64::from_re(f), TOL));
        assert!(sv.amplitudes()[1].approx_eq(Complex64::ZERO, TOL));
        assert!(sv.amplitudes()[2].approx_eq(Complex64::ZERO, TOL));
    }

    #[test]
    fn ghz_state_via_chain() {
        let mut c = Circuit::new(4);
        c.h(0);
        for q in 0..3 {
            c.cx(q, q + 1);
        }
        let sv = StateVector::from_circuit(&c).unwrap();
        let probs = sv.probabilities();
        assert!((probs[0] - 0.5).abs() < TOL);
        assert!((probs[15] - 0.5).abs() < TOL);
    }

    #[test]
    fn norm_preserved_by_random_circuit() {
        let mut c = Circuit::new(5);
        let mut rng = rng_from_seed(3);
        for layer in 0..10 {
            for q in 0..5 {
                c.ry(rng.gen::<f64>() * std::f64::consts::TAU, q);
                c.rz(rng.gen::<f64>() * std::f64::consts::TAU, q);
            }
            for q in 0..4 {
                if (layer + q) % 2 == 0 {
                    c.cx(q, q + 1);
                } else {
                    c.cz(q, q + 1);
                }
            }
        }
        let sv = StateVector::from_circuit(&c).unwrap();
        assert!((sv.norm_sqr() - 1.0).abs() < 1e-10);
    }

    #[test]
    fn gate_matrix_paths_agree() {
        // Apply SWAP via the dedicated path and via CX decomposition.
        let mut a = StateVector::new(3);
        let mut rngc = Circuit::new(3);
        rngc.h(0).rz(0.3, 0).ry(1.1, 1).h(2).cx(0, 2);
        a.apply_circuit(&rngc).unwrap();
        let mut b = a.clone();

        a.apply_gate(Gate::Swap, &[0, 2]).unwrap();
        // SWAP = CX(0,2) CX(2,0) CX(0,2).
        b.apply_gate(Gate::Cx, &[0, 2]).unwrap();
        b.apply_gate(Gate::Cx, &[2, 0]).unwrap();
        b.apply_gate(Gate::Cx, &[0, 2]).unwrap();
        assert!(a.fidelity(&b) > 1.0 - 1e-12);
    }

    #[test]
    fn rzz_matches_cx_rz_cx() {
        let theta = 0.77;
        let mut prep = Circuit::new(2);
        prep.h(0).ry(0.4, 1);
        let mut a = StateVector::from_circuit(&prep).unwrap();
        let mut b = a.clone();
        a.apply_gate(Gate::Rzz(theta.into()), &[0, 1]).unwrap();
        // RZZ(theta) = CX(0,1) RZ(theta on q1) CX(0,1).
        b.apply_gate(Gate::Cx, &[0, 1]).unwrap();
        b.apply_gate(Gate::Rz(theta.into()), &[1]).unwrap();
        b.apply_gate(Gate::Cx, &[0, 1]).unwrap();
        assert!(a.fidelity(&b) > 1.0 - 1e-12);
    }

    #[test]
    fn pauli_expectation_bell_state() {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1);
        let sv = StateVector::from_circuit(&c).unwrap();
        let zz = PauliString::from_label("ZZ").unwrap();
        let xx = PauliString::from_label("XX").unwrap();
        let yy = PauliString::from_label("YY").unwrap();
        let zi = PauliString::from_label("ZI").unwrap();
        assert!((sv.pauli_expectation(&zz) - 1.0).abs() < TOL);
        assert!((sv.pauli_expectation(&xx) - 1.0).abs() < TOL);
        assert!((sv.pauli_expectation(&yy) + 1.0).abs() < TOL);
        assert!(sv.pauli_expectation(&zi).abs() < TOL);
    }

    #[test]
    fn pauli_expectation_matches_dense_matrix() {
        let mut c = Circuit::new(3);
        c.h(0).ry(0.9, 1).cx(0, 1).rz(0.4, 2).cx(1, 2).rx(1.3, 0);
        let sv = StateVector::from_circuit(&c).unwrap();
        for label in ["XYZ", "ZZI", "IXY", "YYY", "XIX", "IIZ"] {
            let p = PauliString::from_label(label).unwrap();
            let dense = p.to_matrix();
            let want = dense.expectation(sv.amplitudes()).re;
            let got = sv.pauli_expectation(&p);
            assert!(
                (want - got).abs() < 1e-10,
                "{label}: dense {want} vs fast {got}"
            );
        }
    }

    #[test]
    fn hamiltonian_expectation_bounded_by_one_norm() {
        let h = PauliSum::from_labels(&[(1.0, "XIX"), (1.0, "ZZI")]).unwrap();
        let mut c = Circuit::new(3);
        c.ry(0.3, 0).ry(1.2, 1).cx(0, 1).ry(2.2, 2);
        let sv = StateVector::from_circuit(&c).unwrap();
        let e = sv.expectation(&h);
        assert!(e.abs() <= h.one_norm() + TOL);
    }

    /// Pre-optimization reference kernels (the original branch-over-all-2^n
    /// loops), kept verbatim so the stride-skipping specializations can be
    /// regression-tested for exact bit identity.
    mod reference {
        use super::*;

        pub fn apply_cx(sv: &mut StateVector, control: usize, target: usize) {
            let cbit = 1usize << control;
            let tbit = 1usize << target;
            for i in 0..sv.amps.len() {
                if i & cbit != 0 && i & tbit == 0 {
                    sv.amps.swap(i, i | tbit);
                }
            }
        }

        pub fn apply_cz(sv: &mut StateVector, a: usize, b: usize) {
            let abit = 1usize << a;
            let bbit = 1usize << b;
            for i in 0..sv.amps.len() {
                if i & abit != 0 && i & bbit != 0 {
                    sv.amps[i] = -sv.amps[i];
                }
            }
        }

        pub fn apply_swap(sv: &mut StateVector, a: usize, b: usize) {
            let abit = 1usize << a;
            let bbit = 1usize << b;
            for i in 0..sv.amps.len() {
                if i & abit != 0 && i & bbit == 0 {
                    sv.amps.swap(i, (i & !abit) | bbit);
                }
            }
        }

        pub fn apply_rzz(sv: &mut StateVector, theta: f64, a: usize, b: usize) {
            let abit = 1usize << a;
            let bbit = 1usize << b;
            let minus = Complex64::cis(-theta / 2.0);
            let plus = Complex64::cis(theta / 2.0);
            for i in 0..sv.amps.len() {
                let pa = i & abit != 0;
                let pb = i & bbit != 0;
                sv.amps[i] *= if pa == pb { minus } else { plus };
            }
        }
    }

    /// A dense random state for kernel regression tests.
    fn random_state(n: usize, seed: u64) -> StateVector {
        let mut c = Circuit::new(n);
        let mut rng = rng_from_seed(seed);
        for _ in 0..3 {
            for q in 0..n {
                c.ry(rng.gen::<f64>() * std::f64::consts::TAU, q);
                c.rz(rng.gen::<f64>() * std::f64::consts::TAU, q);
            }
            for q in 0..n - 1 {
                c.cx(q, q + 1);
            }
        }
        StateVector::from_circuit(&c).unwrap()
    }

    #[test]
    fn two_qubit_kernels_bit_identical_to_reference() {
        for n in [2usize, 3, 5, 7] {
            let mut seed = 100;
            for a in 0..n {
                for b in 0..n {
                    if a == b {
                        continue;
                    }
                    seed += 1;
                    let base = random_state(n, seed);
                    let theta = 0.1 + 0.37 * seed as f64;

                    let mut fast = base.clone();
                    let mut slow = base.clone();
                    fast.apply_cx(a, b);
                    reference::apply_cx(&mut slow, a, b);
                    assert_eq!(fast.amps, slow.amps, "cx({a},{b}) on {n}q");

                    let mut fast = base.clone();
                    let mut slow = base.clone();
                    fast.apply_cz(a, b);
                    reference::apply_cz(&mut slow, a, b);
                    assert_eq!(fast.amps, slow.amps, "cz({a},{b}) on {n}q");

                    let mut fast = base.clone();
                    let mut slow = base.clone();
                    fast.apply_swap(a, b);
                    reference::apply_swap(&mut slow, a, b);
                    assert_eq!(fast.amps, slow.amps, "swap({a},{b}) on {n}q");

                    let mut fast = base.clone();
                    let mut slow = base.clone();
                    fast.apply_rzz(theta, a, b);
                    reference::apply_rzz(&mut slow, theta, a, b);
                    assert_eq!(fast.amps, slow.amps, "rzz({a},{b}) on {n}q");
                }
            }
        }
    }

    #[test]
    fn hoisted_phase_expectation_matches_legacy_kernel() {
        // The optimized pauli_expectation (i^y hoisted, no zero-skip) against
        // the retained legacy kernel, including sparse states with exact
        // zeros (Bell/GHZ) where the dropped branch could matter.
        let mut ghz = Circuit::new(4);
        ghz.h(0);
        for q in 0..3 {
            ghz.cx(q, q + 1);
        }
        let sparse = StateVector::from_circuit(&ghz).unwrap();
        let dense = random_state(4, 77);
        for label in [
            "ZZZZ", "XXXX", "YYII", "XYZI", "IIII", "YIYI", "ZXIY", "IIZX",
        ] {
            let p = PauliString::from_label(label).unwrap();
            for sv in [&sparse, &dense] {
                let fast = sv.pauli_expectation(&p);
                let slow = super::reference::pauli_expectation(sv, &p);
                assert!((fast - slow).abs() < TOL, "{label}: {fast} vs {slow}");
            }
        }
        let h = PauliSum::from_labels(&[(0.7, "XIXI"), (-1.2, "ZZII"), (0.4, "YYYI")]).unwrap();
        let fast = dense.expectation(&h);
        let slow = super::reference::expectation(&dense, &h);
        assert!((fast - slow).abs() < TOL);
    }

    #[test]
    fn sample_counts_pinned_regression() {
        // Exact counts produced by the pre-optimization implementation for
        // this seeded RNG; the single-pass/reused-buffer path must keep the
        // RNG consumption and CDF values bit-identical.
        let mut c = Circuit::new(4);
        c.h(0)
            .ry(0.7, 1)
            .cx(0, 1)
            .rz(0.3, 2)
            .cx(1, 2)
            .ry(1.1, 3)
            .cx(2, 3);
        let sv = StateVector::from_circuit(&c).unwrap();
        let mut rng = rng_from_seed(0xc0de);
        let counts = sv.sample_counts(&mut rng, 1000);
        let mut got: Vec<(u64, u64)> = counts.iter().collect();
        got.sort_unstable();
        let want = [
            (0u64, 318u64),
            (1, 44),
            (6, 10),
            (7, 121),
            (8, 113),
            (9, 16),
            (14, 44),
            (15, 334),
        ];
        assert_eq!(got, want);
    }

    #[test]
    fn sample_counts_into_reuses_buffer_and_matches() {
        let sv = random_state(5, 9);
        let mut rng_a = rng_from_seed(21);
        let mut rng_b = rng_from_seed(21);
        let mut buf = Vec::new();
        let direct = sv.sample_counts(&mut rng_a, 4096);
        let buffered = sv.sample_counts_into(&mut rng_b, 4096, &mut buf);
        assert_eq!(buf.len(), 32);
        let cap = buf.capacity();
        let mut pairs_a: Vec<_> = direct.iter().collect();
        let mut pairs_b: Vec<_> = buffered.iter().collect();
        pairs_a.sort_unstable();
        pairs_b.sort_unstable();
        assert_eq!(pairs_a, pairs_b);
        // Second call reuses the allocation.
        let mut rng_c = rng_from_seed(22);
        sv.sample_counts_into(&mut rng_c, 64, &mut buf);
        assert_eq!(buf.capacity(), cap);
    }

    #[test]
    fn sampling_matches_probabilities() {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1);
        let sv = StateVector::from_circuit(&c).unwrap();
        let mut rng = rng_from_seed(11);
        let counts = sv.sample_counts(&mut rng, 40_000);
        assert_eq!(counts.shots(), 40_000);
        assert!((counts.probability(0) - 0.5).abs() < 0.02);
        assert!((counts.probability(3) - 0.5).abs() < 0.02);
        assert_eq!(counts.count(1), 0);
        assert_eq!(counts.count(2), 0);
    }

    #[test]
    fn basis_rotation_measures_x() {
        // |+> measured in X basis is deterministic.
        let mut c = Circuit::new(1);
        c.h(0);
        let mut sv = StateVector::from_circuit(&c).unwrap();
        sv.rotate_to_basis(&[Pauli::X]);
        let probs = sv.probabilities();
        assert!((probs[0] - 1.0).abs() < TOL);
    }

    #[test]
    fn basis_rotation_measures_y() {
        // S|+> = |+i>, eigenstate of Y.
        let mut c = Circuit::new(1);
        c.h(0).s(0);
        let mut sv = StateVector::from_circuit(&c).unwrap();
        sv.rotate_to_basis(&[Pauli::Y]);
        let probs = sv.probabilities();
        assert!((probs[0] - 1.0).abs() < TOL);
    }

    #[test]
    fn unbound_circuit_is_error() {
        let mut c = Circuit::new(1);
        c.ry(Param::Free(0), 0);
        assert!(StateVector::from_circuit(&c).is_err());
    }

    #[test]
    fn sampled_parity_approximates_analytic_expectation() {
        let mut c = Circuit::new(3);
        c.ry(0.7, 0).cx(0, 1).ry(0.2, 2).cx(1, 2);
        let sv = StateVector::from_circuit(&c).unwrap();
        let p = PauliString::from_label("ZZZ").unwrap();
        let analytic = sv.pauli_expectation(&p);
        let mut rng = rng_from_seed(5);
        let counts = sv.sample_counts(&mut rng, 60_000);
        let sampled = counts.parity_expectation(0b111);
        assert!((analytic - sampled).abs() < 0.02);
    }
}

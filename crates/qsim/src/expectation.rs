//! Shot-based estimation of Pauli-sum expectation values.
//!
//! This is the measurement pipeline a real VQE runs (Fig. 8 of the paper):
//! the Hamiltonian is split into qubit-wise commuting groups, the ansatz
//! circuit is extended with basis-change gates per group, the rotated circuit
//! is sampled, and each term's expectation is a parity average over the
//! counts.

use crate::circuit::Circuit;
use crate::counts::Counts;
use crate::gate::GateError;
use crate::pauli::{Pauli, PauliSum};
use crate::statevector::StateVector;
use rand::Rng;

/// The measurement plan for one qubit-wise commuting group.
#[derive(Debug, Clone)]
pub struct MeasurementGroup {
    /// Indices into the Hamiltonian's term list.
    pub term_indices: Vec<usize>,
    /// Per-qubit measurement basis.
    pub basis: Vec<Pauli>,
}

/// A compiled measurement plan for a Hamiltonian.
#[derive(Debug, Clone)]
pub struct MeasurementPlan {
    groups: Vec<MeasurementGroup>,
    identity_offset: f64,
}

impl MeasurementPlan {
    /// Compiles the qubit-wise commuting grouping for `h`.
    pub fn compile(h: &PauliSum) -> Self {
        let groups = h
            .measurement_groups()
            .into_iter()
            .map(|idxs| {
                let basis = h.group_basis(&idxs);
                MeasurementGroup {
                    term_indices: idxs,
                    basis,
                }
            })
            .collect();
        MeasurementPlan {
            groups,
            identity_offset: h.identity_coefficient(),
        }
    }

    /// The measurement groups.
    pub fn groups(&self) -> &[MeasurementGroup] {
        &self.groups
    }

    /// Constant (identity-term) energy offset.
    pub fn identity_offset(&self) -> f64 {
        self.identity_offset
    }

    /// Number of distinct circuits one energy evaluation requires.
    pub fn n_circuits(&self) -> usize {
        self.groups.len()
    }
}

/// Builds the basis-rotation suffix circuit for a group.
pub fn basis_change_circuit(n_qubits: usize, basis: &[Pauli]) -> Circuit {
    let mut c = Circuit::new(n_qubits);
    for (q, &p) in basis.iter().enumerate() {
        match p {
            Pauli::X => {
                c.h(q);
            }
            Pauli::Y => {
                c.sdg(q).h(q);
            }
            Pauli::Z | Pauli::I => {}
        }
    }
    c
}

/// Estimates the energy of `h` on the state prepared by `circuit`, using
/// `shots` measurement shots per group, sampled exactly from the ideal
/// state vector.
///
/// Returns the estimate along with the per-group counts (which noisy
/// backends post-process for readout errors).
///
/// # Errors
///
/// [`GateError::UnboundParameter`] if the circuit is unbound.
///
/// # Panics
///
/// Panics on width mismatch between circuit and Hamiltonian.
pub fn estimate_energy_sampled<R: Rng + ?Sized>(
    circuit: &Circuit,
    h: &PauliSum,
    shots: u64,
    rng: &mut R,
) -> Result<(f64, Vec<Counts>), GateError> {
    assert_eq!(circuit.n_qubits(), h.n_qubits(), "width mismatch");
    let plan = MeasurementPlan::compile(h);
    let base = StateVector::from_circuit(circuit)?;
    let mut energy = plan.identity_offset();
    let mut all_counts = Vec::with_capacity(plan.groups().len());
    // One CDF scratch buffer shared across the measurement groups.
    let mut cdf = Vec::new();
    for group in plan.groups() {
        let mut sv = base.clone();
        sv.rotate_to_basis(&group.basis);
        let counts = sv.sample_counts_into(rng, shots, &mut cdf);
        energy += group_energy_from_counts(h, group, &counts);
        all_counts.push(counts);
    }
    Ok((energy, all_counts))
}

/// Sums the contribution of one measurement group's terms given counts taken
/// in the group's basis.
pub fn group_energy_from_counts(h: &PauliSum, group: &MeasurementGroup, counts: &Counts) -> f64 {
    let mut acc = 0.0;
    for &idx in &group.term_indices {
        let (coeff, string) = &h.terms()[idx];
        // After basis rotation, the term measures as a Z-parity over its
        // non-identity support.
        let mut mask = 0u64;
        for q in 0..string.n_qubits() {
            if string.pauli(q) != Pauli::I {
                mask |= 1 << q;
            }
        }
        acc += coeff * counts.parity_expectation(mask);
    }
    acc
}

/// Exact (infinite-shot) energy from the state vector — the reference the
/// sampled estimate converges to.
///
/// # Errors
///
/// [`GateError::UnboundParameter`] if the circuit is unbound.
pub fn exact_energy(circuit: &Circuit, h: &PauliSum) -> Result<f64, GateError> {
    let sv = StateVector::from_circuit(circuit)?;
    Ok(sv.expectation(h))
}

#[cfg(test)]
mod tests {
    use super::*;
    use qismet_mathkit::rng_from_seed;

    fn paper_hamiltonian() -> PauliSum {
        // H = XIX + ZZI, the example in Fig. 8.
        PauliSum::from_labels(&[(1.0, "XIX"), (1.0, "ZZI")]).unwrap()
    }

    #[test]
    fn plan_groups_and_offset() {
        let h = PauliSum::from_labels(&[(0.5, "III"), (1.0, "XIX"), (1.0, "ZZI")]).unwrap();
        let plan = MeasurementPlan::compile(&h);
        assert_eq!(plan.identity_offset(), 0.5);
        assert_eq!(plan.n_circuits(), 2);
    }

    #[test]
    fn basis_change_gate_counts() {
        let c = basis_change_circuit(3, &[Pauli::X, Pauli::Z, Pauli::Y]);
        // X -> 1 gate (H), Z -> none, Y -> 2 gates (Sdg, H).
        assert_eq!(c.len(), 3);
    }

    #[test]
    fn sampled_energy_converges_to_exact() {
        let h = paper_hamiltonian();
        let mut c = Circuit::new(3);
        c.ry(0.8, 0).cx(0, 1).ry(1.9, 1).cx(1, 2).ry(0.3, 2);
        let exact = exact_energy(&c, &h).unwrap();
        let mut rng = rng_from_seed(23);
        let (est, counts) = estimate_energy_sampled(&c, &h, 200_000, &mut rng).unwrap();
        assert_eq!(counts.len(), 2);
        assert!((est - exact).abs() < 0.02, "sampled {est} vs exact {exact}");
    }

    #[test]
    fn sampled_energy_with_y_terms() {
        let h = PauliSum::from_labels(&[(0.7, "YY"), (-0.3, "ZI")]).unwrap();
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1).rz(0.6, 1);
        let exact = exact_energy(&c, &h).unwrap();
        let mut rng = rng_from_seed(29);
        let (est, _) = estimate_energy_sampled(&c, &h, 200_000, &mut rng).unwrap();
        assert!((est - exact).abs() < 0.02, "sampled {est} vs exact {exact}");
    }

    #[test]
    fn shot_noise_scales_inverse_sqrt() {
        let h = paper_hamiltonian();
        let mut c = Circuit::new(3);
        c.ry(1.0, 0).ry(0.5, 1).ry(0.25, 2).cx(0, 1).cx(1, 2);
        let exact = exact_energy(&c, &h).unwrap();
        let spread = |shots: u64, seed: u64| {
            let mut errs = Vec::new();
            for k in 0..24 {
                let mut rng = rng_from_seed(seed + k);
                let (est, _) = estimate_energy_sampled(&c, &h, shots, &mut rng).unwrap();
                errs.push((est - exact).abs());
            }
            qismet_mathkit::mean(&errs)
        };
        let coarse = spread(256, 100);
        let fine = spread(16384, 200);
        // 64x the shots should shrink error by ~8x; accept >3x to stay robust.
        assert!(
            coarse > 3.0 * fine,
            "coarse {coarse} should exceed 3x fine {fine}"
        );
    }

    #[test]
    fn identity_only_hamiltonian_needs_no_shots() {
        let h = PauliSum::from_labels(&[(2.5, "II")]).unwrap();
        let c = Circuit::new(2);
        let mut rng = rng_from_seed(5);
        let (est, counts) = estimate_energy_sampled(&c, &h, 10, &mut rng).unwrap();
        assert_eq!(est, 2.5);
        assert!(counts.is_empty());
    }

    #[test]
    fn group_energy_sign_convention() {
        // State |11>: <ZZ> = +1, <ZI> = -1.
        let h = PauliSum::from_labels(&[(1.0, "ZZ"), (1.0, "ZI"), (1.0, "IZ")]).unwrap();
        let plan = MeasurementPlan::compile(&h);
        assert_eq!(plan.n_circuits(), 1);
        let counts = Counts::from_pairs(2, [(0b11, 1000)]);
        let e = group_energy_from_counts(&h, &plan.groups()[0], &counts);
        // ZZ: +1, ZI: -1, IZ: -1 -> total -1.
        assert!((e + 1.0).abs() < 1e-12);
    }
}

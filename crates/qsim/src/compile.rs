//! Circuit and observable compilation: the allocation-free hot path.
//!
//! Every VQA campaign is thousands of optimizer iterations, each dominated
//! by objective evaluations of the *same* ansatz at different angles. The
//! interpreted path pays per evaluation for work that only depends on the
//! circuit's structure: binding a fresh [`Circuit`], dispatching gate by
//! gate through an enum match, materializing heap-allocated gate matrices,
//! and sweeping the full state once per Hamiltonian term. This module
//! hoists all of that to compile time:
//!
//! * [`CompiledCircuit`] lowers a [`Circuit`] once into a flat op-list with
//!   fused single-qubit runs and in-place parameter rebinding, so evaluating
//!   a new parameter point recomputes a handful of stack-allocated 2x2
//!   matrices and nothing else.
//! * [`CompiledObservable`] lowers a [`PauliSum`] once into a fused
//!   expectation kernel: all diagonal (Z/I-only) terms are evaluated in one
//!   shared probability sweep, and each off-diagonal term uses precomputed
//!   x/z masks, a hoisted `i^y` phase, and Hermitian pair-skipping (half the
//!   state per term).
//!
//! The legacy per-term kernels are preserved in
//! [`crate::statevector::reference`]; the compiled kernels agree with them
//! to `<= 1e-12` (pinned by the `compiled_equivalence` proptest suite).
//! Gate application itself reuses the exact stride-skipping kernels of
//! [`StateVector`], so two backends executing the same plan produce
//! bit-identical results.

use crate::circuit::Circuit;
use crate::gate::{Gate, GateError, Param};
use crate::kernels::{self, Mat2};
use crate::pauli::PauliSum;
use crate::statevector::StateVector;
use qismet_mathkit::Complex64;

const ID2: Mat2 = [
    [Complex64::ONE, Complex64::ZERO],
    [Complex64::ZERO, Complex64::ONE],
];

/// `a * b` for 2x2 complex matrices, entirely on the stack.
fn mul2(a: &Mat2, b: &Mat2) -> Mat2 {
    [
        [
            a[0][0] * b[0][0] + a[0][1] * b[1][0],
            a[0][0] * b[0][1] + a[0][1] * b[1][1],
        ],
        [
            a[1][0] * b[0][0] + a[1][1] * b[1][0],
            a[1][0] * b[0][1] + a[1][1] * b[1][1],
        ],
    ]
}

/// The 2x2 matrix of a one-qubit gate with free parameters resolved from
/// `params`, built without heap allocation. The entries match
/// [`Gate::matrix`] bit for bit so fused and interpreted execution differ
/// only in multiplication order.
fn gate_mat2(gate: Gate, params: &[f64]) -> Result<Mat2, GateError> {
    use Complex64 as C;
    let angle = |p: Param| -> Result<f64, GateError> {
        match p {
            Param::Fixed(v) => Ok(v),
            Param::Free(k) => params.get(k).copied().ok_or(GateError::UnboundParameter),
        }
    };
    let f = std::f64::consts::FRAC_1_SQRT_2;
    Ok(match gate {
        Gate::H => [
            [C::from_re(f), C::from_re(f)],
            [C::from_re(f), C::from_re(-f)],
        ],
        Gate::X => [[C::ZERO, C::ONE], [C::ONE, C::ZERO]],
        Gate::Y => [[C::ZERO, -C::I], [C::I, C::ZERO]],
        Gate::Z => [[C::ONE, C::ZERO], [C::ZERO, -C::ONE]],
        Gate::S => [[C::ONE, C::ZERO], [C::ZERO, C::I]],
        Gate::Sdg => [[C::ONE, C::ZERO], [C::ZERO, -C::I]],
        Gate::T => [
            [C::ONE, C::ZERO],
            [C::ZERO, C::cis(std::f64::consts::FRAC_PI_4)],
        ],
        Gate::Tdg => [
            [C::ONE, C::ZERO],
            [C::ZERO, C::cis(-std::f64::consts::FRAC_PI_4)],
        ],
        Gate::Sx => [
            [C::new(0.5, 0.5), C::new(0.5, -0.5)],
            [C::new(0.5, -0.5), C::new(0.5, 0.5)],
        ],
        Gate::Rx(p) => {
            let t = angle(p)? / 2.0;
            let (s, c) = t.sin_cos();
            [
                [C::from_re(c), C::new(0.0, -s)],
                [C::new(0.0, -s), C::from_re(c)],
            ]
        }
        Gate::Ry(p) => {
            let t = angle(p)? / 2.0;
            let (s, c) = t.sin_cos();
            [
                [C::from_re(c), C::from_re(-s)],
                [C::from_re(s), C::from_re(c)],
            ]
        }
        Gate::Rz(p) => {
            let t = angle(p)? / 2.0;
            [[C::cis(-t), C::ZERO], [C::ZERO, C::cis(t)]]
        }
        Gate::Phase(p) => [[C::ONE, C::ZERO], [C::ZERO, C::cis(angle(p)?)]],
        Gate::Cx | Gate::Cz | Gate::Swap | Gate::Rzz(_) => {
            unreachable!("two-qubit gate has no 2x2 matrix")
        }
    })
}

/// `true` for gates whose 2x2 matrix is real for **any** angle, so a fused
/// segment of them stays real across every rebinding and can run on the
/// halved-multiply real kernel.
fn gate_is_real(g: Gate) -> bool {
    matches!(g, Gate::H | Gate::X | Gate::Z | Gate::Ry(_))
}

/// Resolves a parameter against the binding vector.
fn param_value(p: Param, values: &[f64]) -> Result<f64, GateError> {
    match p {
        Param::Fixed(v) => Ok(v),
        Param::Free(k) => values.get(k).copied().ok_or(GateError::UnboundParameter),
    }
}

/// Widest qubit support a lowered CX/CZ/SWAP/RZZ ladder table may span
/// (table size `2^s`; 8 qubits = 256 entries — the most a `u8` local
/// configuration index can address, and still L1 resident). The wide cap
/// lets a full linear-entanglement ladder lower into **one** table pass:
/// contiguous supports take the block-permutation kernel, which moves
/// `2^shift`-amplitude blocks instead of gathering single amplitudes.
const LADDER_MAX_QUBITS: usize = 8;

/// Minimum state width for the real-amplitude run mode: below this the
/// thread-local scratch borrow and the complex write-back pass cost more
/// than the halved sweeps save.
pub(crate) const REAL_RUN_MIN_QUBITS: usize = 6;

thread_local! {
    /// Per-thread real-amplitude state for plans where
    /// [`CompiledCircuit::runs_real`] holds: grown on demand, reused across
    /// runs, written back into the caller's [`StateVector`] at the end of
    /// each run.
    static REAL_STATE: core::cell::RefCell<Vec<f64>> =
        const { core::cell::RefCell::new(Vec::new()) };
}

/// Minimum state width for in-state thread parallelism: below 2^15
/// amplitudes a full sweep takes microseconds and thread dispatch would
/// dominate. The threshold only gates a performance choice — sequential and
/// threaded paths are bitwise identical either way.
#[cfg(feature = "parallel")]
const PARALLEL_MIN_QUBITS: usize = 15;

/// Maximum superoperator support (dense `2^k x 2^k` matrices; k = 3 keeps
/// the 8x8 matrix and its 8-amplitude orbit in registers).
const SUPEROP_MAX_QUBITS: usize = 3;

/// Minimum state width for fusing **parameterized** content into dense
/// superops. A free angle inside a superop makes every rebind pay an
/// `O(gates * 2^2k)` matrix rebuild; below this width the state sweep is so
/// cheap (L1-resident) that the rebuild dominates the objective evaluation,
/// so small plans keep free angles in 2x2 fused segments / specialized RZZ
/// slots instead (trig-only rebinds). Angle-free content (Clifford
/// preludes, fixed-angle circuits) fuses densely at every width — its
/// matrices are built once at compile time.
const DENSE_FUSION_MIN_QUBITS: usize = 12;

/// A constituent gate of a fused superop or ladder table, recorded with
/// **global** qubit indices so rebinding can rebuild the fused form without
/// any local-index bookkeeping (the support set is fixed once lowering
/// finishes, so global -> local translation is stable).
#[derive(Debug, Clone, Copy)]
enum LocalGate {
    /// One-qubit gate on wire `q`.
    OneQ { q: usize, g: Gate },
    /// CX with control `c`, target `t`.
    Cx { c: usize, t: usize },
    /// CZ on `a`, `b`.
    Cz { a: usize, b: usize },
    /// SWAP on `a`, `b`.
    Swap { a: usize, b: usize },
    /// RZZ on `a`, `b` with (possibly free) angle `p`.
    Rzz { a: usize, b: usize, p: Param },
}

impl LocalGate {
    fn is_free(&self) -> bool {
        matches!(
            self,
            LocalGate::OneQ {
                g: Gate::Rx(Param::Free(_))
                    | Gate::Ry(Param::Free(_))
                    | Gate::Rz(Param::Free(_))
                    | Gate::Phase(Param::Free(_)),
                ..
            } | LocalGate::Rzz {
                p: Param::Free(_),
                ..
            }
        )
    }

    fn is_real(&self) -> bool {
        match self {
            LocalGate::OneQ { g, .. } => gate_is_real(*g),
            LocalGate::Cx { .. } | LocalGate::Cz { .. } | LocalGate::Swap { .. } => true,
            LocalGate::Rzz { .. } => false,
        }
    }
}

/// A multi-qubit superoperator: adjacent gates on an overlapping qubit set
/// fused into one dense `2^k x 2^k` matrix (k <= [`SUPEROP_MAX_QUBITS`]),
/// applied in a single cache-blocked gather/scatter sweep.
#[derive(Debug, Clone)]
pub(crate) struct SuperOp {
    /// Support, global qubit indices, ascending.
    pub(crate) qubits: Vec<usize>,
    /// Row-major `2^k x 2^k` matrix over the local basis (local bit `j` =
    /// `qubits[j]`); only the top-left `2^k x 2^k` block of the fixed-size
    /// backing store is used.
    pub(crate) m: [Complex64; 64],
    /// All constituent gates are real-for-any-angle: the apply kernel skips
    /// the imaginary halves of the matrix entries (exact zeros).
    pub(crate) real: bool,
    /// Contains at least one free parameter (rebuilt on rebind).
    free: bool,
    /// Constituents in application order, global qubit indices.
    gates: Vec<LocalGate>,
}

impl SuperOp {
    pub(crate) fn k(&self) -> usize {
        self.qubits.len()
    }

    fn local_bit(&self, q: usize) -> usize {
        let j = self
            .qubits
            .iter()
            .position(|&x| x == q)
            .expect("qubit in superop support");
        1usize << j
    }

    /// Rebuilds the dense matrix from the constituent gates: start from the
    /// identity and absorb each gate as a row operation (butterfly for 1q
    /// gates, row swap/scale for the specialized 2q gates). This is
    /// O(gates * 2^(2k)) — far cheaper than chaining `2^k x 2^k` products —
    /// and allocation-free, which keeps rebinding on the objective hot path.
    fn rebuild(&mut self, values: &[f64]) -> Result<(), GateError> {
        let d = 1usize << self.k();
        self.m = [Complex64::ZERO; 64];
        for r in 0..d {
            self.m[r * d + r] = Complex64::ONE;
        }
        for gi in 0..self.gates.len() {
            match self.gates[gi] {
                LocalGate::OneQ { q, g } => {
                    let u = gate_mat2(g, values)?;
                    let lbit = self.local_bit(q);
                    for r0 in 0..d {
                        if r0 & lbit != 0 {
                            continue;
                        }
                        let r1 = r0 | lbit;
                        for c in 0..d {
                            let x = self.m[r0 * d + c];
                            let y = self.m[r1 * d + c];
                            self.m[r0 * d + c] = u[0][0] * x + u[0][1] * y;
                            self.m[r1 * d + c] = u[1][0] * x + u[1][1] * y;
                        }
                    }
                }
                LocalGate::Cx { c, t } => {
                    let (cbit, tbit) = (self.local_bit(c), self.local_bit(t));
                    for r in 0..d {
                        if r & cbit != 0 && r & tbit == 0 {
                            let r2 = r | tbit;
                            for col in 0..d {
                                self.m.swap(r * d + col, r2 * d + col);
                            }
                        }
                    }
                }
                LocalGate::Cz { a, b } => {
                    let (abit, bbit) = (self.local_bit(a), self.local_bit(b));
                    for r in 0..d {
                        if r & abit != 0 && r & bbit != 0 {
                            for col in 0..d {
                                self.m[r * d + col] = -self.m[r * d + col];
                            }
                        }
                    }
                }
                LocalGate::Swap { a, b } => {
                    let (abit, bbit) = (self.local_bit(a), self.local_bit(b));
                    for r in 0..d {
                        if r & abit != 0 && r & bbit == 0 {
                            let r2 = (r & !abit) | bbit;
                            for col in 0..d {
                                self.m.swap(r * d + col, r2 * d + col);
                            }
                        }
                    }
                }
                LocalGate::Rzz { a, b, p } => {
                    let theta = param_value(p, values)?;
                    let minus = Complex64::cis(-theta / 2.0);
                    let plus = Complex64::cis(theta / 2.0);
                    let (abit, bbit) = (self.local_bit(a), self.local_bit(b));
                    for r in 0..d {
                        let ph = if (r & abit != 0) == (r & bbit != 0) {
                            minus
                        } else {
                            plus
                        };
                        for col in 0..d {
                            self.m[r * d + col] *= ph;
                        }
                    }
                }
            }
        }
        Ok(())
    }
}

/// A lowered CX/CZ/SWAP/RZZ ladder: a pure index-permutation + diagonal
/// phase over its local support, precomputed into lookup tables and applied
/// in one sweep instead of one sweep per gate.
#[derive(Debug, Clone)]
pub(crate) struct PermTable {
    /// Support, global qubit indices, ascending.
    pub(crate) qubits: Vec<usize>,
    /// `1 << q` per support qubit, ascending (kernel orbit expansion).
    pub(crate) bits: Vec<usize>,
    /// Amplitude offset of each local configuration.
    pub(crate) offs: Vec<usize>,
    /// `src[l] = pi^-1(l)`: which local config lands on `l`.
    pub(crate) src: Vec<u8>,
    /// Output phase of local config `l`.
    pub(crate) phase: Vec<Complex64>,
    /// `Some(qubits[0])` when the support is a contiguous qubit run
    /// `[k, k+s)`: local config `l` then sits at amplitude offset
    /// `l << k` and every orbit is one contiguous region, so the kernel
    /// permutes `2^k`-amplitude blocks instead of gathering amplitudes
    /// through the `offs` indirection.
    pub(crate) contig_shift: Option<usize>,
    /// Identity permutation (CZ/RZZ-only ladder): in-place phase sweep.
    pub(crate) diagonal: bool,
    /// All phases exactly one (CX/SWAP-only ladder): pure permutation.
    pub(crate) unit: bool,
    /// Contains a free RZZ angle (tables are rebuilt on rebind).
    free: bool,
    /// Constituents in application order, global qubit indices.
    gates: Vec<LocalGate>,
}

impl PermTable {
    fn local_index(&self, q: usize) -> usize {
        self.qubits
            .iter()
            .position(|&x| x == q)
            .expect("qubit in table support")
    }

    /// Recomputes the permutation and phase tables by composing the
    /// constituent gates over the `2^s` local configurations
    /// (`pi' = g o pi`, `phase'(c) = phase(c) * phase_g(pi(c))`), then
    /// inverting into the gather form the kernel consumes.
    fn rebuild(&mut self, values: &[f64]) -> Result<(), GateError> {
        let s = self.qubits.len();
        let size = 1usize << s;
        let mut pi = [0u8; 1 << LADDER_MAX_QUBITS];
        let mut ph = [Complex64::ONE; 1 << LADDER_MAX_QUBITS];
        for (c, slot) in pi.iter_mut().enumerate().take(size) {
            *slot = c as u8;
        }
        ph[..size].fill(Complex64::ONE);
        for gi in 0..self.gates.len() {
            match self.gates[gi] {
                LocalGate::Cx { c, t } => {
                    let (cbit, tbit) = (1u8 << self.local_index(c), 1u8 << self.local_index(t));
                    for x in pi.iter_mut().take(size) {
                        if *x & cbit != 0 {
                            *x ^= tbit;
                        }
                    }
                }
                LocalGate::Swap { a, b } => {
                    let (abit, bbit) = (1u8 << self.local_index(a), 1u8 << self.local_index(b));
                    for x in pi.iter_mut().take(size) {
                        let pa = *x & abit != 0;
                        let pb = *x & bbit != 0;
                        if pa != pb {
                            *x ^= abit | bbit;
                        }
                    }
                }
                LocalGate::Cz { a, b } => {
                    let (abit, bbit) = (1u8 << self.local_index(a), 1u8 << self.local_index(b));
                    for (x, f) in pi.iter().zip(ph.iter_mut()).take(size) {
                        if *x & abit != 0 && *x & bbit != 0 {
                            *f = -*f;
                        }
                    }
                }
                LocalGate::Rzz { a, b, p } => {
                    let theta = param_value(p, values)?;
                    let minus = Complex64::cis(-theta / 2.0);
                    let plus = Complex64::cis(theta / 2.0);
                    let (abit, bbit) = (1u8 << self.local_index(a), 1u8 << self.local_index(b));
                    for (x, f) in pi.iter().zip(ph.iter_mut()).take(size) {
                        *f *= if (*x & abit != 0) == (*x & bbit != 0) {
                            minus
                        } else {
                            plus
                        };
                    }
                }
                LocalGate::OneQ { .. } => unreachable!("ladders hold only 2q perm/phase gates"),
            }
        }
        self.src.resize(size, 0);
        self.phase.resize(size, Complex64::ONE);
        for c in 0..size {
            let l = pi[c] as usize;
            self.src[l] = c as u8;
            self.phase[l] = ph[c];
        }
        self.diagonal = (0..size).all(|c| pi[c] as usize == c);
        self.unit = self.phase[..size].iter().all(|&f| f == Complex64::ONE);
        Ok(())
    }
}

/// One lowered operation of an execution plan.
#[derive(Debug, Clone, Copy)]
pub(crate) enum PlanOp {
    /// A (possibly fused) 2x2 unitary on one qubit.
    OneQ { qubit: usize, u: Mat2 },
    /// A (possibly fused) **real** 2x2 unitary on one qubit — the
    /// `RealAmplitudes`-family fast path (half the multiplies of the
    /// complex butterfly).
    OneQReal { qubit: usize, m: [[f64; 2]; 2] },
    /// Controlled-X.
    Cx { control: usize, target: usize },
    /// Controlled-Z.
    Cz { a: usize, b: usize },
    /// SWAP.
    Swap { a: usize, b: usize },
    /// ZZ interaction with precomputed diagonal phases.
    Rzz {
        a: usize,
        b: usize,
        plus: Complex64,
        minus: Complex64,
    },
    /// Dense k-qubit superoperator; indexes [`CompiledCircuit::supers`].
    Super { idx: usize },
    /// Precomputed permutation + phase ladder table; indexes
    /// [`CompiledCircuit::tables`].
    Table { idx: usize },
}

/// A rebindable slot: plan state that must be recomputed when the free
/// parameter vector changes.
#[derive(Debug, Clone, Copy)]
enum Slot {
    /// Fused single-qubit segment containing at least one free parameter;
    /// `seg` indexes the plan's constituent-gate lists.
    Fused { op: usize, seg: usize },
    /// RZZ whose angle is the free parameter `param`.
    Rzz { op: usize, param: usize },
    /// Superop containing at least one free angle (matrix rebuilt from its
    /// constituents on rebind).
    Super { idx: usize },
    /// Ladder table containing at least one free RZZ angle.
    Table { idx: usize },
}

/// A fused one-qubit segment accumulated during lowering. Segments stay
/// *unplaced* while pending: a wire's segment only commutes with operations
/// on other wires, so deferring placement until the wire is next touched
/// (or lowering ends) lets an entangler absorb the whole segment into a
/// superop with no identity placeholder left behind.
#[derive(Debug, Clone)]
struct Segment {
    gates: Vec<Gate>,
    free: bool,
}

/// Product of a fused segment's gate matrices (applied left to right),
/// seeded from the first gate so single-gate segments — the common case in
/// hardware-efficient ansatz layers — pay no identity multiply.
fn fused_mat2(gates: &[Gate], values: &[f64]) -> Result<Mat2, GateError> {
    let mut it = gates.iter();
    let mut u = match it.next() {
        Some(g) => gate_mat2(*g, values)?,
        None => ID2,
    };
    for g in it {
        u = mul2(&gate_mat2(*g, values)?, &u);
    }
    Ok(u)
}

/// Writes a fused matrix into a one-qubit plan op, dropping the (exactly
/// zero) imaginary parts when the op uses the real kernel.
fn write_one_q(op: &mut PlanOp, u: &Mat2) {
    match op {
        PlanOp::OneQ { u: slot, .. } => *slot = *u,
        PlanOp::OneQReal { m, .. } => {
            *m = [[u[0][0].re, u[0][1].re], [u[1][0].re, u[1][1].re]];
        }
        _ => unreachable!("not a one-qubit op"),
    }
}

fn kind_tag(g: Gate) -> u8 {
    match g {
        Gate::H => 0,
        Gate::X => 1,
        Gate::Y => 2,
        Gate::Z => 3,
        Gate::S => 4,
        Gate::Sdg => 5,
        Gate::T => 6,
        Gate::Tdg => 7,
        Gate::Sx => 8,
        Gate::Rx(_) => 9,
        Gate::Ry(_) => 10,
        Gate::Rz(_) => 11,
        Gate::Phase(_) => 12,
        Gate::Cx => 13,
        Gate::Cz => 14,
        Gate::Swap => 15,
        Gate::Rzz(_) => 16,
    }
}

/// A [`Circuit`] lowered into a flat, rebindable execution plan.
///
/// Compilation fuses runs of adjacent single-qubit gates on the same wire
/// (gates separated only by operations on *other* wires commute past them)
/// into one 2x2 unitary, precomputes every angle-independent matrix and
/// phase, and records a rebinding recipe for everything that depends on a
/// free parameter. [`CompiledCircuit::rebind`] then re-evaluates only those
/// slots — no heap allocation, no gate re-dispatch — which is what lets a
/// tuning loop evaluate thousands of parameter points for the cost of a few
/// stack 2x2 products each.
///
/// # Examples
///
/// ```
/// use qismet_qsim::{Circuit, CompiledCircuit, Param, StateVector};
///
/// let mut c = Circuit::new(2);
/// c.ry(Param::Free(0), 0).cx(0, 1).ry(Param::Free(1), 1);
/// let mut plan = CompiledCircuit::compile(&c);
/// plan.rebind(&[0.3, 0.7]).unwrap();
/// let mut sv = StateVector::new(2);
/// plan.apply(&mut sv).unwrap();
/// let direct = StateVector::from_circuit(&c.bind(&[0.3, 0.7]).unwrap()).unwrap();
/// assert!(sv.fidelity(&direct) > 1.0 - 1e-12);
/// ```
#[derive(Debug, Clone)]
pub struct CompiledCircuit {
    n_qubits: usize,
    n_params: usize,
    pub(crate) ops: Vec<PlanOp>,
    /// Constituent gates of parameterized fused segments, in application
    /// order (rebind recomputes their product).
    fused_gates: Vec<Vec<Gate>>,
    /// Dense multi-qubit superoperators referenced by [`PlanOp::Super`].
    pub(crate) supers: Vec<SuperOp>,
    /// Permutation/phase ladder tables referenced by [`PlanOp::Table`].
    pub(crate) tables: Vec<PermTable>,
    slots: Vec<Slot>,
    bound: bool,
    source_len: usize,
    /// Structural fingerprint of the source circuit: (kind, q0, q1) per op,
    /// angle-blind. Used by backend plan caches to match circuits that share
    /// a structure.
    key: Vec<(u8, u8, u8)>,
    /// Every op preserves real amplitude vectors **for any parameter
    /// binding** (real 1q segments, CX/CZ/SWAP, real superops, RZZ-free
    /// tables). [`CompiledCircuit::run`] then evolves an `f64` scratch state
    /// from `|0...0>` — half the flops and memory traffic of the complex
    /// sweep — and writes the amplitudes back at the end.
    pub(crate) real_run: bool,
}

/// Working state of the lowering pass.
///
/// Fusion legality is tracked per wire with three facts:
///
/// * `pending[q]` — an unplaced run of one-qubit gates on `q` (commutes
///   with everything on other wires, so placement is deferred).
/// * `wire_super[q]` / `wire_table[q]` — the open superop/ladder that was
///   the last thing to touch `q`, if any.
/// * `last_touch[q]` — `1 +` the plan position of the last *placed* op
///   touching `q` (0 = untouched). A gate may be merged back into an open
///   group `G` at plan position `p` exactly when every operand wire
///   satisfies `last_touch <= p`: all ops placed after `G` are then
///   disjoint from the gate's support, so it commutes back to `G`.
struct Lowering {
    ops: Vec<PlanOp>,
    slots: Vec<Slot>,
    fused_gates: Vec<Vec<Gate>>,
    supers: Vec<SuperOp>,
    super_pos: Vec<usize>,
    tables: Vec<PermTable>,
    table_pos: Vec<usize>,
    pending: Vec<Option<Segment>>,
    wire_super: Vec<Option<usize>>,
    wire_table: Vec<Option<usize>>,
    last_touch: Vec<usize>,
    /// Free-parameter content may enter dense superops (state wide enough
    /// that sweep cost dominates the per-rebind matrix rebuild; see
    /// [`DENSE_FUSION_MIN_QUBITS`]).
    dense_param: bool,
}

impl Lowering {
    fn new(n: usize) -> Self {
        Lowering {
            ops: Vec::new(),
            slots: Vec::new(),
            fused_gates: Vec::new(),
            supers: Vec::new(),
            super_pos: Vec::new(),
            tables: Vec::new(),
            table_pos: Vec::new(),
            pending: (0..n).map(|_| None).collect(),
            wire_super: vec![None; n],
            wire_table: vec![None; n],
            last_touch: vec![0; n],
            dense_param: n >= DENSE_FUSION_MIN_QUBITS,
        }
    }

    /// Places wire `q`'s pending segment at the current end of the plan
    /// (legal: nothing has touched `q` since the segment began).
    fn flush_segment(&mut self, q: usize) {
        let Some(seg) = self.pending[q].take() else {
            return;
        };
        let pos = self.ops.len();
        let real = seg.gates.iter().all(|&g| gate_is_real(g));
        self.ops.push(if real {
            PlanOp::OneQReal {
                qubit: q,
                m: [[1.0, 0.0], [0.0, 1.0]],
            }
        } else {
            PlanOp::OneQ { qubit: q, u: ID2 }
        });
        if seg.free {
            self.slots.push(Slot::Fused {
                op: pos,
                seg: self.fused_gates.len(),
            });
            self.fused_gates.push(seg.gates);
        } else {
            let u = fused_mat2(&seg.gates, &[]).expect("segment has no free parameters");
            write_one_q(&mut self.ops[pos], &u);
        }
        self.last_touch[q] = pos + 1;
    }

    /// Moves wire `q`'s pending segment (if any) into superop `s`.
    fn absorb_segment(&mut self, s: usize, q: usize) {
        let Some(seg) = self.pending[q].take() else {
            return;
        };
        let sup = &mut self.supers[s];
        sup.free |= seg.free;
        for g in seg.gates {
            sup.real &= gate_is_real(g);
            sup.gates.push(LocalGate::OneQ { q, g });
        }
    }

    /// Marks superop `s` as the latest content of wire `q`.
    fn claim_for_super(&mut self, s: usize, q: usize) {
        self.last_touch[q] = self.super_pos[s] + 1;
        self.wire_super[q] = Some(s);
        self.wire_table[q] = None;
    }

    /// Marks ladder `t` as the latest content of wire `q`.
    fn claim_for_table(&mut self, t: usize, q: usize) {
        self.last_touch[q] = self.table_pos[t] + 1;
        self.wire_table[q] = Some(t);
        self.wire_super[q] = None;
    }

    fn two_q_local(g: Gate, a: usize, b: usize) -> LocalGate {
        match g {
            Gate::Cx => LocalGate::Cx { c: a, t: b },
            Gate::Cz => LocalGate::Cz { a, b },
            Gate::Swap => LocalGate::Swap { a, b },
            Gate::Rzz(p) => LocalGate::Rzz { a, b, p },
            _ => unreachable!("two-qubit gates only"),
        }
    }

    fn push_2q_into_super(&mut self, s: usize, g: Gate, a: usize, b: usize) {
        let lg = Self::two_q_local(g, a, b);
        let sup = &mut self.supers[s];
        sup.free |= lg.is_free();
        sup.real &= lg.is_real();
        sup.gates.push(lg);
    }

    fn push_2q_into_table(&mut self, t: usize, g: Gate, a: usize, b: usize) {
        let lg = Self::two_q_local(g, a, b);
        let tab = &mut self.tables[t];
        tab.free |= lg.is_free();
        tab.gates.push(lg);
    }

    fn one_q(&mut self, g: Gate, q: usize) {
        // A wire whose latest content is an open superop feeds the gate
        // straight into the dense matrix: the apply sweep gets it for free.
        // Free angles stay out of small-state superops (rebind economics;
        // see `dense_param`) — the wire leaves its superop instead.
        if let Some(s) = self.wire_super[q] {
            let lg = LocalGate::OneQ { q, g };
            if self.dense_param || !lg.is_free() {
                let sup = &mut self.supers[s];
                sup.free |= lg.is_free();
                sup.real &= lg.is_real();
                sup.gates.push(lg);
                return;
            }
            self.wire_super[q] = None;
        }
        // Ladders hold only permutation/phase gates; the wire leaves its
        // ladder (if any) and accumulates a one-qubit segment instead.
        self.wire_table[q] = None;
        let free = matches!(g.param(), Some(Param::Free(_)));
        match &mut self.pending[q] {
            Some(seg) => {
                seg.gates.push(g);
                seg.free |= free;
            }
            slot @ None => {
                *slot = Some(Segment {
                    gates: vec![g],
                    free,
                })
            }
        }
    }

    /// Whether wire `q`'s pending segment carries a free parameter.
    fn pending_free(&self, q: usize) -> bool {
        self.pending[q].as_ref().is_some_and(|seg| seg.free)
    }

    fn two_q(&mut self, g: Gate, a: usize, b: usize) {
        // Free angles stay out of small-state superops (rebind economics;
        // see `dense_param`).
        let free_2q = matches!(g, Gate::Rzz(Param::Free(_)));
        // 1. Both wires current in the same open superop: extend it.
        if let (Some(sa), Some(sb)) = (self.wire_super[a], self.wire_super[b]) {
            if sa == sb && (self.dense_param || !free_2q) {
                self.push_2q_into_super(sa, g, a, b);
                return;
            }
        }
        // 2. One wire current in a superop that can legally take the other:
        //    the `last_touch` test proves every op placed since the superop
        //    opened is disjoint from the joining wire, so the gate (and the
        //    joining wire's still-pending segment) commutes back into it.
        for (wa, wb) in [(a, b), (b, a)] {
            let Some(s) = self.wire_super[wa] else {
                continue;
            };
            if !self.dense_param && (free_2q || self.pending_free(wb)) {
                continue;
            }
            let in_support = self.supers[s].qubits.contains(&wb);
            let fits = in_support || self.supers[s].k() < SUPEROP_MAX_QUBITS;
            if fits && self.last_touch[wb] <= self.super_pos[s] {
                if !in_support {
                    let qs = &mut self.supers[s].qubits;
                    let at = qs.partition_point(|&x| x < wb);
                    qs.insert(at, wb);
                }
                self.absorb_segment(s, wb);
                self.push_2q_into_super(s, g, a, b);
                self.claim_for_super(s, wb);
                return;
            }
        }
        // 3. A pending segment on either wire seeds a fresh superop (the
        //    dense matrix absorbs the segment's gates for free). On small
        //    states free-parameter segments stay 2x2 rebind slots instead:
        //    place them here and let the entangler open a ladder below.
        if self.pending[a].is_some() || self.pending[b].is_some() {
            let adds_free = free_2q || self.pending_free(a) || self.pending_free(b);
            if self.dense_param || !adds_free {
                let idx = self.supers.len();
                let pos = self.ops.len();
                self.ops.push(PlanOp::Super { idx });
                self.supers.push(SuperOp {
                    qubits: if a < b { vec![a, b] } else { vec![b, a] },
                    m: [Complex64::ZERO; 64],
                    real: true,
                    free: false,
                    gates: Vec::new(),
                });
                self.super_pos.push(pos);
                self.absorb_segment(idx, a);
                self.absorb_segment(idx, b);
                self.push_2q_into_super(idx, g, a, b);
                self.claim_for_super(idx, a);
                self.claim_for_super(idx, b);
                return;
            }
            // Place every free pending segment now — each still commutes to
            // this position — so the ladder opened below can keep growing
            // across wires without later segment placements blocking the
            // `last_touch` legality test mid-ladder.
            for q in 0..self.pending.len() {
                if self.pending_free(q) {
                    self.flush_segment(q);
                }
            }
            self.flush_segment(a);
            self.flush_segment(b);
        }
        // 4. Pure entangler ladders: extend the open ladder when legal.
        if let (Some(ta), Some(tb)) = (self.wire_table[a], self.wire_table[b]) {
            if ta == tb {
                self.push_2q_into_table(ta, g, a, b);
                return;
            }
        }
        for (wa, wb) in [(a, b), (b, a)] {
            let Some(t) = self.wire_table[wa] else {
                continue;
            };
            let in_support = self.tables[t].qubits.contains(&wb);
            let fits = in_support || self.tables[t].qubits.len() < LADDER_MAX_QUBITS;
            if fits && self.last_touch[wb] <= self.table_pos[t] {
                if !in_support {
                    let qs = &mut self.tables[t].qubits;
                    let at = qs.partition_point(|&x| x < wb);
                    qs.insert(at, wb);
                }
                self.push_2q_into_table(t, g, a, b);
                self.claim_for_table(t, wb);
                return;
            }
        }
        // 5. Open a fresh ladder.
        let idx = self.tables.len();
        let pos = self.ops.len();
        self.ops.push(PlanOp::Table { idx });
        self.tables.push(PermTable {
            qubits: if a < b { vec![a, b] } else { vec![b, a] },
            bits: Vec::new(),
            offs: Vec::new(),
            src: Vec::new(),
            phase: Vec::new(),
            contig_shift: None,
            diagonal: false,
            unit: false,
            free: false,
            gates: Vec::new(),
        });
        self.table_pos.push(pos);
        self.push_2q_into_table(idx, g, a, b);
        self.claim_for_table(idx, a);
        self.claim_for_table(idx, b);
    }

    /// Flushes pending segments and finalizes every fused group: non-free
    /// superops/tables are built now, free ones become rebind slots, and
    /// single-gate ladders fall back to the specialized per-gate kernels.
    #[allow(clippy::type_complexity)]
    fn finish(
        mut self,
    ) -> (
        Vec<PlanOp>,
        Vec<Slot>,
        Vec<Vec<Gate>>,
        Vec<SuperOp>,
        Vec<PermTable>,
    ) {
        for q in 0..self.pending.len() {
            self.flush_segment(q);
        }
        for (idx, sup) in self.supers.iter_mut().enumerate() {
            if sup.free {
                self.slots.push(Slot::Super { idx });
            } else {
                sup.rebuild(&[]).expect("superop has no free parameters");
            }
        }
        for (idx, tab) in self.tables.iter_mut().enumerate() {
            if tab.gates.len() == 1 {
                // A ladder that never grew lowers to the specialized
                // single-gate kernel (cheaper than a table gather).
                let pos = self.table_pos[idx];
                self.ops[pos] = match tab.gates[0] {
                    LocalGate::Cx { c, t } => PlanOp::Cx {
                        control: c,
                        target: t,
                    },
                    LocalGate::Cz { a, b } => PlanOp::Cz { a, b },
                    LocalGate::Swap { a, b } => PlanOp::Swap { a, b },
                    LocalGate::Rzz { a, b, p } => match p {
                        Param::Fixed(theta) => PlanOp::Rzz {
                            a,
                            b,
                            plus: Complex64::cis(theta / 2.0),
                            minus: Complex64::cis(-theta / 2.0),
                        },
                        Param::Free(k) => {
                            self.slots.push(Slot::Rzz { op: pos, param: k });
                            PlanOp::Rzz {
                                a,
                                b,
                                plus: Complex64::ONE,
                                minus: Complex64::ONE,
                            }
                        }
                    },
                    LocalGate::OneQ { .. } => unreachable!("ladders hold only 2q gates"),
                };
                continue;
            }
            tab.bits = tab.qubits.iter().map(|&q| 1usize << q).collect();
            let size = 1usize << tab.qubits.len();
            let mut offs = Vec::with_capacity(size);
            for l in 0..size {
                let mut off = 0usize;
                for (j, &bit) in tab.bits.iter().enumerate() {
                    if l >> j & 1 == 1 {
                        off += bit;
                    }
                }
                offs.push(off);
            }
            tab.offs = offs;
            tab.contig_shift = tab
                .qubits
                .windows(2)
                .all(|w| w[1] == w[0] + 1)
                .then(|| tab.qubits[0]);
            if tab.free {
                self.slots.push(Slot::Table { idx });
            } else {
                tab.rebuild(&[]).expect("table has no free parameters");
            }
        }
        (
            self.ops,
            self.slots,
            self.fused_gates,
            self.supers,
            self.tables,
        )
    }
}

impl CompiledCircuit {
    /// Lowers a circuit, keeping its free-parameter slots (`Param::Free(k)`
    /// reads `params[k]` at [`CompiledCircuit::rebind`] time). Fixed angles
    /// are baked in at compile time.
    pub fn compile(circuit: &Circuit) -> Self {
        Self::lower(circuit, false)
    }

    /// Lowers a circuit treating **every** gate angle — fixed or free — as a
    /// rebindable slot, numbered in traversal order. Combined with
    /// [`CompiledCircuit::extract_angles`] this lets one plan serve every
    /// bound circuit that shares a structure (the backend plan-cache path).
    pub fn compile_template(circuit: &Circuit) -> Self {
        Self::lower(circuit, true)
    }

    /// Per-kernel-class op counts for this plan, in a fixed order:
    /// `[one_q, one_q_real, cx, cz, swap, rzz, super, table]`. Feeds the
    /// `qsim.ops.*` telemetry counters; only called on the enabled path.
    pub(crate) fn op_class_counts(&self) -> [u64; 8] {
        let mut c = [0u64; 8];
        for op in &self.ops {
            let k = match op {
                PlanOp::OneQ { .. } => 0,
                PlanOp::OneQReal { .. } => 1,
                PlanOp::Cx { .. } => 2,
                PlanOp::Cz { .. } => 3,
                PlanOp::Swap { .. } => 4,
                PlanOp::Rzz { .. } => 5,
                PlanOp::Super { .. } => 6,
                PlanOp::Table { .. } => 7,
            };
            c[k] += 1;
        }
        c
    }

    fn lower(circuit: &Circuit, template: bool) -> Self {
        // One taxonomy across every evaluation path: compiling a plan is
        // the plan-cache *miss*; evaluating a previously compiled plan
        // (structure-cache match, batch rebind, or `evaluate_plan` on an
        // externally held plan) is the *hit*.
        qismet_telemetry::counter!("qsim.plans_compiled").inc();
        qismet_telemetry::counter!("qsim.plan_cache.misses").inc();
        let n = circuit.n_qubits();
        let mut key = Vec::with_capacity(circuit.len());
        let mut next_slot = 0usize;
        // In template mode every parameterized gate's angle becomes the next
        // numbered slot; otherwise free indices pass through unchanged.
        let mut remap = |g: Gate| -> Gate {
            if !template {
                return g;
            }
            if g.is_parameterized() {
                let slot = Param::Free(next_slot);
                next_slot += 1;
                match g {
                    Gate::Rx(_) => Gate::Rx(slot),
                    Gate::Ry(_) => Gate::Ry(slot),
                    Gate::Rz(_) => Gate::Rz(slot),
                    Gate::Phase(_) => Gate::Phase(slot),
                    Gate::Rzz(_) => Gate::Rzz(slot),
                    _ => unreachable!(),
                }
            } else {
                g
            }
        };
        let mut lw = Lowering::new(n);
        for op in circuit.ops() {
            let g = remap(op.gate);
            key.push((kind_tag(g), op.qubits[0] as u8, op.qubits[1] as u8));
            if g.arity() == 1 {
                lw.one_q(g, op.qubits[0]);
            } else {
                lw.two_q(g, op.qubits[0], op.qubits[1]);
            }
        }
        let (ops, slots, fused_gates, supers, tables) = lw.finish();
        let n_params = if template {
            next_slot
        } else {
            circuit.n_params()
        };
        let real_run = ops.iter().all(|op| match *op {
            PlanOp::OneQReal { .. }
            | PlanOp::Cx { .. }
            | PlanOp::Cz { .. }
            | PlanOp::Swap { .. } => true,
            PlanOp::OneQ { .. } | PlanOp::Rzz { .. } => false,
            PlanOp::Super { idx } => supers[idx].real,
            PlanOp::Table { idx } => tables[idx]
                .gates
                .iter()
                .all(|g| !matches!(g, LocalGate::Rzz { .. })),
        });
        CompiledCircuit {
            n_qubits: n,
            n_params,
            bound: n_params == 0,
            source_len: circuit.len(),
            ops,
            fused_gates,
            supers,
            tables,
            slots,
            key,
            real_run,
        }
    }

    /// Circuit width.
    pub fn n_qubits(&self) -> usize {
        self.n_qubits
    }

    /// Number of free parameter slots.
    pub fn n_params(&self) -> usize {
        self.n_params
    }

    /// Lowered op count (after fusion).
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// `true` when the plan contains no operations.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Gate count of the source circuit (before fusion).
    pub fn source_len(&self) -> usize {
        self.source_len
    }

    /// `true` once every parameterized slot holds concrete values (always
    /// true for parameter-free circuits; otherwise set by the first
    /// successful [`CompiledCircuit::rebind`]).
    pub fn is_bound(&self) -> bool {
        self.bound
    }

    /// `true` when `circuit` has the same structure (gate kinds and
    /// operands, angles ignored) as the circuit this plan was compiled
    /// from — i.e. a template-mode plan can serve it via
    /// [`CompiledCircuit::rebind`] with its extracted angles.
    pub fn matches_structure(&self, circuit: &Circuit) -> bool {
        circuit.n_qubits() == self.n_qubits
            && circuit.len() == self.key.len()
            && circuit
                .ops()
                .iter()
                .zip(&self.key)
                .all(|(op, k)| *k == (kind_tag(op.gate), op.qubits[0] as u8, op.qubits[1] as u8))
    }

    /// Collects the concrete angle of every parameterized gate of `circuit`
    /// in traversal order into `out` (cleared first) — the parameter vector
    /// a template-mode plan of matching structure expects.
    ///
    /// # Errors
    ///
    /// [`GateError::UnboundParameter`] if any gate still carries a free
    /// parameter.
    pub fn extract_angles(circuit: &Circuit, out: &mut Vec<f64>) -> Result<(), GateError> {
        out.clear();
        for op in circuit.ops() {
            if let Some(p) = op.gate.param() {
                out.push(p.value().ok_or(GateError::UnboundParameter)?);
            }
        }
        Ok(())
    }

    /// Recomputes every parameter-dependent slot from `values`, in place —
    /// no allocation, no gate re-dispatch.
    ///
    /// # Errors
    ///
    /// [`GateError::UnboundParameter`] if `values` is shorter than
    /// [`CompiledCircuit::n_params`]; the plan keeps its previous binding.
    pub fn rebind(&mut self, values: &[f64]) -> Result<(), GateError> {
        if values.len() < self.n_params {
            return Err(GateError::UnboundParameter);
        }
        let CompiledCircuit {
            ops,
            fused_gates,
            supers,
            tables,
            slots,
            ..
        } = self;
        for slot in slots.iter() {
            match *slot {
                Slot::Fused { op, seg } => {
                    let u = fused_mat2(&fused_gates[seg], values)?;
                    write_one_q(&mut ops[op], &u);
                }
                Slot::Rzz { op, param } => {
                    let theta = values[param];
                    if let PlanOp::Rzz { plus, minus, .. } = &mut ops[op] {
                        *plus = Complex64::cis(theta / 2.0);
                        *minus = Complex64::cis(-theta / 2.0);
                    }
                }
                Slot::Super { idx } => supers[idx].rebuild(values)?,
                Slot::Table { idx } => tables[idx].rebuild(values)?,
            }
        }
        self.bound = true;
        Ok(())
    }

    /// Applies the plan to a state in place (the state is **not** reset
    /// first; see [`CompiledCircuit::run`]).
    ///
    /// # Errors
    ///
    /// [`GateError::UnboundParameter`] if the plan has unbound slots.
    ///
    /// # Panics
    ///
    /// Panics on width mismatch.
    pub fn apply(&self, sv: &mut StateVector) -> Result<(), GateError> {
        if !self.bound {
            return Err(GateError::UnboundParameter);
        }
        assert_eq!(
            sv.n_qubits(),
            self.n_qubits,
            "plan width must match state width"
        );
        let amps = sv.amps_mut();
        for op in &self.ops {
            self.apply_op(op, amps);
        }
        Ok(())
    }

    /// Applies one lowered op to an amplitude slice. The slice may be the
    /// full state or one region of a parallel partition: every kernel only
    /// combines amplitudes whose indices differ below the op's alignment
    /// (`1 << (highest support qubit + 1)`), so any slice whose length is a
    /// multiple of that alignment is closed under the op.
    fn apply_op(&self, op: &PlanOp, amps: &mut [Complex64]) {
        match *op {
            PlanOp::OneQ { qubit, ref u } => kernels::apply_1q(amps, u, 1usize << qubit),
            PlanOp::OneQReal { qubit, ref m } => kernels::apply_1q_real(amps, m, 1usize << qubit),
            PlanOp::Cx { control, target } => {
                kernels::apply_cx(amps, 1usize << control, 1usize << target)
            }
            PlanOp::Cz { a, b } => kernels::apply_cz(amps, 1usize << a, 1usize << b),
            PlanOp::Swap { a, b } => kernels::apply_swap(amps, 1usize << a, 1usize << b),
            PlanOp::Rzz { a, b, plus, minus } => {
                kernels::apply_rzz_phases(amps, minus, plus, 1usize << a, 1usize << b)
            }
            PlanOp::Super { idx } => {
                let sup = &self.supers[idx];
                let q = &sup.qubits;
                if sup.k() == 2 {
                    kernels::apply_super2(
                        amps,
                        &sup.m[..16],
                        1usize << q[0],
                        1usize << q[1],
                        sup.real,
                    );
                } else {
                    kernels::apply_super3(
                        amps,
                        &sup.m[..64],
                        1usize << q[0],
                        1usize << q[1],
                        1usize << q[2],
                        sup.real,
                    );
                }
            }
            PlanOp::Table { idx } => {
                let t = &self.tables[idx];
                if let Some(shift) = t.contig_shift {
                    kernels::apply_table_contig(amps, shift, &t.src, &t.phase, t.diagonal, t.unit);
                } else {
                    kernels::apply_table(
                        amps, &t.bits, &t.offs, &t.src, &t.phase, t.diagonal, t.unit,
                    );
                }
            }
        }
    }

    /// `true` when every op preserves real amplitude vectors for any
    /// parameter binding, so [`CompiledCircuit::run`] evolves an `f64`
    /// scratch state instead of the complex one (half the flops and memory
    /// traffic). Hardware-efficient `RealAmplitudes`-family ansatz circuits
    /// — Ry rotations plus CX/CZ/SWAP entanglers — always qualify.
    pub fn runs_real(&self) -> bool {
        self.real_run
    }

    /// Real twin of [`CompiledCircuit::apply_op`]: one lowered op on an
    /// `f64` amplitude slice. Only called on plans where
    /// [`CompiledCircuit::runs_real`] holds, which excludes the complex op
    /// kinds by construction.
    fn apply_op_real(&self, op: &PlanOp, amps: &mut [f64]) {
        match *op {
            PlanOp::OneQReal { qubit, ref m } => {
                kernels::apply_1q_real_f64(amps, m, 1usize << qubit)
            }
            PlanOp::Cx { control, target } => {
                kernels::apply_cx(amps, 1usize << control, 1usize << target)
            }
            PlanOp::Cz { a, b } => kernels::apply_cz(amps, 1usize << a, 1usize << b),
            PlanOp::Swap { a, b } => kernels::apply_swap(amps, 1usize << a, 1usize << b),
            PlanOp::Super { idx } => {
                let sup = &self.supers[idx];
                let q = &sup.qubits;
                if sup.k() == 2 {
                    kernels::apply_super2_f64(amps, &sup.m[..16], 1usize << q[0], 1usize << q[1]);
                } else {
                    kernels::apply_super3_f64(
                        amps,
                        &sup.m[..64],
                        1usize << q[0],
                        1usize << q[1],
                        1usize << q[2],
                    );
                }
            }
            PlanOp::Table { idx } => {
                let t = &self.tables[idx];
                if let Some(shift) = t.contig_shift {
                    kernels::apply_table_contig_f64(
                        amps, shift, &t.src, &t.phase, t.diagonal, t.unit,
                    );
                } else {
                    kernels::apply_table_f64(
                        amps, &t.bits, &t.offs, &t.src, &t.phase, t.diagonal, t.unit,
                    );
                }
            }
            PlanOp::OneQ { .. } | PlanOp::Rzz { .. } => {
                unreachable!("complex op in a real-run plan")
            }
        }
    }

    /// Borrows the per-thread real-state scratch sized for this plan, runs
    /// `f` on it (initialized to `|0...0>`), and writes the evolved real
    /// amplitudes back into `sv`.
    fn run_real_with<R>(
        &self,
        sv: &mut StateVector,
        f: impl FnOnce(&mut [f64]) -> R,
    ) -> Result<R, GateError> {
        if !self.bound {
            return Err(GateError::UnboundParameter);
        }
        assert_eq!(
            sv.n_qubits(),
            self.n_qubits,
            "plan width must match state width"
        );
        Ok(REAL_STATE.with(|cell| {
            let mut r = cell.borrow_mut();
            let dim = 1usize << self.n_qubits;
            r.clear();
            r.resize(dim, 0.0);
            r[0] = 1.0;
            let out = f(&mut r);
            for (a, &x) in sv.amps_mut().iter_mut().zip(r.iter()) {
                *a = Complex64::new(x, 0.0);
            }
            out
        }))
    }

    /// Resets `sv` to `|0...0>` and applies the plan — the zero-allocation
    /// equivalent of [`StateVector::from_circuit`] on a reused buffer.
    ///
    /// Plans where [`CompiledCircuit::runs_real`] holds take the
    /// real-amplitude fast path; [`CompiledCircuit::apply`], which must
    /// accept arbitrary (complex) starting states, never does.
    ///
    /// # Errors
    ///
    /// [`GateError::UnboundParameter`] if the plan has unbound slots.
    pub fn run(&self, sv: &mut StateVector) -> Result<(), GateError> {
        if self.real_run && self.n_qubits >= REAL_RUN_MIN_QUBITS {
            return self.run_real_with(sv, |r| {
                for op in &self.ops {
                    self.apply_op_real(op, r);
                }
            });
        }
        sv.reset();
        self.apply(sv)
    }

    /// [`CompiledCircuit::run`] followed by
    /// [`CompiledObservable::expectation`], fused so real-run plans compute
    /// the energy **on the `f64` state** before the complex write-back —
    /// half the expectation sweep's memory traffic. The returned value is
    /// bitwise identical to the two-call sequence: every dropped product
    /// has an exactly-zero imaginary factor, and adding `±0.0` to the
    /// accumulator lanes (which never hold `-0.0`) cannot change their
    /// bits. `sv` still holds the evolved state afterwards.
    ///
    /// # Errors
    ///
    /// [`GateError::UnboundParameter`] if the plan has unbound slots.
    ///
    /// # Panics
    ///
    /// Panics on plan/state/observable width mismatch.
    pub fn run_expectation(
        &self,
        sv: &mut StateVector,
        obs: &CompiledObservable,
    ) -> Result<f64, GateError> {
        assert_eq!(obs.n_qubits(), self.n_qubits, "observable width");
        if self.real_run && self.n_qubits >= REAL_RUN_MIN_QUBITS {
            return self.run_real_with(sv, |r| {
                for op in &self.ops {
                    self.apply_op_real(op, r);
                }
                obs.expectation_real(r)
            });
        }
        sv.reset();
        self.apply(sv)?;
        Ok(obs.expectation(sv))
    }

    /// Smallest power-of-two slice length closed under `op` (see
    /// [`CompiledCircuit::apply_op`]).
    #[cfg(feature = "parallel")]
    fn op_align(&self, op: &PlanOp) -> usize {
        let hi = match *op {
            PlanOp::OneQ { qubit, .. } | PlanOp::OneQReal { qubit, .. } => qubit,
            PlanOp::Cx {
                control: a,
                target: b,
            }
            | PlanOp::Cz { a, b }
            | PlanOp::Swap { a, b }
            | PlanOp::Rzz { a, b, .. } => a.max(b),
            PlanOp::Super { idx } => *self.supers[idx].qubits.last().expect("superop has support"),
            PlanOp::Table { idx } => *self.tables[idx].qubits.last().expect("table has support"),
        };
        1usize << (hi + 1)
    }

    /// Applies the plan with the sweeps over the amplitude array split
    /// across up to `threads` scoped workers.
    ///
    /// Workers own **disjoint contiguous regions** whose boundaries are
    /// aligned to every op in their batch, so no amplitude is ever touched
    /// by two threads and each region computes exactly the numbers the
    /// sequential sweep would — the result is bitwise identical to
    /// [`CompiledCircuit::apply`] at any thread count. Consecutive ops that
    /// admit a common partition are batched into one `thread::scope` so the
    /// spawn cost amortizes over many sweeps; ops aligned wider than half
    /// the state (i.e. touching the top qubit) run sequentially.
    ///
    /// States below a minimum width (where a full sweep is microseconds and
    /// dispatch would dominate), or `threads <= 1`, fall back to the
    /// sequential path.
    ///
    /// # Errors
    ///
    /// [`GateError::UnboundParameter`] if the plan has unbound slots.
    ///
    /// # Panics
    ///
    /// Panics on width mismatch.
    #[cfg(feature = "parallel")]
    pub fn apply_threaded(&self, sv: &mut StateVector, threads: usize) -> Result<(), GateError> {
        if threads <= 1 || self.n_qubits < PARALLEL_MIN_QUBITS {
            return self.apply(sv);
        }
        if !self.bound {
            return Err(GateError::UnboundParameter);
        }
        assert_eq!(
            sv.n_qubits(),
            self.n_qubits,
            "plan width must match state width"
        );
        let amps = sv.amps_mut();
        self.apply_ops_threaded(amps, threads, Self::apply_op);
        Ok(())
    }

    /// The threaded batching sweep shared by the complex and real-amplitude
    /// paths: batches consecutive ops that admit a common aligned partition
    /// into one `thread::scope`, splitting `amps` into disjoint contiguous
    /// regions (see [`CompiledCircuit::apply_threaded`] for the
    /// bitwise-identity argument).
    #[cfg(feature = "parallel")]
    fn apply_ops_threaded<T: Send>(
        &self,
        amps: &mut [T],
        threads: usize,
        apply: fn(&Self, &PlanOp, &mut [T]),
    ) {
        let dim = amps.len();
        let mut i = 0usize;
        while i < self.ops.len() {
            let align = self.op_align(&self.ops[i]);
            if align * 2 > dim {
                // Top-qubit op: no legal split, run it on this thread.
                apply(self, &self.ops[i], amps);
                i += 1;
                continue;
            }
            // Grow the batch while a common aligned partition exists.
            let mut batch_align = align;
            let mut j = i + 1;
            while j < self.ops.len() {
                let a = self.op_align(&self.ops[j]);
                if a * 2 > dim {
                    break;
                }
                batch_align = batch_align.max(a);
                j += 1;
            }
            let region = dim.div_ceil(threads).next_multiple_of(batch_align);
            let ops = &self.ops[i..j];
            std::thread::scope(|scope| {
                for chunk in amps.chunks_mut(region) {
                    scope.spawn(move || {
                        for op in ops {
                            apply(self, op, chunk);
                        }
                    });
                }
            });
            i = j;
        }
    }

    /// Resets `sv` and applies the plan with in-state parallelism — the
    /// threaded counterpart of [`CompiledCircuit::run`], bitwise identical
    /// to it at any thread count.
    ///
    /// # Errors
    ///
    /// [`GateError::UnboundParameter`] if the plan has unbound slots.
    #[cfg(feature = "parallel")]
    pub fn run_threaded(&self, sv: &mut StateVector, threads: usize) -> Result<(), GateError> {
        if self.real_run && self.n_qubits >= REAL_RUN_MIN_QUBITS {
            return self.run_real_with(sv, |r| {
                if threads <= 1 || self.n_qubits < PARALLEL_MIN_QUBITS {
                    for op in &self.ops {
                        self.apply_op_real(op, r);
                    }
                } else {
                    self.apply_ops_threaded(r, threads, Self::apply_op_real);
                }
            });
        }
        sv.reset();
        self.apply_threaded(sv, threads)
    }

    /// Runs the plan on a freshly allocated zero state.
    ///
    /// # Errors
    ///
    /// [`GateError::UnboundParameter`] if the plan has unbound slots.
    pub fn state(&self) -> Result<StateVector, GateError> {
        let mut sv = StateVector::new(self.n_qubits);
        self.run(&mut sv)?;
        Ok(sv)
    }
}

/// Diagonal-weight tables are only materialized up to this width (beyond it
/// the table would rival the state vector itself in memory; the fused sweep
/// then falls back to recomputing signs per index, still in one pass).
const DIAG_TABLE_MAX_QUBITS: usize = 16;

/// One off-diagonal (X/Y-carrying) term of a compiled observable.
#[derive(Debug, Clone, Copy)]
pub(crate) struct OffDiagTerm {
    /// `2 * coeff * sign(i^y)` — the `i^y` global phase and the Hermitian
    /// pair doubling, hoisted out of the sweep entirely.
    pub(crate) prefactor: f64,
    /// `true` when the term has an odd number of Y factors (the pair sum
    /// then lives in the imaginary part).
    pub(crate) use_im: bool,
    pub(crate) x_mask: usize,
    pub(crate) z_mask: usize,
    /// Lowest set bit of `x_mask`: enumerating indices with this bit clear
    /// visits each `(c, c ^ x_mask)` pair exactly once.
    pub(crate) pair_bit: usize,
}

/// A [`PauliSum`] compiled into a fused expectation kernel.
///
/// Diagonal terms (Z/I-only, including the identity offset) are folded into
/// a single per-basis weight table evaluated in **one** probability sweep;
/// each off-diagonal term sweeps only half the state (Hermitian pairing)
/// with its `i^y` phase and sign masks precomputed. Replaces the legacy
/// one-full-sweep-per-term kernel kept in [`crate::statevector::reference`].
///
/// # Examples
///
/// ```
/// use qismet_qsim::{Circuit, CompiledObservable, PauliSum, StateVector};
///
/// let h = PauliSum::from_labels(&[(1.0, "XIX"), (1.0, "ZZI")]).unwrap();
/// let obs = CompiledObservable::compile(&h);
/// let mut c = Circuit::new(3);
/// c.ry(0.4, 0).cx(0, 1).ry(1.1, 2);
/// let sv = StateVector::from_circuit(&c).unwrap();
/// assert!((obs.expectation(&sv) - sv.expectation(&h)).abs() < 1e-12);
/// ```
#[derive(Debug, Clone)]
pub struct CompiledObservable {
    n_qubits: usize,
    n_terms: usize,
    /// `(coeff, z_mask)` of diagonal terms; used directly when the weight
    /// table is too wide to materialize.
    pub(crate) diag: Vec<(f64, usize)>,
    /// Per-basis-index diagonal weight `w[c] = sum_j c_j (-1)^{|c & z_j|}`.
    pub(crate) diag_table: Option<Vec<f64>>,
    pub(crate) offdiag: Vec<OffDiagTerm>,
}

impl CompiledObservable {
    /// Compiles the fused kernel for `h`.
    pub fn compile(h: &PauliSum) -> Self {
        let mut diag = Vec::new();
        let mut offdiag = Vec::new();
        for (c, s) in h.terms() {
            let x = s.x_mask() as usize;
            let z = s.z_mask() as usize;
            if x == 0 {
                diag.push((*c, z));
            } else {
                let y = s.y_count();
                // i^y, folded with the Hermitian pair structure: even y keeps
                // the real part (sign -1 for y % 4 == 2), odd y keeps the
                // imaginary part (sign -1 for y % 4 == 1).
                let sign = match y % 4 {
                    0 | 3 => 1.0,
                    _ => -1.0,
                };
                offdiag.push(OffDiagTerm {
                    prefactor: 2.0 * c * sign,
                    use_im: y % 2 == 1,
                    x_mask: x,
                    z_mask: z,
                    pair_bit: x & x.wrapping_neg(),
                });
            }
        }
        let diag_table = if !diag.is_empty() && h.n_qubits() <= DIAG_TABLE_MAX_QUBITS {
            let dim = 1usize << h.n_qubits();
            let mut w = vec![0.0f64; dim];
            for (c, wc) in w.iter_mut().enumerate() {
                for &(coeff, z) in &diag {
                    *wc += if (c & z).count_ones() % 2 == 0 {
                        coeff
                    } else {
                        -coeff
                    };
                }
            }
            Some(w)
        } else {
            None
        };
        CompiledObservable {
            n_qubits: h.n_qubits(),
            n_terms: h.terms().len(),
            diag,
            diag_table,
            offdiag,
        }
    }

    /// Observable width.
    pub fn n_qubits(&self) -> usize {
        self.n_qubits
    }

    /// Number of source Hamiltonian terms.
    pub fn n_terms(&self) -> usize {
        self.n_terms
    }

    /// Number of diagonal (Z/I-only) terms fused into the probability sweep.
    pub fn n_diagonal_terms(&self) -> usize {
        self.diag.len()
    }

    /// Diagonal contribution of one cache-block of amplitudes starting at
    /// global index `start`.
    fn diag_block(&self, amps: &[Complex64], start: usize) -> f64 {
        let mut acc = 0.0;
        if let Some(w) = &self.diag_table {
            // Four independent accumulator lanes break the FP-add latency
            // chain (the sweep is otherwise serialized on one add per
            // amplitude). The lane partition is fixed by index, so the
            // threaded path — which reuses this block function on the same
            // block boundaries — still adds identical partials in identical
            // order.
            let ws = &w[start..start + amps.len()];
            let mut lanes = [0.0f64; 4];
            let mut ac = amps.chunks_exact(4);
            let mut wc = ws.chunks_exact(4);
            for (a4, w4) in (&mut ac).zip(&mut wc) {
                for k in 0..4 {
                    lanes[k] += a4[k].norm_sqr() * w4[k];
                }
            }
            for (a, wv) in ac.remainder().iter().zip(wc.remainder()) {
                lanes[0] += a.norm_sqr() * wv;
            }
            acc = (lanes[0] + lanes[1]) + (lanes[2] + lanes[3]);
        } else {
            for (i, a) in amps.iter().enumerate() {
                let c = start + i;
                let p = a.norm_sqr();
                for &(coeff, z) in &self.diag {
                    acc += if (c & z).count_ones().is_multiple_of(2) {
                        coeff * p
                    } else {
                        -coeff * p
                    };
                }
            }
        }
        acc
    }

    /// One off-diagonal term over the pair-index block `[p0, p1)`.
    ///
    /// Pair index `p` enumerates the Hermitian pairs `(c, c ^ x_mask)`
    /// exactly once by inserting a zero at the term's lowest X bit:
    /// `c = (p & (b-1)) | ((p & !(b-1)) << 1)` — the same visit order as a
    /// flat sweep skipping indices with that bit set.
    fn offdiag_block(t: &OffDiagTerm, amps: &[Complex64], p0: usize, p1: usize) -> f64 {
        let low = t.pair_bit - 1;
        // Four independent accumulator lanes (round-robin over pair
        // indices) break the FP-add latency chain; the lane partition is
        // fixed, so sequential and threaded sweeps — which share this block
        // function and its block boundaries — stay bitwise identical.
        let mut lanes = [0.0f64; 4];
        if t.z_mask == 0 && !t.use_im {
            // Pure-X term (no Y, no Z): every pair contributes with the
            // same sign, and only the real part of conj(a_d) * a_c is
            // needed — a two-multiply inner loop.
            if t.pair_bit >= 8 {
                // Within a run of pair indices sharing their high bits, both
                // pair members advance linearly (`c0 + i` and
                // `(c0 ^ x_mask) + i`), so the sweep walks two contiguous
                // slices and the loads pack.
                let mut p = p0;
                while p < p1 {
                    let c0 = (p & low) | ((p & !low) << 1);
                    let run = (t.pair_bit - (p & low)).min(p1 - p);
                    let a = &amps[c0..c0 + run];
                    let d = &amps[c0 ^ t.x_mask..][..run];
                    let mut ac = a.chunks_exact(4);
                    let mut dc = d.chunks_exact(4);
                    for (a4, d4) in (&mut ac).zip(&mut dc) {
                        for k in 0..4 {
                            lanes[k] += d4[k].re * a4[k].re + d4[k].im * a4[k].im;
                        }
                    }
                    for (av, dv) in ac.remainder().iter().zip(dc.remainder()) {
                        lanes[0] += dv.re * av.re + dv.im * av.im;
                    }
                    p += run;
                }
            } else {
                let mut p = p0;
                while p + 4 <= p1 {
                    for (k, lane) in lanes.iter_mut().enumerate() {
                        let c = ((p + k) & low) | (((p + k) & !low) << 1);
                        let d = amps[c ^ t.x_mask];
                        let a = amps[c];
                        *lane += d.re * a.re + d.im * a.im;
                    }
                    p += 4;
                }
                while p < p1 {
                    let c = (p & low) | ((p & !low) << 1);
                    let d = amps[c ^ t.x_mask];
                    let a = amps[c];
                    lanes[0] += d.re * a.re + d.im * a.im;
                    p += 1;
                }
            }
        } else {
            let term = |p: usize| -> f64 {
                let c = (p & low) | ((p & !low) << 1);
                let v = amps[c ^ t.x_mask].conj() * amps[c];
                let m = if t.use_im { v.im } else { v.re };
                if (c & t.z_mask).count_ones().is_multiple_of(2) {
                    m
                } else {
                    -m
                }
            };
            let mut p = p0;
            while p + 4 <= p1 {
                for (k, lane) in lanes.iter_mut().enumerate() {
                    *lane += term(p + k);
                }
                p += 4;
            }
            while p < p1 {
                lanes[0] += term(p);
                p += 1;
            }
        }
        (lanes[0] + lanes[1]) + (lanes[2] + lanes[3])
    }

    /// Real twin of [`CompiledObservable::diag_block`] on an `f64` state.
    fn diag_block_real(&self, amps: &[f64], start: usize) -> f64 {
        let mut acc = 0.0;
        if let Some(w) = &self.diag_table {
            let ws = &w[start..start + amps.len()];
            let mut lanes = [0.0f64; 4];
            let mut ac = amps.chunks_exact(4);
            let mut wc = ws.chunks_exact(4);
            for (a4, w4) in (&mut ac).zip(&mut wc) {
                for k in 0..4 {
                    lanes[k] += (a4[k] * a4[k]) * w4[k];
                }
            }
            for (a, wv) in ac.remainder().iter().zip(wc.remainder()) {
                lanes[0] += (a * a) * wv;
            }
            acc = (lanes[0] + lanes[1]) + (lanes[2] + lanes[3]);
        } else {
            for (i, a) in amps.iter().enumerate() {
                let c = start + i;
                let p = a * a;
                for &(coeff, z) in &self.diag {
                    acc += if (c & z).count_ones().is_multiple_of(2) {
                        coeff * p
                    } else {
                        -coeff * p
                    };
                }
            }
        }
        acc
    }

    /// Real twin of [`CompiledObservable::offdiag_block`] on an `f64`
    /// state. Terms with an odd Y count (`use_im`) have purely imaginary
    /// matrix elements, so they contribute exactly zero on a real state.
    fn offdiag_block_real(t: &OffDiagTerm, amps: &[f64], p0: usize, p1: usize) -> f64 {
        if t.use_im {
            return 0.0;
        }
        let low = t.pair_bit - 1;
        let mut lanes = [0.0f64; 4];
        if t.z_mask == 0 {
            if t.pair_bit >= 8 {
                let mut p = p0;
                while p < p1 {
                    let c0 = (p & low) | ((p & !low) << 1);
                    let run = (t.pair_bit - (p & low)).min(p1 - p);
                    let a = &amps[c0..c0 + run];
                    let d = &amps[c0 ^ t.x_mask..][..run];
                    let mut ac = a.chunks_exact(4);
                    let mut dc = d.chunks_exact(4);
                    for (a4, d4) in (&mut ac).zip(&mut dc) {
                        for k in 0..4 {
                            lanes[k] += d4[k] * a4[k];
                        }
                    }
                    for (av, dv) in ac.remainder().iter().zip(dc.remainder()) {
                        lanes[0] += dv * av;
                    }
                    p += run;
                }
            } else {
                let mut p = p0;
                while p + 4 <= p1 {
                    for (k, lane) in lanes.iter_mut().enumerate() {
                        let c = ((p + k) & low) | (((p + k) & !low) << 1);
                        *lane += amps[c ^ t.x_mask] * amps[c];
                    }
                    p += 4;
                }
                while p < p1 {
                    let c = (p & low) | ((p & !low) << 1);
                    lanes[0] += amps[c ^ t.x_mask] * amps[c];
                    p += 1;
                }
            }
        } else {
            let term = |p: usize| -> f64 {
                let c = (p & low) | ((p & !low) << 1);
                let m = amps[c ^ t.x_mask] * amps[c];
                if (c & t.z_mask).count_ones().is_multiple_of(2) {
                    m
                } else {
                    -m
                }
            };
            let mut p = p0;
            while p + 4 <= p1 {
                for (k, lane) in lanes.iter_mut().enumerate() {
                    *lane += term(p + k);
                }
                p += 4;
            }
            while p < p1 {
                lanes[0] += term(p);
                p += 1;
            }
        }
        (lanes[0] + lanes[1]) + (lanes[2] + lanes[3])
    }

    /// The fused expectation on a **real** amplitude vector (the
    /// real-run scratch of [`CompiledCircuit::run_expectation`]). Same
    /// block structure and lane partition as
    /// [`CompiledObservable::expectation`], so the result is bitwise
    /// identical to running the complex kernels over the written-back
    /// state (every dropped product has an exactly-zero factor).
    fn expectation_real(&self, amps: &[f64]) -> f64 {
        assert_eq!(amps.len(), 1usize << self.n_qubits, "observable width");
        let mut total = 0.0;
        if !self.diag.is_empty() {
            let mut acc = 0.0;
            for (bi, chunk) in amps.chunks(kernels::BLOCK).enumerate() {
                acc += self.diag_block_real(chunk, bi * kernels::BLOCK);
            }
            total += acc;
        }
        let n_pairs = amps.len() >> 1;
        for t in &self.offdiag {
            let mut acc = 0.0;
            let mut p0 = 0usize;
            while p0 < n_pairs {
                let p1 = (p0 + kernels::BLOCK).min(n_pairs);
                acc += Self::offdiag_block_real(t, amps, p0, p1);
                p0 = p1;
            }
            total += t.prefactor * acc;
        }
        total
    }

    /// The fused expectation `<psi| H |psi>`; agrees with the legacy
    /// per-term kernel to `<= 1e-12`.
    ///
    /// All sweeps run in cache-sized blocks whose partial sums are combined
    /// in block order — the exact reduction the threaded path reproduces,
    /// so sequential and threaded results are bitwise identical.
    ///
    /// # Panics
    ///
    /// Panics on width mismatch.
    pub fn expectation(&self, sv: &StateVector) -> f64 {
        assert_eq!(sv.n_qubits(), self.n_qubits, "observable width");
        let amps = sv.amplitudes();
        let mut total = 0.0;
        if !self.diag.is_empty() {
            let mut acc = 0.0;
            for (bi, chunk) in amps.chunks(kernels::BLOCK).enumerate() {
                acc += self.diag_block(chunk, bi * kernels::BLOCK);
            }
            total += acc;
        }
        let n_pairs = amps.len() >> 1;
        for t in &self.offdiag {
            let mut acc = 0.0;
            let mut p0 = 0usize;
            while p0 < n_pairs {
                let p1 = (p0 + kernels::BLOCK).min(n_pairs);
                acc += Self::offdiag_block(t, amps, p0, p1);
                p0 = p1;
            }
            total += t.prefactor * acc;
        }
        total
    }

    /// Value of work item `item` in the flattened (diag blocks, then
    /// per-term pair blocks) schedule shared by the threaded reduction.
    #[cfg(feature = "parallel")]
    fn item_value(
        &self,
        amps: &[Complex64],
        item: usize,
        diag_items: usize,
        pair_blocks: usize,
    ) -> f64 {
        if item < diag_items {
            let start = item * kernels::BLOCK;
            let end = (start + kernels::BLOCK).min(amps.len());
            self.diag_block(&amps[start..end], start)
        } else {
            let k = item - diag_items;
            let t = &self.offdiag[k / pair_blocks];
            let p0 = (k % pair_blocks) * kernels::BLOCK;
            let p1 = (p0 + kernels::BLOCK).min(amps.len() >> 1);
            Self::offdiag_block(t, amps, p0, p1)
        }
    }

    /// The fused expectation with the block sweeps split across up to
    /// `threads` scoped workers.
    ///
    /// Workers fill disjoint slots of a per-block partial-sum table; the
    /// reduction then combines those partials in exactly the order the
    /// sequential path uses, so the result is bitwise identical to
    /// [`CompiledObservable::expectation`] at any thread count. Narrow
    /// states (or `threads <= 1`) fall back to the sequential path.
    ///
    /// # Panics
    ///
    /// Panics on width mismatch.
    #[cfg(feature = "parallel")]
    pub fn expectation_threaded(&self, sv: &StateVector, threads: usize) -> f64 {
        if threads <= 1 || self.n_qubits < PARALLEL_MIN_QUBITS {
            return self.expectation(sv);
        }
        assert_eq!(sv.n_qubits(), self.n_qubits, "observable width");
        let amps = sv.amplitudes();
        let n_pairs = amps.len() >> 1;
        let pair_blocks = n_pairs.div_ceil(kernels::BLOCK);
        let diag_items = if self.diag.is_empty() {
            0
        } else {
            amps.len().div_ceil(kernels::BLOCK)
        };
        let n_items = diag_items + self.offdiag.len() * pair_blocks;
        if n_items == 0 {
            return 0.0;
        }
        let mut partials = vec![0.0f64; n_items];
        let per = n_items.div_ceil(threads);
        std::thread::scope(|scope| {
            for (w, chunk) in partials.chunks_mut(per).enumerate() {
                let start = w * per;
                scope.spawn(move || {
                    for (k, slot) in chunk.iter_mut().enumerate() {
                        *slot = self.item_value(amps, start + k, diag_items, pair_blocks);
                    }
                });
            }
        });
        let mut total = 0.0;
        if diag_items > 0 {
            let mut acc = 0.0;
            for &v in &partials[..diag_items] {
                acc += v;
            }
            total += acc;
        }
        for (ti, t) in self.offdiag.iter().enumerate() {
            let mut acc = 0.0;
            let base = diag_items + ti * pair_blocks;
            for &v in &partials[base..base + pair_blocks] {
                acc += v;
            }
            total += t.prefactor * acc;
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pauli::PauliString;
    use crate::statevector::reference;
    use qismet_mathkit::rng_from_seed;
    use rand::Rng;

    const TOL: f64 = 1e-12;

    fn random_circuit(n: usize, seed: u64) -> Circuit {
        let mut c = Circuit::new(n);
        let mut rng = rng_from_seed(seed);
        for layer in 0..4 {
            for q in 0..n {
                c.ry(rng.gen::<f64>() * std::f64::consts::TAU, q);
                c.rz(rng.gen::<f64>() * std::f64::consts::TAU, q);
                if layer == 1 {
                    c.h(q);
                }
            }
            for q in 0..n.saturating_sub(1) {
                match (layer + q) % 3 {
                    0 => {
                        c.cx(q, q + 1);
                    }
                    1 => {
                        c.cz(q, q + 1);
                    }
                    _ => {
                        c.rzz(rng.gen::<f64>() - 0.5, q, q + 1);
                    }
                }
            }
        }
        c
    }

    #[test]
    fn compiled_state_matches_interpreted() {
        for n in [1usize, 2, 4, 5] {
            let c = random_circuit(n, 7 + n as u64);
            let direct = StateVector::from_circuit(&c).unwrap();
            let plan = CompiledCircuit::compile(&c);
            let compiled = plan.state().unwrap();
            for (a, b) in direct.amplitudes().iter().zip(compiled.amplitudes()) {
                assert!(a.approx_eq(*b, TOL), "{n}q: {a} vs {b}");
            }
        }
    }

    #[test]
    fn fusion_shrinks_single_qubit_runs() {
        let mut c = Circuit::new(2);
        c.h(0).rz(0.3, 0).ry(0.4, 0).cx(0, 1).h(1).s(1);
        let plan = CompiledCircuit::compile(&c);
        // Everything collapses into one 2-qubit superop: the h/rz/ry run
        // seeds it, the cx extends it, and the trailing h/s on qubit 1
        // (fresh in the superop) are absorbed for free.
        assert_eq!(plan.source_len(), 6);
        assert_eq!(plan.len(), 1);
        let direct = StateVector::from_circuit(&c).unwrap();
        let compiled = plan.state().unwrap();
        assert!(compiled.fidelity(&direct) > 1.0 - TOL);
    }

    #[test]
    fn fusion_respects_two_qubit_barriers() {
        // s(0) ... cx(0,1) ... s(0): the two S gates must NOT merge into a
        // single-qubit product across the entangler. S S |+> would differ
        // from S CX S |+>0. The superop absorbs all four gates in circuit
        // order, which preserves the barrier.
        let mut c = Circuit::new(2);
        c.h(0).s(0).cx(0, 1).s(0);
        let direct = StateVector::from_circuit(&c).unwrap();
        let plan = CompiledCircuit::compile(&c);
        let compiled = plan.state().unwrap();
        assert!(compiled.fidelity(&direct) > 1.0 - TOL);
        assert_eq!(plan.len(), 1);
    }

    #[test]
    fn ghz_chain_lowers_to_superop_plus_ladder() {
        let n = 8;
        let mut c = Circuit::new(n);
        c.h(0);
        for q in 0..n - 1 {
            c.cx(q, q + 1);
        }
        let plan = CompiledCircuit::compile(&c);
        // h + the first two CXs fill a 3-qubit superop; the remaining pure
        // CX chain (5 gates over 6 wires) becomes one permutation table.
        assert_eq!(plan.len(), 2);
        let direct = StateVector::from_circuit(&c).unwrap();
        let compiled = plan.state().unwrap();
        for (a, b) in direct.amplitudes().iter().zip(compiled.amplitudes()) {
            assert!(a.approx_eq(*b, TOL), "{a} vs {b}");
        }
    }

    #[test]
    fn free_rzz_ladder_rebinds() {
        let mut c = Circuit::new(3);
        c.rzz(Param::Free(0), 0, 1)
            .rzz(Param::Free(1), 1, 2)
            .cx(0, 2);
        let mut plan = CompiledCircuit::compile(&c);
        assert_eq!(plan.len(), 1);
        plan.rebind(&[0.4, -1.1]).unwrap();
        // Exercise on a dense state: prefix rotations run first, then the
        // rebound ladder plan.
        let mut prefix = Circuit::new(3);
        for q in 0..3 {
            prefix.ry(0.3 + q as f64, q).rz(1.1 - q as f64, q);
        }
        let mut sv = StateVector::from_circuit(&prefix).unwrap();
        plan.apply(&mut sv).unwrap();

        let mut full = prefix.clone();
        full.rzz(0.4, 0, 1).rzz(-1.1, 1, 2).cx(0, 2);
        let direct = StateVector::from_circuit(&full).unwrap();
        for (a, b) in direct.amplitudes().iter().zip(sv.amplitudes()) {
            assert!(a.approx_eq(*b, TOL), "{a} vs {b}");
        }
    }

    #[cfg(feature = "parallel")]
    #[test]
    fn threaded_apply_bitwise_identical_at_any_thread_count() {
        // 16 qubits crosses PARALLEL_MIN_QUBITS, so the threaded path
        // actually partitions the state.
        let c = random_circuit(16, 99);
        let plan = CompiledCircuit::compile(&c);
        let mut seq = StateVector::new(16);
        plan.run(&mut seq).unwrap();
        for threads in [2usize, 3, 4, 8] {
            let mut par = StateVector::new(16);
            plan.run_threaded(&mut par, threads).unwrap();
            assert_eq!(seq.amplitudes(), par.amplitudes(), "threads={threads}");
        }
    }

    #[cfg(feature = "parallel")]
    #[test]
    fn threaded_expectation_bitwise_identical_at_any_thread_count() {
        let c = random_circuit(16, 7);
        let sv = CompiledCircuit::compile(&c).state().unwrap();
        let h = crate::PauliSum::from_labels(&[
            (0.75, "ZZIIIIIIIIIIIIII"),
            (-0.5, "IXXIIIIIIIIIIIII"),
            (0.25, "IIIYZIIIIIIIIIII"),
            (1.5, "XIIIIIIIIIIIIIIX"),
            (-0.4, "ZIIIIIIIZIIIIIIZ"),
        ])
        .unwrap();
        let obs = CompiledObservable::compile(&h);
        let seq = obs.expectation(&sv);
        for threads in [2usize, 3, 4, 8] {
            let par = obs.expectation_threaded(&sv, threads);
            assert_eq!(seq.to_bits(), par.to_bits(), "threads={threads}");
        }
    }

    #[test]
    fn rebind_equals_fresh_compile() {
        let mut c = Circuit::new(3);
        c.ry(Param::Free(0), 0)
            .rz(Param::Free(1), 0)
            .cx(0, 1)
            .ry(Param::Free(2), 1)
            .rzz(Param::Free(3), 1, 2)
            .ry(0.25, 2);
        let p1 = [0.3, -0.9, 1.4, 0.6];
        let p2 = [2.2, 0.1, -0.5, 1.9];

        let mut plan = CompiledCircuit::compile(&c);
        assert!(!plan.is_bound());
        plan.rebind(&p1).unwrap();
        plan.rebind(&p2).unwrap();
        plan.rebind(&p1).unwrap();
        let rebound = plan.state().unwrap();

        let mut fresh = CompiledCircuit::compile(&c);
        fresh.rebind(&p1).unwrap();
        let once = fresh.state().unwrap();
        // Identical arithmetic => bitwise identical states.
        assert_eq!(rebound.amplitudes(), once.amplitudes());
    }

    #[test]
    fn unbound_plan_errors() {
        let mut c = Circuit::new(1);
        c.ry(Param::Free(0), 0);
        let plan = CompiledCircuit::compile(&c);
        assert_eq!(plan.state().unwrap_err(), GateError::UnboundParameter);
        let mut plan = CompiledCircuit::compile(&c);
        assert_eq!(plan.rebind(&[]).unwrap_err(), GateError::UnboundParameter);
    }

    #[test]
    fn template_matches_structure_not_angles() {
        let a = random_circuit(3, 1);
        let b = random_circuit(3, 2); // same structure, different angles
        let plan = CompiledCircuit::compile_template(&a);
        assert!(plan.matches_structure(&a));
        assert!(plan.matches_structure(&b));
        let mut different = Circuit::new(3);
        different.h(0);
        assert!(!plan.matches_structure(&different));
    }

    #[test]
    fn template_rebinds_from_extracted_angles() {
        let a = random_circuit(4, 3);
        let b = random_circuit(4, 4);
        let mut plan = CompiledCircuit::compile_template(&a);
        let mut angles = Vec::new();
        for target in [&a, &b] {
            CompiledCircuit::extract_angles(target, &mut angles).unwrap();
            plan.rebind(&angles).unwrap();
            let got = plan.state().unwrap();
            let want = StateVector::from_circuit(target).unwrap();
            assert!(got.fidelity(&want) > 1.0 - TOL);
        }
    }

    #[test]
    fn extract_angles_rejects_unbound() {
        let mut c = Circuit::new(1);
        c.ry(Param::Free(0), 0);
        let mut out = vec![1.0, 2.0];
        assert_eq!(
            CompiledCircuit::extract_angles(&c, &mut out).unwrap_err(),
            GateError::UnboundParameter
        );
    }

    #[test]
    fn compiled_observable_matches_reference_kernel() {
        let labels = [
            "ZZII", "IZZI", "XIII", "IXII", "YYII", "XYZI", "IIII", "ZIZI", "XXXX", "YZIX",
        ];
        let pairs: Vec<(f64, &str)> = labels
            .iter()
            .enumerate()
            .map(|(i, l)| {
                (
                    0.3 * (i as f64 + 1.0) * if i % 2 == 0 { 1.0 } else { -1.0 },
                    *l,
                )
            })
            .collect();
        let h = PauliSum::from_labels(&pairs).unwrap();
        let obs = CompiledObservable::compile(&h);
        assert_eq!(obs.n_terms(), labels.len());
        for seed in 0..6 {
            let sv = StateVector::from_circuit(&random_circuit(4, 40 + seed)).unwrap();
            let want = reference::expectation(&sv, &h);
            let got = obs.expectation(&sv);
            assert!((want - got).abs() < TOL, "seed {seed}: {want} vs {got}");
        }
    }

    #[test]
    fn diagonal_only_observable_uses_single_sweep() {
        let h = PauliSum::from_labels(&[(0.5, "ZZ"), (-0.25, "IZ"), (1.5, "II")]).unwrap();
        let obs = CompiledObservable::compile(&h);
        assert_eq!(obs.n_diagonal_terms(), 3);
        let sv = StateVector::from_circuit(&random_circuit(2, 9)).unwrap();
        assert!((obs.expectation(&sv) - reference::expectation(&sv, &h)).abs() < TOL);
    }

    #[test]
    fn wide_observable_falls_back_without_table() {
        // Build the same small observable, but verify the fallback branch by
        // compiling against a hand-made CompiledObservable with the table
        // stripped.
        let h = PauliSum::from_labels(&[(0.7, "ZIZ"), (-0.2, "IZI"), (0.4, "XIX")]).unwrap();
        let mut obs = CompiledObservable::compile(&h);
        let sv = StateVector::from_circuit(&random_circuit(3, 11)).unwrap();
        let with_table = obs.expectation(&sv);
        obs.diag_table = None;
        let without_table = obs.expectation(&sv);
        assert!((with_table - without_table).abs() < TOL);
        assert!((with_table - reference::expectation(&sv, &h)).abs() < TOL);
    }

    #[test]
    fn bell_pair_expectations() {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1);
        let sv = StateVector::from_circuit(&c).unwrap();
        for (label, want) in [("ZZ", 1.0), ("XX", 1.0), ("YY", -1.0), ("ZI", 0.0)] {
            let h = PauliSum::from_labels(&[(1.0, label)]).unwrap();
            let got = CompiledObservable::compile(&h).expectation(&sv);
            assert!((got - want).abs() < TOL, "{label}: {got} vs {want}");
        }
        // Single off-diagonal string via PauliString-style compile.
        let p = PauliString::from_label("XY").unwrap();
        let mut h = PauliSum::zero(2);
        h.add_term(1.0, p);
        let got = CompiledObservable::compile(&h).expectation(&sv);
        assert!(got.abs() < TOL);
    }
}

//! Circuit and observable compilation: the allocation-free hot path.
//!
//! Every VQA campaign is thousands of optimizer iterations, each dominated
//! by objective evaluations of the *same* ansatz at different angles. The
//! interpreted path pays per evaluation for work that only depends on the
//! circuit's structure: binding a fresh [`Circuit`], dispatching gate by
//! gate through an enum match, materializing heap-allocated gate matrices,
//! and sweeping the full state once per Hamiltonian term. This module
//! hoists all of that to compile time:
//!
//! * [`CompiledCircuit`] lowers a [`Circuit`] once into a flat op-list with
//!   fused single-qubit runs and in-place parameter rebinding, so evaluating
//!   a new parameter point recomputes a handful of stack-allocated 2x2
//!   matrices and nothing else.
//! * [`CompiledObservable`] lowers a [`PauliSum`] once into a fused
//!   expectation kernel: all diagonal (Z/I-only) terms are evaluated in one
//!   shared probability sweep, and each off-diagonal term uses precomputed
//!   x/z masks, a hoisted `i^y` phase, and Hermitian pair-skipping (half the
//!   state per term).
//!
//! The legacy per-term kernels are preserved in
//! [`crate::statevector::reference`]; the compiled kernels agree with them
//! to `<= 1e-12` (pinned by the `compiled_equivalence` proptest suite).
//! Gate application itself reuses the exact stride-skipping kernels of
//! [`StateVector`], so two backends executing the same plan produce
//! bit-identical results.

use crate::circuit::Circuit;
use crate::gate::{Gate, GateError, Param};
use crate::pauli::PauliSum;
use crate::statevector::StateVector;
use qismet_mathkit::Complex64;

/// A stack-allocated 2x2 unitary (row-major).
type Mat2 = [[Complex64; 2]; 2];

const ID2: Mat2 = [
    [Complex64::ONE, Complex64::ZERO],
    [Complex64::ZERO, Complex64::ONE],
];

/// `a * b` for 2x2 complex matrices, entirely on the stack.
fn mul2(a: &Mat2, b: &Mat2) -> Mat2 {
    [
        [
            a[0][0] * b[0][0] + a[0][1] * b[1][0],
            a[0][0] * b[0][1] + a[0][1] * b[1][1],
        ],
        [
            a[1][0] * b[0][0] + a[1][1] * b[1][0],
            a[1][0] * b[0][1] + a[1][1] * b[1][1],
        ],
    ]
}

/// The 2x2 matrix of a one-qubit gate with free parameters resolved from
/// `params`, built without heap allocation. The entries match
/// [`Gate::matrix`] bit for bit so fused and interpreted execution differ
/// only in multiplication order.
fn gate_mat2(gate: Gate, params: &[f64]) -> Result<Mat2, GateError> {
    use Complex64 as C;
    let angle = |p: Param| -> Result<f64, GateError> {
        match p {
            Param::Fixed(v) => Ok(v),
            Param::Free(k) => params.get(k).copied().ok_or(GateError::UnboundParameter),
        }
    };
    let f = std::f64::consts::FRAC_1_SQRT_2;
    Ok(match gate {
        Gate::H => [
            [C::from_re(f), C::from_re(f)],
            [C::from_re(f), C::from_re(-f)],
        ],
        Gate::X => [[C::ZERO, C::ONE], [C::ONE, C::ZERO]],
        Gate::Y => [[C::ZERO, -C::I], [C::I, C::ZERO]],
        Gate::Z => [[C::ONE, C::ZERO], [C::ZERO, -C::ONE]],
        Gate::S => [[C::ONE, C::ZERO], [C::ZERO, C::I]],
        Gate::Sdg => [[C::ONE, C::ZERO], [C::ZERO, -C::I]],
        Gate::T => [
            [C::ONE, C::ZERO],
            [C::ZERO, C::cis(std::f64::consts::FRAC_PI_4)],
        ],
        Gate::Tdg => [
            [C::ONE, C::ZERO],
            [C::ZERO, C::cis(-std::f64::consts::FRAC_PI_4)],
        ],
        Gate::Sx => [
            [C::new(0.5, 0.5), C::new(0.5, -0.5)],
            [C::new(0.5, -0.5), C::new(0.5, 0.5)],
        ],
        Gate::Rx(p) => {
            let t = angle(p)? / 2.0;
            let (c, s) = (t.cos(), t.sin());
            [
                [C::from_re(c), C::new(0.0, -s)],
                [C::new(0.0, -s), C::from_re(c)],
            ]
        }
        Gate::Ry(p) => {
            let t = angle(p)? / 2.0;
            let (c, s) = (t.cos(), t.sin());
            [
                [C::from_re(c), C::from_re(-s)],
                [C::from_re(s), C::from_re(c)],
            ]
        }
        Gate::Rz(p) => {
            let t = angle(p)? / 2.0;
            [[C::cis(-t), C::ZERO], [C::ZERO, C::cis(t)]]
        }
        Gate::Phase(p) => [[C::ONE, C::ZERO], [C::ZERO, C::cis(angle(p)?)]],
        Gate::Cx | Gate::Cz | Gate::Swap | Gate::Rzz(_) => {
            unreachable!("two-qubit gate has no 2x2 matrix")
        }
    })
}

/// `true` for gates whose 2x2 matrix is real for **any** angle, so a fused
/// segment of them stays real across every rebinding and can run on the
/// halved-multiply real kernel.
fn gate_is_real(g: Gate) -> bool {
    matches!(g, Gate::H | Gate::X | Gate::Z | Gate::Ry(_))
}

/// One lowered operation of an execution plan.
#[derive(Debug, Clone, Copy)]
enum PlanOp {
    /// A (possibly fused) 2x2 unitary on one qubit.
    OneQ { qubit: usize, u: Mat2 },
    /// A (possibly fused) **real** 2x2 unitary on one qubit — the
    /// `RealAmplitudes`-family fast path (half the multiplies of the
    /// complex butterfly).
    OneQReal { qubit: usize, m: [[f64; 2]; 2] },
    /// Controlled-X.
    Cx { control: usize, target: usize },
    /// Controlled-Z.
    Cz { a: usize, b: usize },
    /// SWAP.
    Swap { a: usize, b: usize },
    /// ZZ interaction with precomputed diagonal phases.
    Rzz {
        a: usize,
        b: usize,
        plus: Complex64,
        minus: Complex64,
    },
}

/// A rebindable slot: plan state that must be recomputed when the free
/// parameter vector changes.
#[derive(Debug, Clone, Copy)]
enum Slot {
    /// Fused single-qubit segment containing at least one free parameter;
    /// `seg` indexes the plan's constituent-gate lists.
    Fused { op: usize, seg: usize },
    /// RZZ whose angle is the free parameter `param`.
    Rzz { op: usize, param: usize },
}

/// A fused one-qubit segment accumulated during lowering. Segments on
/// different wires interleave in program order, so each keeps its own gate
/// list rather than a range into a shared one.
#[derive(Debug, Clone)]
struct Segment {
    op: usize,
    gates: Vec<Gate>,
    free: bool,
}

/// Product of a fused segment's gate matrices (applied left to right),
/// seeded from the first gate so single-gate segments — the common case in
/// hardware-efficient ansatz layers — pay no identity multiply.
fn fused_mat2(gates: &[Gate], values: &[f64]) -> Result<Mat2, GateError> {
    let mut it = gates.iter();
    let mut u = match it.next() {
        Some(g) => gate_mat2(*g, values)?,
        None => ID2,
    };
    for g in it {
        u = mul2(&gate_mat2(*g, values)?, &u);
    }
    Ok(u)
}

/// Writes a fused matrix into a one-qubit plan op, dropping the (exactly
/// zero) imaginary parts when the op uses the real kernel.
fn write_one_q(op: &mut PlanOp, u: &Mat2) {
    match op {
        PlanOp::OneQ { u: slot, .. } => *slot = *u,
        PlanOp::OneQReal { m, .. } => {
            *m = [[u[0][0].re, u[0][1].re], [u[1][0].re, u[1][1].re]];
        }
        _ => unreachable!("not a one-qubit op"),
    }
}

fn kind_tag(g: Gate) -> u8 {
    match g {
        Gate::H => 0,
        Gate::X => 1,
        Gate::Y => 2,
        Gate::Z => 3,
        Gate::S => 4,
        Gate::Sdg => 5,
        Gate::T => 6,
        Gate::Tdg => 7,
        Gate::Sx => 8,
        Gate::Rx(_) => 9,
        Gate::Ry(_) => 10,
        Gate::Rz(_) => 11,
        Gate::Phase(_) => 12,
        Gate::Cx => 13,
        Gate::Cz => 14,
        Gate::Swap => 15,
        Gate::Rzz(_) => 16,
    }
}

/// A [`Circuit`] lowered into a flat, rebindable execution plan.
///
/// Compilation fuses runs of adjacent single-qubit gates on the same wire
/// (gates separated only by operations on *other* wires commute past them)
/// into one 2x2 unitary, precomputes every angle-independent matrix and
/// phase, and records a rebinding recipe for everything that depends on a
/// free parameter. [`CompiledCircuit::rebind`] then re-evaluates only those
/// slots — no heap allocation, no gate re-dispatch — which is what lets a
/// tuning loop evaluate thousands of parameter points for the cost of a few
/// stack 2x2 products each.
///
/// # Examples
///
/// ```
/// use qismet_qsim::{Circuit, CompiledCircuit, Param, StateVector};
///
/// let mut c = Circuit::new(2);
/// c.ry(Param::Free(0), 0).cx(0, 1).ry(Param::Free(1), 1);
/// let mut plan = CompiledCircuit::compile(&c);
/// plan.rebind(&[0.3, 0.7]).unwrap();
/// let mut sv = StateVector::new(2);
/// plan.apply(&mut sv).unwrap();
/// let direct = StateVector::from_circuit(&c.bind(&[0.3, 0.7]).unwrap()).unwrap();
/// assert!(sv.fidelity(&direct) > 1.0 - 1e-12);
/// ```
#[derive(Debug, Clone)]
pub struct CompiledCircuit {
    n_qubits: usize,
    n_params: usize,
    ops: Vec<PlanOp>,
    /// Constituent gates of parameterized fused segments, in application
    /// order (rebind recomputes their product).
    fused_gates: Vec<Vec<Gate>>,
    slots: Vec<Slot>,
    bound: bool,
    source_len: usize,
    /// Structural fingerprint of the source circuit: (kind, q0, q1) per op,
    /// angle-blind. Used by backend plan caches to match circuits that share
    /// a structure.
    key: Vec<(u8, u8, u8)>,
}

impl CompiledCircuit {
    /// Lowers a circuit, keeping its free-parameter slots (`Param::Free(k)`
    /// reads `params[k]` at [`CompiledCircuit::rebind`] time). Fixed angles
    /// are baked in at compile time.
    pub fn compile(circuit: &Circuit) -> Self {
        Self::lower(circuit, false)
    }

    /// Lowers a circuit treating **every** gate angle — fixed or free — as a
    /// rebindable slot, numbered in traversal order. Combined with
    /// [`CompiledCircuit::extract_angles`] this lets one plan serve every
    /// bound circuit that shares a structure (the backend plan-cache path).
    pub fn compile_template(circuit: &Circuit) -> Self {
        Self::lower(circuit, true)
    }

    fn lower(circuit: &Circuit, template: bool) -> Self {
        let n = circuit.n_qubits();
        let mut ops: Vec<PlanOp> = Vec::new();
        let mut slots: Vec<Slot> = Vec::new();
        let mut segments: Vec<Segment> = Vec::new();
        let mut pending: Vec<Option<usize>> = vec![None; n];
        let mut key = Vec::with_capacity(circuit.len());
        let mut next_slot = 0usize;
        // In template mode every parameterized gate's angle becomes the next
        // numbered slot; otherwise free indices pass through unchanged.
        let mut remap = |g: Gate| -> Gate {
            if !template {
                return g;
            }
            if g.is_parameterized() {
                let slot = Param::Free(next_slot);
                next_slot += 1;
                match g {
                    Gate::Rx(_) => Gate::Rx(slot),
                    Gate::Ry(_) => Gate::Ry(slot),
                    Gate::Rz(_) => Gate::Rz(slot),
                    Gate::Phase(_) => Gate::Phase(slot),
                    Gate::Rzz(_) => Gate::Rzz(slot),
                    _ => unreachable!(),
                }
            } else {
                g
            }
        };
        for op in circuit.ops() {
            let g = remap(op.gate);
            key.push((kind_tag(g), op.qubits[0] as u8, op.qubits[1] as u8));
            if g.arity() == 1 {
                let q = op.qubits[0];
                let free = matches!(g.param(), Some(Param::Free(_)));
                match pending[q] {
                    Some(seg_idx) => {
                        let seg = &mut segments[seg_idx];
                        seg.gates.push(g);
                        seg.free |= free;
                    }
                    None => {
                        ops.push(PlanOp::OneQ { qubit: q, u: ID2 });
                        pending[q] = Some(segments.len());
                        segments.push(Segment {
                            op: ops.len() - 1,
                            gates: vec![g],
                            free,
                        });
                    }
                }
            } else {
                let (a, b) = (op.qubits[0], op.qubits[1]);
                pending[a] = None;
                pending[b] = None;
                match g {
                    Gate::Cx => ops.push(PlanOp::Cx {
                        control: a,
                        target: b,
                    }),
                    Gate::Cz => ops.push(PlanOp::Cz { a, b }),
                    Gate::Swap => ops.push(PlanOp::Swap { a, b }),
                    Gate::Rzz(p) => match p {
                        Param::Fixed(theta) => ops.push(PlanOp::Rzz {
                            a,
                            b,
                            plus: Complex64::cis(theta / 2.0),
                            minus: Complex64::cis(-theta / 2.0),
                        }),
                        Param::Free(k) => {
                            ops.push(PlanOp::Rzz {
                                a,
                                b,
                                plus: Complex64::ONE,
                                minus: Complex64::ONE,
                            });
                            slots.push(Slot::Rzz {
                                op: ops.len() - 1,
                                param: k,
                            });
                        }
                    },
                    _ => unreachable!("one-qubit gates handled above"),
                }
            }
        }
        // Angle-independent segments get their fused matrix baked in now;
        // parameterized segments become rebind slots owning their gate list.
        // Segments made only of real-for-any-angle gates are lowered to the
        // real kernel variant (the choice depends on gate kinds, never on
        // angle values, so rebinding preserves it).
        let mut fused_gates: Vec<Vec<Gate>> = Vec::new();
        for seg in segments {
            let real = seg.gates.iter().all(|&g| gate_is_real(g));
            let qubit = match ops[seg.op] {
                PlanOp::OneQ { qubit, .. } => qubit,
                _ => unreachable!("segment placeholders are OneQ"),
            };
            if real {
                ops[seg.op] = PlanOp::OneQReal {
                    qubit,
                    m: [[1.0, 0.0], [0.0, 1.0]],
                };
            }
            if seg.free {
                slots.push(Slot::Fused {
                    op: seg.op,
                    seg: fused_gates.len(),
                });
                fused_gates.push(seg.gates);
            } else {
                let u = fused_mat2(&seg.gates, &[]).expect("segment has no free parameters");
                write_one_q(&mut ops[seg.op], &u);
            }
        }
        let n_params = if template {
            next_slot
        } else {
            circuit.n_params()
        };
        CompiledCircuit {
            n_qubits: n,
            n_params,
            bound: n_params == 0,
            source_len: circuit.len(),
            ops,
            fused_gates,
            slots,
            key,
        }
    }

    /// Circuit width.
    pub fn n_qubits(&self) -> usize {
        self.n_qubits
    }

    /// Number of free parameter slots.
    pub fn n_params(&self) -> usize {
        self.n_params
    }

    /// Lowered op count (after fusion).
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// `true` when the plan contains no operations.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Gate count of the source circuit (before fusion).
    pub fn source_len(&self) -> usize {
        self.source_len
    }

    /// `true` once every parameterized slot holds concrete values (always
    /// true for parameter-free circuits; otherwise set by the first
    /// successful [`CompiledCircuit::rebind`]).
    pub fn is_bound(&self) -> bool {
        self.bound
    }

    /// `true` when `circuit` has the same structure (gate kinds and
    /// operands, angles ignored) as the circuit this plan was compiled
    /// from — i.e. a template-mode plan can serve it via
    /// [`CompiledCircuit::rebind`] with its extracted angles.
    pub fn matches_structure(&self, circuit: &Circuit) -> bool {
        circuit.n_qubits() == self.n_qubits
            && circuit.len() == self.key.len()
            && circuit
                .ops()
                .iter()
                .zip(&self.key)
                .all(|(op, k)| *k == (kind_tag(op.gate), op.qubits[0] as u8, op.qubits[1] as u8))
    }

    /// Collects the concrete angle of every parameterized gate of `circuit`
    /// in traversal order into `out` (cleared first) — the parameter vector
    /// a template-mode plan of matching structure expects.
    ///
    /// # Errors
    ///
    /// [`GateError::UnboundParameter`] if any gate still carries a free
    /// parameter.
    pub fn extract_angles(circuit: &Circuit, out: &mut Vec<f64>) -> Result<(), GateError> {
        out.clear();
        for op in circuit.ops() {
            if let Some(p) = op.gate.param() {
                out.push(p.value().ok_or(GateError::UnboundParameter)?);
            }
        }
        Ok(())
    }

    /// Recomputes every parameter-dependent slot from `values`, in place —
    /// no allocation, no gate re-dispatch.
    ///
    /// # Errors
    ///
    /// [`GateError::UnboundParameter`] if `values` is shorter than
    /// [`CompiledCircuit::n_params`]; the plan keeps its previous binding.
    pub fn rebind(&mut self, values: &[f64]) -> Result<(), GateError> {
        if values.len() < self.n_params {
            return Err(GateError::UnboundParameter);
        }
        let CompiledCircuit {
            ops,
            fused_gates,
            slots,
            ..
        } = self;
        for slot in slots.iter() {
            match *slot {
                Slot::Fused { op, seg } => {
                    let u = fused_mat2(&fused_gates[seg], values)?;
                    write_one_q(&mut ops[op], &u);
                }
                Slot::Rzz { op, param } => {
                    let theta = values[param];
                    if let PlanOp::Rzz { plus, minus, .. } = &mut ops[op] {
                        *plus = Complex64::cis(theta / 2.0);
                        *minus = Complex64::cis(-theta / 2.0);
                    }
                }
            }
        }
        self.bound = true;
        Ok(())
    }

    /// Applies the plan to a state in place (the state is **not** reset
    /// first; see [`CompiledCircuit::run`]).
    ///
    /// # Errors
    ///
    /// [`GateError::UnboundParameter`] if the plan has unbound slots.
    ///
    /// # Panics
    ///
    /// Panics on width mismatch.
    pub fn apply(&self, sv: &mut StateVector) -> Result<(), GateError> {
        if !self.bound {
            return Err(GateError::UnboundParameter);
        }
        assert_eq!(
            sv.n_qubits(),
            self.n_qubits,
            "plan width must match state width"
        );
        for op in &self.ops {
            match op {
                PlanOp::OneQ { qubit, u } => sv.apply_1q(u, *qubit),
                PlanOp::OneQReal { qubit, m } => sv.apply_1q_real(m, *qubit),
                PlanOp::Cx { control, target } => sv.apply_cx(*control, *target),
                PlanOp::Cz { a, b } => sv.apply_cz(*a, *b),
                PlanOp::Swap { a, b } => sv.apply_swap(*a, *b),
                PlanOp::Rzz { a, b, plus, minus } => sv.apply_rzz_phases(*minus, *plus, *a, *b),
            }
        }
        Ok(())
    }

    /// Resets `sv` to `|0...0>` and applies the plan — the zero-allocation
    /// equivalent of [`StateVector::from_circuit`] on a reused buffer.
    ///
    /// # Errors
    ///
    /// [`GateError::UnboundParameter`] if the plan has unbound slots.
    pub fn run(&self, sv: &mut StateVector) -> Result<(), GateError> {
        sv.reset();
        self.apply(sv)
    }

    /// Runs the plan on a freshly allocated zero state.
    ///
    /// # Errors
    ///
    /// [`GateError::UnboundParameter`] if the plan has unbound slots.
    pub fn state(&self) -> Result<StateVector, GateError> {
        let mut sv = StateVector::new(self.n_qubits);
        self.apply(&mut sv)?;
        Ok(sv)
    }
}

/// Diagonal-weight tables are only materialized up to this width (beyond it
/// the table would rival the state vector itself in memory; the fused sweep
/// then falls back to recomputing signs per index, still in one pass).
const DIAG_TABLE_MAX_QUBITS: usize = 16;

/// One off-diagonal (X/Y-carrying) term of a compiled observable.
#[derive(Debug, Clone, Copy)]
struct OffDiagTerm {
    /// `2 * coeff * sign(i^y)` — the `i^y` global phase and the Hermitian
    /// pair doubling, hoisted out of the sweep entirely.
    prefactor: f64,
    /// `true` when the term has an odd number of Y factors (the pair sum
    /// then lives in the imaginary part).
    use_im: bool,
    x_mask: usize,
    z_mask: usize,
    /// Lowest set bit of `x_mask`: enumerating indices with this bit clear
    /// visits each `(c, c ^ x_mask)` pair exactly once.
    pair_bit: usize,
}

/// A [`PauliSum`] compiled into a fused expectation kernel.
///
/// Diagonal terms (Z/I-only, including the identity offset) are folded into
/// a single per-basis weight table evaluated in **one** probability sweep;
/// each off-diagonal term sweeps only half the state (Hermitian pairing)
/// with its `i^y` phase and sign masks precomputed. Replaces the legacy
/// one-full-sweep-per-term kernel kept in [`crate::statevector::reference`].
///
/// # Examples
///
/// ```
/// use qismet_qsim::{Circuit, CompiledObservable, PauliSum, StateVector};
///
/// let h = PauliSum::from_labels(&[(1.0, "XIX"), (1.0, "ZZI")]).unwrap();
/// let obs = CompiledObservable::compile(&h);
/// let mut c = Circuit::new(3);
/// c.ry(0.4, 0).cx(0, 1).ry(1.1, 2);
/// let sv = StateVector::from_circuit(&c).unwrap();
/// assert!((obs.expectation(&sv) - sv.expectation(&h)).abs() < 1e-12);
/// ```
#[derive(Debug, Clone)]
pub struct CompiledObservable {
    n_qubits: usize,
    n_terms: usize,
    /// `(coeff, z_mask)` of diagonal terms; used directly when the weight
    /// table is too wide to materialize.
    diag: Vec<(f64, usize)>,
    /// Per-basis-index diagonal weight `w[c] = sum_j c_j (-1)^{|c & z_j|}`.
    diag_table: Option<Vec<f64>>,
    offdiag: Vec<OffDiagTerm>,
}

impl CompiledObservable {
    /// Compiles the fused kernel for `h`.
    pub fn compile(h: &PauliSum) -> Self {
        let mut diag = Vec::new();
        let mut offdiag = Vec::new();
        for (c, s) in h.terms() {
            let x = s.x_mask() as usize;
            let z = s.z_mask() as usize;
            if x == 0 {
                diag.push((*c, z));
            } else {
                let y = s.y_count();
                // i^y, folded with the Hermitian pair structure: even y keeps
                // the real part (sign -1 for y % 4 == 2), odd y keeps the
                // imaginary part (sign -1 for y % 4 == 1).
                let sign = match y % 4 {
                    0 | 3 => 1.0,
                    _ => -1.0,
                };
                offdiag.push(OffDiagTerm {
                    prefactor: 2.0 * c * sign,
                    use_im: y % 2 == 1,
                    x_mask: x,
                    z_mask: z,
                    pair_bit: x & x.wrapping_neg(),
                });
            }
        }
        let diag_table = if !diag.is_empty() && h.n_qubits() <= DIAG_TABLE_MAX_QUBITS {
            let dim = 1usize << h.n_qubits();
            let mut w = vec![0.0f64; dim];
            for (c, wc) in w.iter_mut().enumerate() {
                for &(coeff, z) in &diag {
                    *wc += if (c & z).count_ones() % 2 == 0 {
                        coeff
                    } else {
                        -coeff
                    };
                }
            }
            Some(w)
        } else {
            None
        };
        CompiledObservable {
            n_qubits: h.n_qubits(),
            n_terms: h.terms().len(),
            diag,
            diag_table,
            offdiag,
        }
    }

    /// Observable width.
    pub fn n_qubits(&self) -> usize {
        self.n_qubits
    }

    /// Number of source Hamiltonian terms.
    pub fn n_terms(&self) -> usize {
        self.n_terms
    }

    /// Number of diagonal (Z/I-only) terms fused into the probability sweep.
    pub fn n_diagonal_terms(&self) -> usize {
        self.diag.len()
    }

    /// The fused expectation `<psi| H |psi>`; agrees with the legacy
    /// per-term kernel to `<= 1e-12`.
    ///
    /// # Panics
    ///
    /// Panics on width mismatch.
    pub fn expectation(&self, sv: &StateVector) -> f64 {
        assert_eq!(sv.n_qubits(), self.n_qubits, "observable width");
        let amps = sv.amplitudes();
        let mut total = 0.0;
        if let Some(w) = &self.diag_table {
            let mut acc = 0.0;
            for (a, wc) in amps.iter().zip(w.iter()) {
                acc += a.norm_sqr() * wc;
            }
            total += acc;
        } else if !self.diag.is_empty() {
            let mut acc = 0.0;
            for (c, a) in amps.iter().enumerate() {
                let p = a.norm_sqr();
                for &(coeff, z) in &self.diag {
                    acc += if (c & z).count_ones() % 2 == 0 {
                        coeff * p
                    } else {
                        -coeff * p
                    };
                }
            }
            total += acc;
        }
        let dim = amps.len();
        for t in &self.offdiag {
            let mut acc = 0.0;
            let b = t.pair_bit;
            let mut base = 0usize;
            if t.z_mask == 0 && !t.use_im {
                // Pure-X term (no Y, no Z): every pair contributes with the
                // same sign, and only the real part of conj(a_d) * a_c is
                // needed — a two-multiply inner loop.
                while base < dim {
                    for c in base..base + b {
                        let d = amps[c ^ t.x_mask];
                        let a = amps[c];
                        acc += d.re * a.re + d.im * a.im;
                    }
                    base += b << 1;
                }
            } else {
                while base < dim {
                    for c in base..base + b {
                        let v = amps[c ^ t.x_mask].conj() * amps[c];
                        let m = if t.use_im { v.im } else { v.re };
                        acc += if (c & t.z_mask).count_ones() % 2 == 0 {
                            m
                        } else {
                            -m
                        };
                    }
                    base += b << 1;
                }
            }
            total += t.prefactor * acc;
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pauli::PauliString;
    use crate::statevector::reference;
    use qismet_mathkit::rng_from_seed;
    use rand::Rng;

    const TOL: f64 = 1e-12;

    fn random_circuit(n: usize, seed: u64) -> Circuit {
        let mut c = Circuit::new(n);
        let mut rng = rng_from_seed(seed);
        for layer in 0..4 {
            for q in 0..n {
                c.ry(rng.gen::<f64>() * std::f64::consts::TAU, q);
                c.rz(rng.gen::<f64>() * std::f64::consts::TAU, q);
                if layer == 1 {
                    c.h(q);
                }
            }
            for q in 0..n.saturating_sub(1) {
                match (layer + q) % 3 {
                    0 => {
                        c.cx(q, q + 1);
                    }
                    1 => {
                        c.cz(q, q + 1);
                    }
                    _ => {
                        c.rzz(rng.gen::<f64>() - 0.5, q, q + 1);
                    }
                }
            }
        }
        c
    }

    #[test]
    fn compiled_state_matches_interpreted() {
        for n in [1usize, 2, 4, 5] {
            let c = random_circuit(n, 7 + n as u64);
            let direct = StateVector::from_circuit(&c).unwrap();
            let plan = CompiledCircuit::compile(&c);
            let compiled = plan.state().unwrap();
            for (a, b) in direct.amplitudes().iter().zip(compiled.amplitudes()) {
                assert!(a.approx_eq(*b, TOL), "{n}q: {a} vs {b}");
            }
        }
    }

    #[test]
    fn fusion_shrinks_single_qubit_runs() {
        let mut c = Circuit::new(2);
        c.h(0).rz(0.3, 0).ry(0.4, 0).cx(0, 1).h(1).s(1);
        let plan = CompiledCircuit::compile(&c);
        // h/rz/ry fuse, cx stands alone, h/s fuse: 3 lowered ops from 6.
        assert_eq!(plan.source_len(), 6);
        assert_eq!(plan.len(), 3);
    }

    #[test]
    fn fusion_respects_two_qubit_barriers() {
        // s(0) ... cx(0,1) ... s(0): the two S gates must NOT fuse across
        // the entangler. S S |+> would differ from S CX S |+>0.
        let mut c = Circuit::new(2);
        c.h(0).s(0).cx(0, 1).s(0);
        let direct = StateVector::from_circuit(&c).unwrap();
        let compiled = CompiledCircuit::compile(&c).state().unwrap();
        assert!(compiled.fidelity(&direct) > 1.0 - TOL);
        assert_eq!(CompiledCircuit::compile(&c).len(), 4 - 1); // h+s fuse only
    }

    #[test]
    fn rebind_equals_fresh_compile() {
        let mut c = Circuit::new(3);
        c.ry(Param::Free(0), 0)
            .rz(Param::Free(1), 0)
            .cx(0, 1)
            .ry(Param::Free(2), 1)
            .rzz(Param::Free(3), 1, 2)
            .ry(0.25, 2);
        let p1 = [0.3, -0.9, 1.4, 0.6];
        let p2 = [2.2, 0.1, -0.5, 1.9];

        let mut plan = CompiledCircuit::compile(&c);
        assert!(!plan.is_bound());
        plan.rebind(&p1).unwrap();
        plan.rebind(&p2).unwrap();
        plan.rebind(&p1).unwrap();
        let rebound = plan.state().unwrap();

        let mut fresh = CompiledCircuit::compile(&c);
        fresh.rebind(&p1).unwrap();
        let once = fresh.state().unwrap();
        // Identical arithmetic => bitwise identical states.
        assert_eq!(rebound.amplitudes(), once.amplitudes());
    }

    #[test]
    fn unbound_plan_errors() {
        let mut c = Circuit::new(1);
        c.ry(Param::Free(0), 0);
        let plan = CompiledCircuit::compile(&c);
        assert_eq!(plan.state().unwrap_err(), GateError::UnboundParameter);
        let mut plan = CompiledCircuit::compile(&c);
        assert_eq!(plan.rebind(&[]).unwrap_err(), GateError::UnboundParameter);
    }

    #[test]
    fn template_matches_structure_not_angles() {
        let a = random_circuit(3, 1);
        let b = random_circuit(3, 2); // same structure, different angles
        let plan = CompiledCircuit::compile_template(&a);
        assert!(plan.matches_structure(&a));
        assert!(plan.matches_structure(&b));
        let mut different = Circuit::new(3);
        different.h(0);
        assert!(!plan.matches_structure(&different));
    }

    #[test]
    fn template_rebinds_from_extracted_angles() {
        let a = random_circuit(4, 3);
        let b = random_circuit(4, 4);
        let mut plan = CompiledCircuit::compile_template(&a);
        let mut angles = Vec::new();
        for target in [&a, &b] {
            CompiledCircuit::extract_angles(target, &mut angles).unwrap();
            plan.rebind(&angles).unwrap();
            let got = plan.state().unwrap();
            let want = StateVector::from_circuit(target).unwrap();
            assert!(got.fidelity(&want) > 1.0 - TOL);
        }
    }

    #[test]
    fn extract_angles_rejects_unbound() {
        let mut c = Circuit::new(1);
        c.ry(Param::Free(0), 0);
        let mut out = vec![1.0, 2.0];
        assert_eq!(
            CompiledCircuit::extract_angles(&c, &mut out).unwrap_err(),
            GateError::UnboundParameter
        );
    }

    #[test]
    fn compiled_observable_matches_reference_kernel() {
        let labels = [
            "ZZII", "IZZI", "XIII", "IXII", "YYII", "XYZI", "IIII", "ZIZI", "XXXX", "YZIX",
        ];
        let pairs: Vec<(f64, &str)> = labels
            .iter()
            .enumerate()
            .map(|(i, l)| {
                (
                    0.3 * (i as f64 + 1.0) * if i % 2 == 0 { 1.0 } else { -1.0 },
                    *l,
                )
            })
            .collect();
        let h = PauliSum::from_labels(&pairs).unwrap();
        let obs = CompiledObservable::compile(&h);
        assert_eq!(obs.n_terms(), labels.len());
        for seed in 0..6 {
            let sv = StateVector::from_circuit(&random_circuit(4, 40 + seed)).unwrap();
            let want = reference::expectation(&sv, &h);
            let got = obs.expectation(&sv);
            assert!((want - got).abs() < TOL, "seed {seed}: {want} vs {got}");
        }
    }

    #[test]
    fn diagonal_only_observable_uses_single_sweep() {
        let h = PauliSum::from_labels(&[(0.5, "ZZ"), (-0.25, "IZ"), (1.5, "II")]).unwrap();
        let obs = CompiledObservable::compile(&h);
        assert_eq!(obs.n_diagonal_terms(), 3);
        let sv = StateVector::from_circuit(&random_circuit(2, 9)).unwrap();
        assert!((obs.expectation(&sv) - reference::expectation(&sv, &h)).abs() < TOL);
    }

    #[test]
    fn wide_observable_falls_back_without_table() {
        // Build the same small observable, but verify the fallback branch by
        // compiling against a hand-made CompiledObservable with the table
        // stripped.
        let h = PauliSum::from_labels(&[(0.7, "ZIZ"), (-0.2, "IZI"), (0.4, "XIX")]).unwrap();
        let mut obs = CompiledObservable::compile(&h);
        let sv = StateVector::from_circuit(&random_circuit(3, 11)).unwrap();
        let with_table = obs.expectation(&sv);
        obs.diag_table = None;
        let without_table = obs.expectation(&sv);
        assert!((with_table - without_table).abs() < TOL);
        assert!((with_table - reference::expectation(&sv, &h)).abs() < TOL);
    }

    #[test]
    fn bell_pair_expectations() {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1);
        let sv = StateVector::from_circuit(&c).unwrap();
        for (label, want) in [("ZZ", 1.0), ("XX", 1.0), ("YY", -1.0), ("ZI", 0.0)] {
            let h = PauliSum::from_labels(&[(1.0, label)]).unwrap();
            let got = CompiledObservable::compile(&h).expectation(&sv);
            assert!((got - want).abs() < TOL, "{label}: {got} vs {want}");
        }
        // Single off-diagonal string via PauliString-style compile.
        let p = PauliString::from_label("XY").unwrap();
        let mut h = PauliSum::zero(2);
        h.add_term(1.0, p);
        let got = CompiledObservable::compile(&h).expectation(&sv);
        assert!(got.abs() < TOL);
    }
}

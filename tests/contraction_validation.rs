//! Integration: validate the fast contraction-factor objective model against
//! the physically faithful density-matrix backend (the DESIGN.md promise).

use qismet_qnoise::{Machine, NoisySimulator};
use qismet_qsim::exact_energy;
use qismet_vqa::{Ansatz, AnsatzKind, Entanglement, Tfim};

/// On app-scale circuits, the global-depolarizing attenuation factor should
/// predict the density-matrix expectation within a modest relative error.
#[test]
fn attenuation_factor_tracks_density_matrix_backend() {
    let tfim = Tfim {
        n: 4,
        j: 1.0,
        h: 1.0,
        boundary: qismet_vqa::Boundary::Open,
    };
    let h = tfim.hamiltonian();
    for (machine, reps) in [(Machine::Guadalupe, 1), (Machine::Toronto, 2)] {
        let ansatz = Ansatz::new(AnsatzKind::RealAmplitudes, 4, reps, Entanglement::Linear);
        let params = ansatz.initial_params(5);
        let bound = ansatz.bind(&params).unwrap();
        let ideal = exact_energy(&bound, &h).unwrap();

        let model = machine.static_model(4);
        let predicted = model.attenuation_factor(&bound) * ideal;
        let sim = NoisySimulator::new(model);
        let faithful = sim.expectation(&bound, &h).unwrap();

        let rel_err = (predicted - faithful).abs() / faithful.abs().max(0.1);
        assert!(
            rel_err < 0.25,
            "{machine}, reps {reps}: predicted {predicted:.4} vs density-matrix {faithful:.4} \
             (rel err {rel_err:.3})"
        );
        // Both must attenuate (|noisy| < |ideal|).
        assert!(faithful.abs() < ideal.abs());
        assert!(predicted.abs() < ideal.abs());
    }
}

/// Fidelity ordering sanity: the density-matrix backend agrees that deeper
/// circuits lose more signal on noisier machines.
#[test]
fn depth_and_machine_ordering_consistent() {
    let tfim = Tfim {
        n: 4,
        j: 1.0,
        h: 1.0,
        boundary: qismet_vqa::Boundary::Open,
    };
    let h = tfim.hamiltonian();
    let shallow = Ansatz::new(AnsatzKind::RealAmplitudes, 4, 1, Entanglement::Linear);
    let deep = Ansatz::new(AnsatzKind::RealAmplitudes, 4, 3, Entanglement::Linear);
    let p_shallow = shallow.initial_params(9);
    let p_deep = deep.initial_params(9);

    let quiet = NoisySimulator::new(Machine::Casablanca.static_model(4));
    let noisy = NoisySimulator::new(Machine::Cairo.static_model(4));

    let bound_shallow = shallow.bind(&p_shallow).unwrap();
    let bound_deep = deep.bind(&p_deep).unwrap();
    let ideal_shallow = exact_energy(&bound_shallow, &h).unwrap();
    let ideal_deep = exact_energy(&bound_deep, &h).unwrap();

    let frac = |sim: &NoisySimulator, bound: &qismet_qsim::Circuit, ideal: f64| {
        sim.expectation(bound, &h).unwrap() / ideal
    };
    // Same circuit: the noisier machine retains less signal.
    assert!(
        frac(&noisy, &bound_shallow, ideal_shallow) < frac(&quiet, &bound_shallow, ideal_shallow)
    );
    // Same machine: the deeper circuit retains less signal.
    assert!(frac(&noisy, &bound_deep, ideal_deep) < frac(&noisy, &bound_shallow, ideal_shallow));
}

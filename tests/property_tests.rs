//! Workspace-level property-based tests (proptest) on the core invariants.

use proptest::prelude::*;
use qismet::TransientEstimate;
use qismet_mathkit::Complex64;
use qismet_qsim::{Circuit, Counts, Gate, PauliString, PauliSum, StateVector};

fn arb_angle() -> impl Strategy<Value = f64> {
    -std::f64::consts::PI..std::f64::consts::PI
}

fn arb_circuit(n_qubits: usize, max_gates: usize) -> impl Strategy<Value = Circuit> {
    // A sequence of (gate selector, qubit, angle) tuples.
    proptest::collection::vec((0usize..6, 0usize..n_qubits, arb_angle()), 1..max_gates).prop_map(
        move |ops| {
            let mut c = Circuit::new(n_qubits);
            for (kind, q, theta) in ops {
                match kind {
                    0 => {
                        c.h(q);
                    }
                    1 => {
                        c.rx(theta, q);
                    }
                    2 => {
                        c.ry(theta, q);
                    }
                    3 => {
                        c.rz(theta, q);
                    }
                    4 => {
                        c.cx(q, (q + 1) % n_qubits);
                    }
                    _ => {
                        c.cz(q, (q + 1) % n_qubits);
                    }
                }
            }
            c
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Unitarity: every random circuit preserves the state norm.
    #[test]
    fn circuits_preserve_norm(c in arb_circuit(4, 40)) {
        let sv = StateVector::from_circuit(&c).unwrap();
        prop_assert!((sv.norm_sqr() - 1.0).abs() < 1e-9);
    }

    /// Pauli expectations of pure states always lie in [-1, 1].
    #[test]
    fn pauli_expectations_bounded(c in arb_circuit(3, 30), label_idx in 0usize..4) {
        let labels = ["ZZZ", "XIX", "YZI", "XYZ"];
        let p = PauliString::from_label(labels[label_idx]).unwrap();
        let sv = StateVector::from_circuit(&c).unwrap();
        let e = sv.pauli_expectation(&p);
        prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&e), "e = {e}");
    }

    /// Hamiltonian expectations are bounded by the one-norm and never below
    /// the exact ground energy (variational principle).
    #[test]
    fn variational_bound_holds(c in arb_circuit(3, 25)) {
        let h = PauliSum::from_labels(&[(-1.0, "ZZI"), (-1.0, "IZZ"),
                                        (-0.7, "XII"), (-0.7, "IXI"), (-0.7, "IIX")]).unwrap();
        let gs = h.ground_energy().unwrap();
        let sv = StateVector::from_circuit(&c).unwrap();
        let e = sv.expectation(&h);
        prop_assert!(e >= gs - 1e-9, "e = {e} below ground {gs}");
        prop_assert!(e.abs() <= h.one_norm() + 1e-9);
    }

    /// The inverse circuit really inverts: U^-1 U |0> = |0>.
    #[test]
    fn inverse_circuit_roundtrip(c in arb_circuit(3, 25)) {
        let mut sv = StateVector::from_circuit(&c).unwrap();
        sv.apply_circuit(&c.inverse().unwrap()).unwrap();
        prop_assert!(sv.amplitudes()[0].approx_eq(Complex64::ONE, 1e-8)
            || (sv.amplitudes()[0].abs() - 1.0).abs() < 1e-8,
            "|0> amplitude {}", sv.amplitudes()[0]);
    }

    /// Fig. 8 estimator identities hold for arbitrary measurements.
    #[test]
    fn estimator_identities(em_prev in -10.0f64..10.0,
                            em_rerun in -10.0f64..10.0,
                            em_curr in -10.0f64..10.0) {
        let est = TransientEstimate::new(em_prev, em_rerun, em_curr);
        prop_assert!((est.gp() - (est.gm() - est.tm())).abs() < 1e-12);
        prop_assert!((est.ep() - (em_curr - est.tm())).abs() < 1e-12);
        // No transient estimate -> prediction equals machine value.
        let clean = TransientEstimate::new(em_prev, em_prev, em_curr);
        prop_assert_eq!(clean.gm(), clean.gp());
    }

    /// Counts parity expectations always lie in [-1, 1] and respect masks.
    #[test]
    fn parity_expectation_bounded(outcomes in proptest::collection::vec((0u64..16, 1u64..100), 1..10),
                                  mask in 0u64..16) {
        let counts = Counts::from_pairs(4, outcomes);
        let e = counts.parity_expectation(mask);
        prop_assert!((-1.0..=1.0).contains(&e));
        // Mask 0 is the identity parity: always +1.
        prop_assert!((counts.parity_expectation(0) - 1.0).abs() < 1e-12);
    }

    /// Gate matrices stay unitary for arbitrary angles.
    #[test]
    fn parameterized_gates_unitary(theta in arb_angle()) {
        for g in [Gate::Rx(theta.into()), Gate::Ry(theta.into()),
                  Gate::Rz(theta.into()), Gate::Phase(theta.into()),
                  Gate::Rzz(theta.into())] {
            prop_assert!(g.matrix().unwrap().is_unitary(1e-10));
        }
    }
}

//! Integration: the chemistry substrate feeding the VQA stack — a noise-free
//! VQE on the Jordan-Wigner H2 Hamiltonian must approach the FCI energy.

use qismet_optim::{GainSchedule, Spsa};
use qismet_qnoise::{StaticNoiseModel, TransientTrace};
use qismet_vqa::{
    run_tuning, Ansatz, AnsatzKind, Entanglement, NoisyObjective, NoisyObjectiveConfig,
    TuningScheme,
};

/// Gains scaled to the H2 objective (hartree-scale landscape, ~10x smaller
/// than the TFIM apps).
fn h2_gains() -> GainSchedule {
    GainSchedule {
        a: 0.05,
        c: 0.1,
        alpha: 0.602,
        gamma: 0.101,
        stability: 20.0,
    }
}
#[test]
fn noise_free_vqe_approaches_fci_at_equilibrium() {
    let problem = qismet_chem::H2Problem::at_bond_length(0.735).unwrap();
    let iterations = 500;
    // Hartree-Fock reference: occupy spin orbitals 1-alpha, 1-beta
    // (qubits 0 and 1 in the interleaved Jordan-Wigner ordering).
    let ansatz = Ansatz::with_preparation(
        AnsatzKind::EfficientSu2,
        4,
        2,
        Entanglement::Linear,
        &[0, 1],
    );
    let theta0 = ansatz.initial_params(3);
    let mut objective = NoisyObjective::new(
        ansatz,
        problem.hamiltonian.clone(),
        NoisyObjectiveConfig {
            static_model: StaticNoiseModel::noiseless(4),
            trace: TransientTrace::zeros(iterations * 4 + 8),
            magnitude_ref: problem.fci.energy.abs(),
            shot_sigma: 0.001,
            within_job_spread: 0.0,
            seed: 5,
        },
    );
    let mut spsa = Spsa::new(theta0.len(), h2_gains(), 7);
    let rec = run_tuning(
        &mut spsa,
        &mut objective,
        theta0,
        iterations,
        TuningScheme::Baseline,
    );
    let final_exact = rec.final_exact_energy(25);
    let gap = final_exact - problem.fci.energy;
    assert!(
        gap < 0.05,
        "VQE ended {final_exact:.5} Ha, FCI {:.5} Ha (gap {gap:.5})",
        problem.fci.energy
    );
    // Variational principle: never below FCI.
    assert!(final_exact >= problem.fci.energy - 1e-9);
}

#[test]
fn jw_hamiltonian_usable_across_geometries() {
    // Every Fig. 18 geometry must produce a 4-qubit Hamiltonian whose exact
    // ground energy matches its FCI energy.
    for r in qismet_chem::fig18_bond_lengths() {
        let p = qismet_chem::H2Problem::at_bond_length(r).unwrap();
        assert_eq!(p.hamiltonian.n_qubits(), 4);
        let eq = p.qubit_ground_energy().unwrap();
        assert!(
            (eq - p.fci.energy).abs() < 1e-7,
            "r = {r}: qubit {eq} vs FCI {}",
            p.fci.energy
        );
    }
}

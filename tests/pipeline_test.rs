//! Integration: the full physical measurement pipeline across crates —
//! ansatz binding, sampling with readout errors, calibration-matrix
//! mitigation, and energy reconstruction.

use qismet::{MitigationStrategy, ReadoutMitigator};
use qismet_mathkit::rng_from_seed;
use qismet_qnoise::StaticNoiseModel;
use qismet_qsim::{basis_change_circuit, exact_energy, MeasurementPlan, StateVector};
use qismet_vqa::{Ansatz, AnsatzKind, Entanglement, Tfim};

/// Energy estimated through the sampled + readout-noisy + mitigated path
/// should approach the exact energy.
#[test]
fn sampled_mitigated_energy_matches_exact() {
    let tfim = Tfim::paper_6q();
    let h = tfim.hamiltonian();
    let ansatz = Ansatz::new(AnsatzKind::RealAmplitudes, 6, 2, Entanglement::Linear);
    let params = ansatz.initial_params(17);
    let bound = ansatz.bind(&params).unwrap();
    let exact = exact_energy(&bound, &h).unwrap();

    let model = StaticNoiseModel::uniform(6, 100.0, 90.0, 0.0, 0.0, 0.05);
    let mitigator = ReadoutMitigator::from_model(&model, 6, MitigationStrategy::Tensored).unwrap();
    let plan = MeasurementPlan::compile(&h);
    let mut rng = rng_from_seed(3);
    let shots = 60_000;

    let mut mitigated_energy = plan.identity_offset();
    let mut raw_energy = plan.identity_offset();
    for group in plan.groups() {
        let mut sv = StateVector::from_circuit(&bound).unwrap();
        let rot = basis_change_circuit(6, &group.basis);
        sv.apply_circuit(&rot).unwrap();
        let clean = sv.sample_counts(&mut rng, shots);
        let noisy = model.apply_readout_errors(&clean, &mut rng);
        for &idx in &group.term_indices {
            let (coeff, string) = &h.terms()[idx];
            let mut mask = 0u64;
            for q in 0..string.n_qubits() {
                if string.pauli(q) != qismet_qsim::Pauli::I {
                    mask |= 1 << q;
                }
            }
            raw_energy += coeff * noisy.parity_expectation(mask);
            mitigated_energy += coeff * mitigator.parity_expectation(&noisy, mask).unwrap();
        }
    }

    let raw_err = (raw_energy - exact).abs();
    let mit_err = (mitigated_energy - exact).abs();
    assert!(
        mit_err < raw_err,
        "mitigation should reduce error: raw {raw_err:.4} vs mitigated {mit_err:.4}"
    );
    assert!(
        mit_err < 0.06,
        "mitigated energy {mitigated_energy:.4} too far from exact {exact:.4}"
    );
}

/// The measurement plan for TFIM needs exactly two circuits per energy
/// evaluation (Z-basis group and X-basis group).
#[test]
fn tfim_measurement_plan_is_two_groups() {
    let h = Tfim::paper_6q().hamiltonian();
    let plan = MeasurementPlan::compile(&h);
    assert_eq!(plan.n_circuits(), 2);
    assert_eq!(plan.identity_offset(), 0.0);
}

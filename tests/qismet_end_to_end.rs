//! Integration: the headline result end to end — QISMET vs baseline on a
//! turbulent machine profile, multiple seeds, equal job budgets.

use qismet::{run_qismet_budgeted, QismetConfig};
use qismet_optim::{GainSchedule, Spsa};
use qismet_vqa::{run_tuning, AppSpec, TuningScheme};

#[test]
fn qismet_beats_baseline_on_turbulent_machine() {
    let budget = 500;
    let spec = AppSpec::by_id(5).unwrap(); // Cairo profile, severe transients
    let mut ratios = Vec::new();
    for seed in 0..3u64 {
        let master = 0xe2e + seed;
        let mut app = spec.build(budget * 7 + 16, None, master);
        let theta0 = app.theta0.clone();
        let mut spsa = Spsa::new(theta0.len(), GainSchedule::vqa_paper(), seed);
        let base = run_tuning(
            &mut spsa,
            &mut app.objective,
            theta0.clone(),
            budget,
            TuningScheme::Baseline,
        );
        let mut app = spec.build(budget * 7 + 16, None, master);
        let mut spsa = Spsa::new(theta0.len(), GainSchedule::vqa_paper(), seed);
        let qis = run_qismet_budgeted(
            &mut spsa,
            &mut app.objective,
            theta0,
            budget,
            budget + 1,
            QismetConfig::paper_default(),
        );
        let window = 25;
        let b = base.final_energy(window);
        let q = qis
            .record
            .final_energy(window.min(qis.record.measured.len()));
        ratios.push(q / b);
        // Both descend (negative energies).
        assert!(b < 0.0 && q < 0.0, "seed {seed}: base {b}, qismet {q}");
    }
    let geo = qismet_mathkit::geomean(&ratios);
    assert!(
        geo > 1.1,
        "QISMET should clearly beat baseline on Cairo; geomean ratio {geo:.3} from {ratios:?}"
    );
}

#[test]
fn qismet_harmless_without_transients() {
    let budget = 300;
    let spec = AppSpec::by_id(2).unwrap();
    let master = 0x0;
    let mut app = spec.build(budget * 7 + 16, Some(0.0), master);
    let theta0 = app.theta0.clone();
    let mut spsa = Spsa::new(theta0.len(), GainSchedule::vqa_paper(), 1);
    let base = run_tuning(
        &mut spsa,
        &mut app.objective,
        theta0.clone(),
        budget,
        TuningScheme::Baseline,
    );
    let mut app = spec.build(budget * 7 + 16, Some(0.0), master);
    let mut spsa = Spsa::new(theta0.len(), GainSchedule::vqa_paper(), 1);
    let qis = run_qismet_budgeted(
        &mut spsa,
        &mut app.objective,
        theta0,
        budget,
        budget + 1,
        QismetConfig::paper_default(),
    );
    let b = base.final_energy(20);
    let q = qis.record.final_energy(20.min(qis.record.measured.len()));
    // Within 25% of each other: QISMET costs little when there is nothing
    // to skip (Section 8.3's "only negatively reflected if transients are
    // entirely absent" — the cost is the budget spent on skips).
    assert!(
        (q / b - 1.0).abs() < 0.25,
        "transient-free gap too large: baseline {b:.4} vs qismet {q:.4}"
    );
}

/// Section 2's claim that "QISMET is broadly applicable across all VQAs":
/// the QAOA substrate plugs into the same Hamiltonian/circuit machinery the
/// QISMET pipeline consumes.
#[test]
fn qaoa_substrate_is_vqa_compatible() {
    use qismet_vqa::{maxcut_hamiltonian, qaoa_approximation_ratio, qaoa_circuit, Graph};

    let graph = Graph::ring(6);
    let h = maxcut_hamiltonian(&graph);
    let circuit = qaoa_circuit(&graph, 2);
    assert_eq!(circuit.n_params(), 4);
    let (_, maxcut) = graph.max_cut_brute_force();
    assert!((h.ground_energy().unwrap() + maxcut).abs() < 1e-9);
    // A coarse angle grid already beats the random-assignment ratio of 1/2,
    // evaluated through the same exact-energy path the VQE objective uses.
    let mut best = f64::INFINITY;
    for i in 0..6 {
        for j in 0..6 {
            let p = [
                i as f64 * 0.5,
                j as f64 * 0.5,
                i as f64 * 0.25,
                j as f64 * 0.25,
            ];
            let bound = circuit.bind(&p).unwrap();
            best = best.min(qismet_qsim::exact_energy(&bound, &h).unwrap());
        }
    }
    assert!(
        qaoa_approximation_ratio(best, maxcut) > 0.5,
        "grid best ratio too low"
    );
}

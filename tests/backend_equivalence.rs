//! Integration: the pluggable `Backend` seam end-to-end — a full QISMET run
//! must be invariant to the execution engine behind the objective, and the
//! batched job path must reproduce the per-call series exactly.

use qismet::{run_qismet, QismetConfig};
use qismet_mathkit::rng_from_seed;
use qismet_optim::{GainSchedule, Spsa};
use qismet_qnoise::{StaticNoiseModel, TransientModel};
use qismet_qsim::{Backend, CachedStatevectorBackend, StatevectorBackend};
use qismet_vqa::{Ansatz, AnsatzKind, Entanglement, NoisyObjective, NoisyObjectiveConfig, Tfim};

fn objective_on(backend: Box<dyn Backend>, seed: u64) -> NoisyObjective {
    let tfim = Tfim::paper_6q();
    let gs = tfim.exact_ground_energy().unwrap();
    let ansatz = Ansatz::new(AnsatzKind::RealAmplitudes, 6, 2, Entanglement::Linear);
    let trace = TransientModel::moderate(0.25).generate(&mut rng_from_seed(31), 2000);
    let cfg = NoisyObjectiveConfig {
        static_model: StaticNoiseModel::uniform(6, 120.0, 100.0, 2e-4, 5e-3, 0.02),
        trace,
        magnitude_ref: gs.abs(),
        shot_sigma: 0.03,
        within_job_spread: 0.25,
        seed,
    };
    NoisyObjective::with_backend(ansatz, tfim.hamiltonian(), cfg, backend)
}

/// The cached fast path and the fresh-allocation reference backend must
/// drive `run_qismet` to bit-identical records: same seeds, same measured
/// series, same skip decisions.
#[test]
fn qismet_run_is_backend_invariant() {
    let run = |backend: Box<dyn Backend>| {
        let mut obj = objective_on(backend, 13);
        let theta0 = obj.exact().ansatz().initial_params(4);
        let mut spsa = Spsa::new(theta0.len(), GainSchedule::spall_default(), 5);
        run_qismet(
            &mut spsa,
            &mut obj,
            theta0,
            80,
            QismetConfig::paper_default(),
        )
    };
    let cached = run(Box::new(CachedStatevectorBackend::new()));
    let fresh = run(Box::new(StatevectorBackend::new()));
    assert_eq!(cached.record, fresh.record);
    assert_eq!(cached.decisions, fresh.decisions);
    for (a, b) in cached.record.measured.iter().zip(&fresh.record.measured) {
        assert_eq!(a.to_bits(), b.to_bits());
    }
}

/// The umbrella crate re-exports the backend layer for downstream users.
#[test]
fn umbrella_reexports_backend_layer() {
    let mut backend: Box<dyn qismet_repro::qsim::Backend> =
        Box::new(qismet_repro::qsim::CachedStatevectorBackend::new());
    let h = qismet_repro::qsim::PauliSum::from_labels(&[(-1.0, "ZZ")]).unwrap();
    let mut c = qismet_repro::qsim::Circuit::new(2);
    c.ry(0.4, 0).cx(0, 1);
    let e = backend.evaluate(&c, &h).unwrap();
    assert!(e.is_finite());
}
